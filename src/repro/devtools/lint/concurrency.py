"""C-series checkers: concurrency invariants.

The campaign service shares objects between an asyncio orchestrator, a
daemon loop thread and worker callbacks.  PR 7 shipped (and fixed) the
canonical bug of that topology: ``TierStats`` counters bumped with a
bare ``+=`` — a read-modify-write that loses updates under threads.
These rules flag that class of mutation statically:

* **C201** — a class that owns a ``threading.Lock`` mutates its own
  state outside any ``with <lock>:`` block (a partially-locked class).
* **C203** — in the modules documented as service-shared, *any* class
  mutates shared attributes without a lock (the original unlocked
  ``TierStats`` shape, which C201 cannot see because the buggy class
  owned no lock at all).
* **C202** — blocking calls (``time.sleep``, ``fsync``, ``subprocess``)
  inside ``async def``: the loop must sequence jobs, never wait.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from .context import ModuleContext
from .model import Finding, LintConfig, RULES

#: Constructors whose result guards shared state.
_LOCK_TYPES = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "multiprocessing.Lock", "multiprocessing.RLock",
}

#: Method calls that mutate a container in place.
_MUTATORS = {
    "append", "extend", "add", "update", "insert", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "appendleft",
}

#: Calls that block the thread they run on.
_BLOCKING = {
    "time.sleep", "os.fsync", "os.fdatasync", "os.system",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "urllib.request.urlopen", "socket.create_connection",
}

#: Methods where unlocked initialisation is fine: the object is not yet
#: visible to other threads.
_CONSTRUCTION_METHODS = {"__init__", "__post_init__", "__new__"}


def _finding(ctx: ModuleContext, rule: str, node: ast.AST,
             message: str) -> Finding:
    return Finding(rule=rule, path=ctx.rel_path, line=node.lineno,
                   col=node.col_offset, scope=ctx.qualname(node),
                   message=message, hint=RULES[rule].hint)


def _lock_attributes(ctx: ModuleContext,
                     class_node: ast.ClassDef) -> Tuple[str, ...]:
    """``self.X`` attributes assigned a Lock anywhere in the class."""
    locks: List[str] = []
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Assign) \
                or not isinstance(node.value, ast.Call):
            continue
        if ctx.dotted(node.value.func) not in _LOCK_TYPES:
            continue
        for target in node.targets:
            dotted = ctx.dotted(target)
            if dotted is not None and dotted.startswith("self."):
                locks.append(dotted)
    return tuple(locks)


def _enclosing_method(ctx: ModuleContext,
                      node: ast.AST) -> Optional[str]:
    function = ctx.enclosing_function(node)
    if function is None:
        return None
    return function.name


def _self_mutations(ctx: ModuleContext, class_node: ast.ClassDef
                    ) -> List[Tuple[ast.AST, str, str]]:
    """(node, mutated ``self.attr`` path, kind) mutations in the class.

    Covers augmented assignment on ``self.attr`` / ``self.attr[...]``
    and in-place mutator calls (``self.attr.append(...)``).  Plain
    rebinding assignments are excluded: a single ``=`` of a fresh
    object is atomic enough for the counter-corruption class these
    rules target, and flagging it would bury the real races in noise.
    """
    mutations: List[Tuple[ast.AST, str, str]] = []
    for node in ast.walk(class_node):
        if isinstance(node, ast.AugAssign):
            rooted = ctx.self_rooted(node.target)
            if rooted is not None:
                mutations.append((node, rooted, "augmented assignment"))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATORS:
            rooted = ctx.self_rooted(node.func.value)
            if rooted is not None:
                mutations.append(
                    (node, rooted, f".{node.func.attr}() call"))
    return mutations


def check_concurrency(ctx: ModuleContext,
                      config: LintConfig) -> List[Finding]:
    findings: List[Finding] = []
    shared_module = config.is_shared_module(ctx.rel_path)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            findings.extend(
                _check_class(ctx, config, node, shared_module))
        elif isinstance(node, ast.AsyncFunctionDef) \
                and config.enabled("C202"):
            findings.extend(_check_async(ctx, node))
    return findings


def _check_class(ctx: ModuleContext, config: LintConfig,
                 class_node: ast.ClassDef,
                 shared_module: bool) -> List[Finding]:
    locks = _lock_attributes(ctx, class_node)
    if locks:
        rule = "C201"
    elif shared_module:
        rule = "C203"
    else:
        return []
    if not config.enabled(rule):
        return []
    findings: List[Finding] = []
    for node, target, kind in _self_mutations(ctx, class_node):
        method = _enclosing_method(ctx, node)
        if method in _CONSTRUCTION_METHODS:
            continue
        held = ctx.held_locks(node)
        if locks and any(lock in held for lock in locks):
            continue
        if locks:
            message = (f"{kind} on {target} outside "
                       f"'with {locks[0]}:' in a lock-owning class")
        else:
            message = (f"{kind} on {target} without any lock in a "
                       "service-shared module (the PR-7 TierStats "
                       "lost-update shape)")
        findings.append(_finding(ctx, rule, node, message))
    return findings


def _check_async(ctx: ModuleContext,
                 async_def: ast.AsyncFunctionDef) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(async_def):
        if not isinstance(node, ast.Call):
            continue
        if ctx.enclosing_function(node) is not async_def:
            continue
        dotted = ctx.dotted(node.func)
        if dotted in _BLOCKING:
            findings.append(_finding(
                ctx, "C202", node,
                f"{dotted}(...) blocks the event loop inside "
                f"'async def {async_def.name}'"))
    return findings
