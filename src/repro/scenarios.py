"""Scenario registry: named, declarative experiment configurations.

A :class:`Scenario` names one point (or one *matrix*) of the experiment
space the paper samples by hand: which designs, at which scale, under
which :mod:`~repro.faults.upsets` model, through which campaign backend,
with which analyses.  Scenarios are data — running one is
:func:`run_scenario`, which expands the scenario's axes into variants,
pushes each through the :mod:`repro.pipeline` stage library and merges
the per-variant reports into one uniform document.

Matrix axes make the registry a run-matrix enumerator: an axis is a
``(field, values)`` pair and the cartesian product of all axes yields the
variants.  Because every variant runs through the same fingerprint-keyed
stages, shared work (the built suite, place-and-route artifacts in the
flow store, golden traces and fault effects in the campaign cache) is
computed once and reused across the matrix.

Built-in scenarios cover the paper's tables and figures plus the new
multi-bit/accumulated-upset campaigns; projects can
:func:`register_scenario` their own.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .experiments.designs import DESIGN_ORDER
from .pipeline import PipelineContext, StoreLike, pipeline_for

#: One matrix axis: a PipelineContext field name and its candidate values.
Axis = Tuple[str, Tuple[object, ...]]


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A named, declarative experiment configuration."""

    id: str
    title: str
    description: str = ""
    #: default experiment scale (overridable per run)
    scale: str = "fast"
    #: design versions evaluated; empty means "derived by the build stage"
    #: (the shortlist selector fills it in)
    designs: Tuple[str, ...] = DESIGN_ORDER
    #: campaign execution backend
    backend: str = "serial"
    #: upset model spec (see :mod:`repro.faults.upsets`)
    upset_model: str = "single"
    fault_list_mode: str = "design"
    #: upsets per design (``None``: the scale's default)
    num_faults: Optional[int] = None
    #: campaign prefilter: ``"none"`` or ``"static"`` (skip provably-silent
    #: bits via the layout analyzer; verdicts stay bit-identical)
    prefilter: str = "none"
    seed: int = 2005
    #: pipeline stages, in order (names from the stage library)
    stages: Tuple[str, ...] = ("build", "implement", "campaign", "analyze")
    #: analyses computed by the analyze stage
    analyses: Tuple[str, ...] = ("table3",)
    floorplan_domains: bool = False
    #: how the build stage picks TMR variants: the paper's four canonical
    #: partitions, or the optimizer's Pareto shortlist
    partition_selector: str = "canonical"
    shortlist_size: int = 3
    #: matrix axes expanded into variants by :meth:`variants`
    axes: Tuple[Axis, ...] = ()

    def variants(self) -> Iterator[Tuple[str, "Scenario"]]:
        """Expand the axes into ``(variant_id, concrete scenario)`` pairs."""
        if not self.axes:
            yield "", self
            return
        fields = [axis[0] for axis in self.axes]
        for combo in itertools.product(*(axis[1] for axis in self.axes)):
            overrides = dict(zip(fields, combo))
            variant_id = ",".join(f"{field}={value}"
                                  for field, value in overrides.items())
            yield variant_id, dataclasses.replace(self, axes=(), **overrides)

    def context(self, *, jobs: int = 1, flow_cache: StoreLike = None,
                anneal_partitions: int = 1,
                flow_threads: Optional[int] = None,
                progress: bool = False,
                progress_callback=None) -> PipelineContext:
        """A pipeline context carrying this scenario's resolved knobs."""
        return PipelineContext(
            scenario_id=self.id,
            scale=self.scale,
            designs=self.designs,
            backend=self.backend,
            upset_model=self.upset_model,
            fault_list_mode=self.fault_list_mode,
            num_faults=self.num_faults,
            prefilter=self.prefilter,
            seed=self.seed,
            jobs=jobs,
            flow_cache=flow_cache,
            anneal_partitions=anneal_partitions,
            flow_threads=flow_threads,
            floorplan_domains=self.floorplan_domains,
            partition_selector=self.partition_selector,
            shortlist_size=self.shortlist_size,
            analyses=self.analyses,
            progress=progress,
            progress_callback=progress_callback,
        )


#: The registry, in registration order (also the ``repro list`` order).
SCENARIOS: "Dict[str, Scenario]" = {}


def register_scenario(scenario: Scenario,
                      replace: bool = False) -> Scenario:
    """Add *scenario* to the registry (``replace=True`` to overwrite)."""
    if not replace and scenario.id in SCENARIOS:
        raise ValueError(f"scenario {scenario.id!r} is already registered")
    SCENARIOS[scenario.id] = scenario
    return scenario


def scenario_by_name(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; available: "
                       + ", ".join(sorted(SCENARIOS))) from None


def list_scenarios() -> List[Scenario]:
    return list(SCENARIOS.values())


# ----------------------------------------------------------------------
# Built-in catalog
# ----------------------------------------------------------------------
register_scenario(Scenario(
    id="table2-fir",
    title="Table 2 — resources and performance",
    description="Implement the five filter versions and report slices, "
                "bitstream composition and estimated Fmax next to the "
                "paper's numbers.",
    stages=("build", "implement", "analyze"),
    analyses=("resources",),
))

register_scenario(Scenario(
    id="table3-fir",
    title="Table 3 — fault-injection campaign",
    description="One single-bit-upset campaign per filter version; "
                "wrong-answer percentages and the medium-partition "
                "improvement factor.",
    analyses=("table3",),
))

register_scenario(Scenario(
    id="huge-fir",
    title="Monte-Carlo campaign — 10^6 injections",
    description="The Table 3 campaign on the unprotected and "
                "medium-partition versions at the huge scale: one million "
                "injections per design, covering every programmable bit "
                "plus a reproducible with-replacement tail.  Duplicate "
                "injections collapse onto shared lanes, so only the "
                "numpy-compiled backend makes this scale practical.",
    scale="huge",
    designs=("standard", "TMR_p2"),
    backend="numpy",
    analyses=("table3",),
))

register_scenario(Scenario(
    id="chaos-fir",
    title="Chaos campaign — recovery under injected failures",
    description="The Table 3 campaign on the unprotected and "
                "medium-partition versions through the supervised "
                "sharded backend.  Run under REPRO_CHAOS (see "
                "repro.service.chaos) it exercises worker death, torn "
                "tier writes and disk-full at seeded fault points while "
                "the verdicts must stay bit-identical to an undisturbed "
                "run; without chaos configured it is an ordinary sharded "
                "campaign.",
    scale="tiny",
    designs=("standard", "TMR_p2"),
    backend="sharded",
    analyses=("table3",),
))

register_scenario(Scenario(
    id="table4-fir",
    title="Table 4 — effects of error-causing upsets",
    description="The Table 3 campaigns aggregated by effect category "
                "(LUT / MUX / Open / Bridge / Conflict / ...).",
    analyses=("table3", "table4"),
))

register_scenario(Scenario(
    id="figures-fir",
    title="Figures 1-4 — structural properties",
    description="Machine-checkable structural facts of the TMR schemes "
                "(triplication, voter barriers, partitions).",
    stages=("build", "analyze"),
    analyses=("figures",),
))

register_scenario(Scenario(
    id="ablation-sweep",
    title="Analytical voter-granularity sweep",
    description="The optimizer's analytical design-space sweep behind "
                "the 'there is an optimal partition' conclusion.",
    stages=("build", "analyze"),
    analyses=("sweep",),
))

register_scenario(Scenario(
    id="floorplan-fir",
    title="Floorplanning ablation",
    description="Interleaved placement versus per-domain column bands on "
                "the minimum-partition TMR version.",
    scale="smoke",
    designs=("TMR_p3",),
    analyses=("table3",),
    axes=(("floorplan_domains", (False, True)),),
))

register_scenario(Scenario(
    id="mbu-fir",
    title="Adjacent multi-bit upsets",
    description="Each injection flips a cluster of two adjacent "
                "configuration cells (the dominant multi-cell-upset mode "
                "of scaled SRAM processes).",
    scale="smoke",
    designs=("standard", "TMR_p2"),
    backend="vector",
    upset_model="mbu:2",
    analyses=("table3",),
))

register_scenario(Scenario(
    id="accumulate-fir",
    title="Accumulated upsets between scrubs",
    description="Upsets accrue in groups of four before the scrubber "
                "repairs the configuration — the regime studied by the "
                "TMR-partitioning dependability literature.",
    scale="smoke",
    designs=("standard", "TMR_p2"),
    backend="vector",
    upset_model="accumulate:4",
    analyses=("table3",),
))

register_scenario(Scenario(
    id="upset-matrix",
    title="Upset-model matrix",
    description="single vs mbu:2 vs accumulate:4 on the unprotected and "
                "medium-partition versions — how the TMR advantage "
                "degrades as injections grow denser.",
    scale="smoke",
    designs=("standard", "TMR_p2"),
    backend="vector",
    analyses=("table3",),
    axes=(("upset_model", ("single", "mbu:2", "accumulate:4")),),
))

register_scenario(Scenario(
    id="backend-matrix",
    title="Backend equivalence matrix",
    description="The same campaign through the serial, batch and vector "
                "engines; all variants must agree bit for bit.",
    scale="smoke",
    designs=("standard", "TMR_p2"),
    analyses=("table3",),
    axes=(("backend", ("serial", "batch", "vector")),),
))

register_scenario(Scenario(
    id="defeat-map-fir",
    title="Layout-aware defeat map",
    description="Classify every fault-list bit of each implemented "
                "version as silent / single-domain-correctable / "
                "cross-domain-defeat-capable by walking the routed "
                "layout, and compare the layout-aware defeat probability "
                "with the netlist-only analytical estimate.",
    scale="smoke",
    stages=("build", "implement", "analyze"),
    analyses=("defeat_map",),
))

register_scenario(Scenario(
    id="prediction-vs-campaign",
    title="Static prediction vs measured campaign",
    description="Cross-validate the layout analyzer against injection: "
                "the predicted defeat-capable set must cover every "
                "measured wrong-answer bit and silent predictions must "
                "never measure wrong.  The campaign deliberately runs "
                "unprefiltered so the measurement is independent of the "
                "prediction it validates (the prefilter's own "
                "verdict-identity is covered by benchmarks/test_predict "
                "and the engine equivalence tests).",
    scale="smoke",
    backend="vector",
    analyses=("table3", "prediction_vs_campaign"),
))

register_scenario(Scenario(
    id="partition-shortlist",
    title="Optimizer shortlist campaign",
    description="Sweep voter partitions analytically, implement the "
                "Pareto-optimal shortlist and confirm it with measured "
                "campaigns — the workflow the paper's conclusions "
                "recommend.",
    scale="smoke",
    designs=(),  # derived by the build stage from the optimizer shortlist
    backend="vector",
    partition_selector="shortlist",
    analyses=("table3",),
))


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_scenario(scenario: Union[str, Scenario], *,
                 scale: Optional[str] = None,
                 backend: Optional[str] = None,
                 upset_model: Optional[str] = None,
                 num_faults: Optional[int] = None,
                 prefilter: Optional[str] = None,
                 seed: Optional[int] = None,
                 fault_list_mode: Optional[str] = None,
                 designs: Optional[Sequence[str]] = None,
                 jobs: int = 1,
                 flow_cache: StoreLike = None,
                 anneal_partitions: int = 1,
                 flow_threads: Optional[int] = None,
                 progress: bool = False,
                 progress_callback=None,
                 repeat: int = 1) -> Dict[str, object]:
    """Run one scenario (expanding its matrix axes) and return the report.

    Keyword overrides replace the scenario's defaults before the axes are
    expanded — overriding a field that is also an axis collapses that
    axis.  *repeat* re-runs the whole scenario that many times in-process
    and returns the **last** run's report: with a persistent *flow_cache*
    the second run exercises every cache layer, which is what the CI gate
    measures.
    """
    if isinstance(scenario, str):
        scenario = scenario_by_name(scenario)
    overrides: Dict[str, object] = {}
    if scale is not None:
        overrides["scale"] = scale
    if backend is not None:
        overrides["backend"] = backend
    if upset_model is not None:
        overrides["upset_model"] = upset_model
    if num_faults is not None:
        overrides["num_faults"] = num_faults
    if prefilter is not None:
        overrides["prefilter"] = prefilter
    if seed is not None:
        overrides["seed"] = seed
    if fault_list_mode is not None:
        overrides["fault_list_mode"] = fault_list_mode
    if designs is not None:
        overrides["designs"] = tuple(designs)
    if overrides:
        collapsed = tuple(axis for axis in scenario.axes
                          if axis[0] not in overrides)
        scenario = dataclasses.replace(scenario, axes=collapsed, **overrides)

    # Fail fast on an invalid backend or upset-model spec (including ones
    # hidden in matrix axes) before any expensive build/implement work.
    from .faults import PREFILTER_CHOICES, resolve_backend, \
        resolve_upset_model

    for _, variant in scenario.variants():
        resolve_backend(variant.backend)
        resolve_upset_model(variant.upset_model)
        if variant.prefilter not in PREFILTER_CHOICES:
            raise ValueError(f"unknown campaign prefilter "
                             f"{variant.prefilter!r}; choose from "
                             f"{PREFILTER_CHOICES}")

    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    report: Dict[str, object] = {}
    # Contexts of earlier repetitions are kept alive for the duration of
    # the run: the campaign cache holds its implementations by weak
    # reference, so dropping them between repetitions would silently turn
    # every warm-repetition lookup into a miss.
    keepalive: List[PipelineContext] = []
    for _ in range(repeat):
        report = _run_once(scenario, jobs=jobs, flow_cache=flow_cache,
                           anneal_partitions=anneal_partitions,
                           flow_threads=flow_threads,
                           progress=progress,
                           progress_callback=progress_callback,
                           keepalive=keepalive)
    report["repeat"] = repeat
    return report


def _run_once(scenario: Scenario, *, jobs: int, flow_cache: StoreLike,
              anneal_partitions: int = 1,
              flow_threads: Optional[int] = None,
              progress: bool, progress_callback=None,
              keepalive: Optional[List[PipelineContext]] = None
              ) -> Dict[str, object]:
    def execute(variant: Scenario) -> Dict[str, object]:
        ctx = variant.context(jobs=jobs, flow_cache=flow_cache,
                              anneal_partitions=anneal_partitions,
                              flow_threads=flow_threads,
                              progress=progress,
                              progress_callback=progress_callback)
        if keepalive is not None:
            keepalive.append(ctx)
        return pipeline_for(variant.stages).run(ctx)

    variants = list(scenario.variants())
    if len(variants) == 1 and variants[0][0] == "":
        return execute(variants[0][1])

    runs: Dict[str, object] = {}
    for variant_id, variant in variants:
        runs[variant_id] = execute(variant)
    from .pipeline import report_provenance

    report = report_provenance(scenario.id, scenario.scale, scenario.seed,
                               scenario.backend, scenario.upset_model,
                               scenario.fault_list_mode,
                               scenario.num_faults)
    report.update({
        "axes": [{"field": field, "values": list(values)}
                 for field, values in scenario.axes],
        "runs": runs,
    })
    return report
