"""The FPGA primitive cell library.

The cell set mirrors the Xilinx Spartan-II unified-library subset that the
paper's filter actually exercises: LUT1-LUT4, D flip-flops with clock enable
and synchronous/asynchronous reset, I/O buffers, the global clock buffer and
the constant sources.  Each cell carries metadata used by packing, timing and
resource accounting.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..netlist.ir import Definition, Direction, Library


@dataclasses.dataclass(frozen=True)
class CellInfo:
    """Static metadata about a primitive cell type."""

    name: str
    #: number of LUT inputs if the cell occupies a LUT, else None
    lut_inputs: Optional[int] = None
    #: True for flip-flops (state elements)
    is_sequential: bool = False
    #: True for IOB cells (IBUF/OBUF) which live in I/O blocks, not slices
    is_io: bool = False
    #: True for constant sources (GND/VCC) and clock buffers: no slice cost
    is_virtual: bool = False
    #: LUTs consumed in a slice
    area_luts: int = 0
    #: flip-flops consumed in a slice
    area_ffs: int = 0
    #: intrinsic propagation delay in nanoseconds (for the timing estimator)
    delay_ns: float = 0.0


#: Port lists per cell: (port name, direction, width)
_PORTS: Dict[str, Tuple[Tuple[str, Direction, int], ...]] = {
    "GND": (("G", Direction.OUTPUT, 1),),
    "VCC": (("P", Direction.OUTPUT, 1),),
    "LUT1": (("I0", Direction.INPUT, 1), ("O", Direction.OUTPUT, 1)),
    "LUT2": (("I0", Direction.INPUT, 1), ("I1", Direction.INPUT, 1),
             ("O", Direction.OUTPUT, 1)),
    "LUT3": (("I0", Direction.INPUT, 1), ("I1", Direction.INPUT, 1),
             ("I2", Direction.INPUT, 1), ("O", Direction.OUTPUT, 1)),
    "LUT4": (("I0", Direction.INPUT, 1), ("I1", Direction.INPUT, 1),
             ("I2", Direction.INPUT, 1), ("I3", Direction.INPUT, 1),
             ("O", Direction.OUTPUT, 1)),
    "FD": (("C", Direction.INPUT, 1), ("D", Direction.INPUT, 1),
           ("Q", Direction.OUTPUT, 1)),
    "FDR": (("C", Direction.INPUT, 1), ("D", Direction.INPUT, 1),
            ("R", Direction.INPUT, 1), ("Q", Direction.OUTPUT, 1)),
    "FDRE": (("C", Direction.INPUT, 1), ("CE", Direction.INPUT, 1),
             ("D", Direction.INPUT, 1), ("R", Direction.INPUT, 1),
             ("Q", Direction.OUTPUT, 1)),
    "FDCE": (("C", Direction.INPUT, 1), ("CE", Direction.INPUT, 1),
             ("D", Direction.INPUT, 1), ("CLR", Direction.INPUT, 1),
             ("Q", Direction.OUTPUT, 1)),
    "IBUF": (("I", Direction.INPUT, 1), ("O", Direction.OUTPUT, 1)),
    "OBUF": (("I", Direction.INPUT, 1), ("O", Direction.OUTPUT, 1)),
    "BUFG": (("I", Direction.INPUT, 1), ("O", Direction.OUTPUT, 1)),
}

#: Metadata per cell.
CELL_INFO: Dict[str, CellInfo] = {
    "GND": CellInfo("GND", is_virtual=True),
    "VCC": CellInfo("VCC", is_virtual=True),
    "LUT1": CellInfo("LUT1", lut_inputs=1, area_luts=1, delay_ns=0.7),
    "LUT2": CellInfo("LUT2", lut_inputs=2, area_luts=1, delay_ns=0.7),
    "LUT3": CellInfo("LUT3", lut_inputs=3, area_luts=1, delay_ns=0.7),
    "LUT4": CellInfo("LUT4", lut_inputs=4, area_luts=1, delay_ns=0.7),
    "FD": CellInfo("FD", is_sequential=True, area_ffs=1, delay_ns=1.1),
    "FDR": CellInfo("FDR", is_sequential=True, area_ffs=1, delay_ns=1.1),
    "FDRE": CellInfo("FDRE", is_sequential=True, area_ffs=1, delay_ns=1.1),
    "FDCE": CellInfo("FDCE", is_sequential=True, area_ffs=1, delay_ns=1.1),
    "IBUF": CellInfo("IBUF", is_io=True, delay_ns=1.4),
    "OBUF": CellInfo("OBUF", is_io=True, delay_ns=2.5),
    "BUFG": CellInfo("BUFG", is_virtual=True, delay_ns=0.6),
}

#: Names of the LUT cells, smallest to largest.
LUT_CELLS = ("LUT1", "LUT2", "LUT3", "LUT4")
#: Names of the flip-flop cells.
FF_CELLS = ("FD", "FDR", "FDRE", "FDCE")
#: Names of the I/O buffer cells.
IO_CELLS = ("IBUF", "OBUF")


def cell_info(name: str) -> CellInfo:
    """Return the :class:`CellInfo` for *name*, raising for unknown cells."""
    try:
        return CELL_INFO[name]
    except KeyError:
        raise KeyError(f"unknown primitive cell {name!r}") from None


def is_lut(name: str) -> bool:
    return name in LUT_CELLS


def is_flip_flop(name: str) -> bool:
    return name in FF_CELLS


def lut_input_count(name: str) -> int:
    info = cell_info(name)
    if info.lut_inputs is None:
        raise ValueError(f"{name} is not a LUT cell")
    return info.lut_inputs


def build_cell_library(name: str = "cells") -> Library:
    """Create a fresh primitive :class:`Library` with all cells declared."""
    library = Library(name)
    for cell_name, ports in _PORTS.items():
        definition = library.add_definition(cell_name, is_primitive=True)
        for port_name, direction, width in ports:
            definition.add_port(port_name, direction, width)
        definition.properties["cell_info"] = CELL_INFO[cell_name]
    return library


_SHARED_LIBRARY: Optional[Library] = None


def shared_cell_library() -> Library:
    """Return a process-wide shared primitive library.

    Designs generated by :mod:`repro.rtl` and transformed by the TMR engine
    reference these definitions; sharing them keeps definition identity
    stable across modules so that ``instance.reference is lut4_def``
    comparisons hold.
    """
    global _SHARED_LIBRARY
    if _SHARED_LIBRARY is None:
        _SHARED_LIBRARY = build_cell_library()
    return _SHARED_LIBRARY


def lut_cell_for_inputs(library: Library, num_inputs: int) -> Definition:
    """Return the smallest LUT definition with at least *num_inputs* inputs."""
    if not 1 <= num_inputs <= 4:
        raise ValueError(f"no LUT cell with {num_inputs} inputs")
    return library.definitions[f"LUT{num_inputs}"]
