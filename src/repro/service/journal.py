"""Durable job journal: a write-ahead log under the shared cache tier.

PR 7's job queue is purely in-memory — a service restart forgets every
queued and running job.  The journal fixes that with an append-only
JSONL log the orchestrator writes *before* acting:

.. code-block:: text

    <tier root>/journal/jobs.jsonl
    {"version": "journal-1", "event": "submitted", "job_id": ..., "spec": ...}
    {"version": "journal-1", "event": "running",   "job_id": ...}
    {"version": "journal-1", "event": "done",      "job_id": ...}
    {"version": "journal-1", "event": "shutdown",  "clean": true}

Durability follows the tier's contract, adapted to an append-only file:

* every record is one self-contained JSON line carrying an explicit
  ``version`` — a future layout change bumps it and old lines replay as
  corrupt instead of resurrecting incompatible records;
* appends are flushed and fsynced, so a journaled submission survives a
  SIGKILL arriving right after the HTTP 202;
* a torn trailing line (the crash arrived mid-append) fails to parse
  and is *counted and skipped* — it can delay one record, never poison
  the replay;
* compaction (:meth:`JobJournal.reset`) is an atomic truncate-by-replace
  (temp file + ``os.replace``), same as tier entry writes.

Replay folds the event stream into a final state per job; jobs whose
last state is ``submitted``/``running`` are *unsettled* — the
orchestrator resubmits them on startup and their shard checkpoints (see
:class:`~repro.faults.engine.ShardedBackend`) make the rerun cheap and
bit-identical.  A trailing ``shutdown`` record marks a clean drain; its
absence tells the next start it is recovering from a crash.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Union

from . import chaos

#: Bump when the record layout changes; old lines then count as corrupt
#: instead of replaying into incompatible states.
JOURNAL_VERSION = "journal-1"

#: Journal events that settle a job (terminal states).
SETTLED_EVENTS = ("done", "failed", "cancelled")


@dataclasses.dataclass
class JournalReplay:
    """The folded outcome of replaying one journal file."""

    #: last journaled record of each unsettled job, submission order:
    #: ``{"job_id", "fingerprint", "spec", "state"}``
    unsettled: List[Dict[str, object]]
    #: the journal ended on a clean ``shutdown`` marker
    clean_shutdown: bool
    #: lines that failed to parse or carried a foreign version
    corrupt_lines: int
    #: records replayed successfully
    replayed: int
    #: jobs that reached a terminal state
    settled: int


class JobJournal:
    """Append-only write-ahead log of job lifecycle events."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / "jobs.jsonl"
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def record(self, event: str, **fields: object) -> bool:
        """Append one event; returns False when the write failed.

        A full or read-only disk must never fail the operation being
        journaled (same contract as tier stores) — the event is merely
        not durable, and the return value lets callers count that.
        """
        entry: Dict[str, object] = {"version": JOURNAL_VERSION,
                                    "event": event, "ts": time.time()}
        entry.update(fields)
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            try:
                chaos.before_tier_write("journal")
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
            except OSError:
                return False
        return True

    # ------------------------------------------------------------------
    def replay(self) -> JournalReplay:
        """Fold the journal into per-job final states (crash-tolerant)."""
        jobs: Dict[str, Dict[str, object]] = {}
        corrupt = 0
        replayed = 0
        clean_shutdown = False
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            lines = []
        for line in lines:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                corrupt += 1
                continue
            if not isinstance(entry, dict) \
                    or entry.get("version") != JOURNAL_VERSION \
                    or not isinstance(entry.get("event"), str):
                corrupt += 1
                continue
            replayed += 1
            event = entry["event"]
            # Any event after a shutdown marker belongs to a newer
            # incarnation; the marker only counts when it is last.
            clean_shutdown = event == "shutdown"
            if event == "submitted":
                job_id = entry.get("job_id")
                if isinstance(job_id, str) \
                        and isinstance(entry.get("spec"), dict):
                    jobs[job_id] = {
                        "job_id": job_id,
                        "fingerprint": entry.get("fingerprint"),
                        "spec": entry["spec"],
                        "state": "submitted",
                    }
            elif event == "running" or event in SETTLED_EVENTS:
                job_id = entry.get("job_id")
                if isinstance(job_id, str) and job_id in jobs:
                    jobs[job_id]["state"] = event
        unsettled = [info for info in jobs.values()
                     if info["state"] not in SETTLED_EVENTS]
        settled = len(jobs) - len(unsettled)
        return JournalReplay(unsettled=unsettled,
                             clean_shutdown=clean_shutdown,
                             corrupt_lines=corrupt, replayed=replayed,
                             settled=settled)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Atomically truncate the journal (post-recovery compaction).

        Recovered jobs are re-journaled as fresh submissions by the
        orchestrator, so nothing in the old incarnation's log is needed
        once replay has happened.
        """
        try:
            handle = tempfile.NamedTemporaryFile(
                dir=self.root, prefix=".jobs.", suffix=".tmp", delete=False)
            with handle:
                pass
            os.replace(handle.name, self.path)
        except OSError:
            pass
