"""Reproduce the paper's experiment on a reduced filter: Tables 2, 3 and 4.

Builds the five versions of the FIR filter (unprotected plus the four TMR
partitions), implements each on the device model, runs one bitstream
fault-injection campaign per version and prints the three tables next to the
paper's reference numbers.

Run with ``python examples/fir_fault_injection_campaign.py [scale]
[backend] [jobs]`` where *scale* is ``smoke`` (default, about a minute),
``fast`` or ``paper``, *backend* selects the campaign execution engine
(``serial``, ``batch``, ``process``, or the bit-parallel ``vector`` — the
default, which packs whole fault shards into big-int lanes), and *jobs*
implements the five filter versions in that many parallel worker
processes; every backend produces identical results.  Set the
``REPRO_FLOW_CACHE`` environment variable to a directory to persist the
place-and-route artifacts — a second run then skips implementation
entirely.
"""

import os
import sys

from repro.analysis import best_partition, format_resource_table, \
    improvement_factor, resource_table
from repro.experiments import (DESIGN_ORDER, PAPER_TABLE3_PERCENT,
                               build_design_suite, campaign_config_for,
                               implement_design_suite)
from repro.faults import (cache_stats, run_campaign, table3_report,
                          table4_report)


def main(scale: str = "smoke", backend: str = "vector",
         jobs: int = 1) -> None:
    print(f"building the five filter versions at scale {scale!r} ...")
    suite = build_design_suite(scale)
    print(f"  filter: {suite.spec.taps} taps, {suite.spec.data_width}-bit "
          f"samples, coefficients {suite.spec.coefficients}")

    flow_cache = os.environ.get("REPRO_FLOW_CACHE")
    print(f"implementing (pack / place / route / bitstream; jobs={jobs}, "
          f"flow cache {flow_cache or 'off'}) ...")
    implementations = implement_design_suite(suite, jobs=jobs,
                                             artifact_store=flow_cache)
    for name in DESIGN_ORDER:
        summary = implementations[name].summary()
        print(f"  {name:10s}: {summary['slices']:4d} slices, "
              f"{summary['routed_nets']:5d} nets, "
              f"{summary['fmax_mhz']:5.1f} MHz")

    print("\n" + format_resource_table(
        resource_table(implementations, order=DESIGN_ORDER)))

    config = campaign_config_for(suite)
    print(f"\nrunning fault-injection campaigns "
          f"({config.num_faults} upsets per design, "
          f"backend {backend!r}) ...")
    campaigns = {}
    for name in DESIGN_ORDER:
        campaigns[name] = run_campaign(implementations[name], config,
                                       backend=backend)
        print(f"  {name:10s}: {campaigns[name].wrong_answer_percent:6.2f}% "
              f"wrong answers "
              f"(paper: {PAPER_TABLE3_PERCENT[name]:6.2f}%)  "
              f"[{campaigns[name].faults_per_second:7.0f} faults/s]")

    print("\n" + table3_report(campaigns, order=DESIGN_ORDER,
                               paper_reference=PAPER_TABLE3_PERCENT))
    print("\n" + table4_report(campaigns, order=DESIGN_ORDER))

    tmr_only = {name: campaigns[name] for name in DESIGN_ORDER
                if name != "standard"}
    best = best_partition(tmr_only)
    print(f"\nbest TMR partition measured: {best} (paper: TMR_p2)")
    print(f"improvement of TMR_p2 over unvoted registers: "
          f"{improvement_factor(campaigns, 'TMR_p3_nv', 'TMR_p2'):.1f}x")

    # Repeated campaigns are where the cache pays off: the golden trace,
    # fault list and per-bit effects of TMR_p2 are all reused.
    rerun = run_campaign(implementations["TMR_p2"], config, backend=backend)
    stats = cache_stats()
    print(f"re-running TMR_p2 against the warm cache: "
          f"{rerun.faults_per_second:7.0f} faults/s "
          f"(first run {campaigns['TMR_p2'].faults_per_second:7.0f}); "
          f"{stats['golden_hits']} golden-trace and "
          f"{stats['effect_hits']} fault-effect cache hits")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "smoke",
         sys.argv[2] if len(sys.argv) > 2 else "vector",
         int(sys.argv[3]) if len(sys.argv) > 3 else 1)
