"""Core netlist intermediate representation.

The IR follows the style of academic netlist manipulation libraries
(SpyDrNet, RapidWright's logical netlist): a :class:`Netlist` owns
:class:`Library` objects, a library owns :class:`Definition` objects (module
types), and a definition owns :class:`Port`, :class:`Instance` and
:class:`Net` objects.  Connectivity is expressed through :class:`Pin` objects
attached to nets: an :class:`InstancePin` is a (instance, port, bit) triple
and a :class:`TopPin` is a (definition, port, bit) triple representing the
definition's own interface.

The IR supports hierarchy; most downstream tools (technology mapping, TMR
insertion, pack/place/route, simulation, fault injection) operate on a
flattened netlist of primitive cells produced by
:func:`repro.netlist.transform.flatten`.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class NetlistError(Exception):
    """Raised for structural errors while building or editing a netlist."""


class Direction(enum.Enum):
    """Direction of a port as seen from outside its definition."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"

    def flipped(self) -> "Direction":
        """Return the direction seen from inside the definition."""
        if self is Direction.INPUT:
            return Direction.OUTPUT
        if self is Direction.OUTPUT:
            return Direction.INPUT
        return Direction.INOUT


class Port:
    """A named, possibly multi-bit port of a :class:`Definition`."""

    __slots__ = ("name", "direction", "width", "definition")

    def __init__(self, name: str, direction: Direction, width: int = 1,
                 definition: Optional["Definition"] = None) -> None:
        if width < 1:
            raise NetlistError(f"port {name!r} must have width >= 1, got {width}")
        self.name = name
        self.direction = direction
        self.width = width
        self.definition = definition

    @property
    def is_input(self) -> bool:
        return self.direction is Direction.INPUT

    @property
    def is_output(self) -> bool:
        return self.direction is Direction.OUTPUT

    def bits(self) -> Iterator[int]:
        """Iterate over the bit indices of this port."""
        return iter(range(self.width))

    def __repr__(self) -> str:
        return f"Port({self.name!r}, {self.direction.value}, width={self.width})"


class Pin:
    """Base class for a single-bit connection point hanging off a net."""

    __slots__ = ("port_name", "index", "net")

    def __init__(self, port_name: str, index: int) -> None:
        self.port_name = port_name
        self.index = index
        self.net: Optional[Net] = None

    @property
    def is_driver(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def port(self) -> Port:  # pragma: no cover - overridden
        raise NotImplementedError


class InstancePin(Pin):
    """A pin of an :class:`Instance` (a port bit of the instantiated cell)."""

    __slots__ = ("instance",)

    def __init__(self, instance: "Instance", port_name: str, index: int) -> None:
        super().__init__(port_name, index)
        self.instance = instance

    def port(self) -> Port:
        return self.instance.reference.ports[self.port_name]

    @property
    def is_driver(self) -> bool:
        """An instance output pin drives the net it is attached to."""
        return self.port().direction is Direction.OUTPUT

    def __repr__(self) -> str:
        return (f"InstancePin({self.instance.name}.{self.port_name}"
                f"[{self.index}])")


class TopPin(Pin):
    """A pin on the boundary of a definition (its own port bit)."""

    __slots__ = ("definition",)

    def __init__(self, definition: "Definition", port_name: str, index: int) -> None:
        super().__init__(port_name, index)
        self.definition = definition

    def port(self) -> Port:
        return self.definition.ports[self.port_name]

    @property
    def is_driver(self) -> bool:
        """A definition *input* port drives nets inside the definition."""
        return self.port().direction is Direction.INPUT

    def __repr__(self) -> str:
        return (f"TopPin({self.definition.name}.{self.port_name}"
                f"[{self.index}])")


class Net:
    """A single-bit electrical node inside a definition."""

    __slots__ = ("name", "definition", "pins", "properties")

    def __init__(self, name: str, definition: Optional["Definition"] = None) -> None:
        self.name = name
        self.definition = definition
        self.pins: List[Pin] = []
        self.properties: Dict[str, object] = {}

    def connect(self, pin: Pin) -> None:
        """Attach *pin* to this net, detaching it from any previous net."""
        if pin.net is self:
            return
        if pin.net is not None:
            pin.net.disconnect(pin)
        pin.net = self
        self.pins.append(pin)

    def disconnect(self, pin: Pin) -> None:
        """Detach *pin* from this net."""
        if pin.net is not self:
            raise NetlistError(f"{pin!r} is not connected to net {self.name!r}")
        pin.net = None
        self.pins.remove(pin)

    def drivers(self) -> List[Pin]:
        """Pins that drive a value onto this net."""
        return [p for p in self.pins if p.is_driver]

    def sinks(self) -> List[Pin]:
        """Pins that read the value of this net."""
        return [p for p in self.pins if not p.is_driver]

    def instance_pins(self) -> List[InstancePin]:
        return [p for p in self.pins if isinstance(p, InstancePin)]

    def top_pins(self) -> List[TopPin]:
        return [p for p in self.pins if isinstance(p, TopPin)]

    def __repr__(self) -> str:
        return f"Net({self.name!r}, pins={len(self.pins)})"


class Instance:
    """An instantiation of a :class:`Definition` inside another definition."""

    __slots__ = ("name", "reference", "parent", "properties", "_pins")

    def __init__(self, name: str, reference: "Definition",
                 parent: Optional["Definition"] = None) -> None:
        self.name = name
        self.reference = reference
        self.parent = parent
        self.properties: Dict[str, object] = {}
        self._pins: Dict[Tuple[str, int], InstancePin] = {}

    def pin(self, port_name: str, index: int = 0) -> InstancePin:
        """Return (creating on demand) the pin for *port_name*[*index*]."""
        port = self.reference.ports.get(port_name)
        if port is None:
            raise NetlistError(
                f"instance {self.name!r} of {self.reference.name!r} has no "
                f"port {port_name!r}")
        if not 0 <= index < port.width:
            raise NetlistError(
                f"bit {index} out of range for port {port_name!r} "
                f"(width {port.width}) on instance {self.name!r}")
        key = (port_name, index)
        if key not in self._pins:
            self._pins[key] = InstancePin(self, port_name, index)
        return self._pins[key]

    def pins(self) -> Iterator[InstancePin]:
        """Iterate over the pins that have been materialized so far."""
        return iter(list(self._pins.values()))

    def all_pins(self) -> Iterator[InstancePin]:
        """Iterate over one pin per bit of every port (materializing them)."""
        for port in self.reference.ports.values():
            for bit in port.bits():
                yield self.pin(port.name, bit)

    def connect(self, port_name: str, net: Net, index: int = 0) -> InstancePin:
        """Connect port bit *port_name*[*index*] to *net* and return the pin."""
        pin = self.pin(port_name, index)
        net.connect(pin)
        return pin

    def net_of(self, port_name: str, index: int = 0) -> Optional[Net]:
        """Return the net connected to the given port bit, or ``None``."""
        key = (port_name, index)
        pin = self._pins.get(key)
        return pin.net if pin is not None else None

    def disconnect_all(self) -> None:
        """Detach every connected pin of this instance."""
        for pin in list(self._pins.values()):
            if pin.net is not None:
                pin.net.disconnect(pin)

    @property
    def is_primitive(self) -> bool:
        return self.reference.is_primitive

    def __repr__(self) -> str:
        return f"Instance({self.name!r} : {self.reference.name})"


class Definition:
    """A module type: an interface (ports) plus contents (instances, nets)."""

    def __init__(self, name: str, library: Optional["Library"] = None,
                 is_primitive: bool = False) -> None:
        self.name = name
        self.library = library
        self.is_primitive = is_primitive
        self.ports: Dict[str, Port] = {}
        self.instances: Dict[str, Instance] = {}
        self.nets: Dict[str, Net] = {}
        self.properties: Dict[str, object] = {}
        self._top_pins: Dict[Tuple[str, int], TopPin] = {}
        self._name_counter = itertools.count()

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------
    def add_port(self, name: str, direction: Direction, width: int = 1) -> Port:
        if name in self.ports:
            raise NetlistError(f"definition {self.name!r} already has port {name!r}")
        port = Port(name, direction, width, definition=self)
        self.ports[name] = port
        return port

    def top_pin(self, port_name: str, index: int = 0) -> TopPin:
        """Return (creating on demand) the boundary pin for a port bit."""
        port = self.ports.get(port_name)
        if port is None:
            raise NetlistError(f"definition {self.name!r} has no port {port_name!r}")
        if not 0 <= index < port.width:
            raise NetlistError(
                f"bit {index} out of range for port {port_name!r} "
                f"(width {port.width}) on definition {self.name!r}")
        key = (port_name, index)
        if key not in self._top_pins:
            self._top_pins[key] = TopPin(self, port_name, index)
        return self._top_pins[key]

    def top_pins(self) -> Iterator[TopPin]:
        return iter(list(self._top_pins.values()))

    def input_ports(self) -> List[Port]:
        return [p for p in self.ports.values() if p.is_input]

    def output_ports(self) -> List[Port]:
        return [p for p in self.ports.values() if p.is_output]

    # ------------------------------------------------------------------
    # Nets
    # ------------------------------------------------------------------
    def add_net(self, name: Optional[str] = None) -> Net:
        if name is None:
            name = self.make_unique_name("net")
        if name in self.nets:
            raise NetlistError(f"definition {self.name!r} already has net {name!r}")
        net = Net(name, definition=self)
        self.nets[name] = net
        return net

    def get_or_create_net(self, name: str) -> Net:
        net = self.nets.get(name)
        if net is None:
            net = self.add_net(name)
        return net

    def remove_net(self, net: Net) -> None:
        if self.nets.get(net.name) is not net:
            raise NetlistError(f"net {net.name!r} is not owned by {self.name!r}")
        for pin in list(net.pins):
            net.disconnect(pin)
        del self.nets[net.name]
        net.definition = None

    def rename_net(self, net: Net, new_name: str) -> None:
        if self.nets.get(net.name) is not net:
            raise NetlistError(f"net {net.name!r} is not owned by {self.name!r}")
        if new_name in self.nets:
            raise NetlistError(f"definition {self.name!r} already has net {new_name!r}")
        del self.nets[net.name]
        net.name = new_name
        self.nets[new_name] = net

    # ------------------------------------------------------------------
    # Instances
    # ------------------------------------------------------------------
    def add_instance(self, reference: "Definition",
                     name: Optional[str] = None) -> Instance:
        if name is None:
            name = self.make_unique_name(reference.name.lower())
        if name in self.instances:
            raise NetlistError(
                f"definition {self.name!r} already has instance {name!r}")
        inst = Instance(name, reference, parent=self)
        self.instances[name] = inst
        return inst

    def remove_instance(self, instance: Instance) -> None:
        if self.instances.get(instance.name) is not instance:
            raise NetlistError(
                f"instance {instance.name!r} is not owned by {self.name!r}")
        instance.disconnect_all()
        del self.instances[instance.name]
        instance.parent = None

    def rename_instance(self, instance: Instance, new_name: str) -> None:
        if self.instances.get(instance.name) is not instance:
            raise NetlistError(
                f"instance {instance.name!r} is not owned by {self.name!r}")
        if new_name in self.instances:
            raise NetlistError(
                f"definition {self.name!r} already has instance {new_name!r}")
        del self.instances[instance.name]
        instance.name = new_name
        self.instances[new_name] = instance

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def make_unique_name(self, prefix: str) -> str:
        """Return a name of the form ``prefix_N`` not yet used in this scope."""
        while True:
            candidate = f"{prefix}_{next(self._name_counter)}"
            if candidate not in self.instances and candidate not in self.nets:
                return candidate

    def primitive_instances(self) -> List[Instance]:
        return [i for i in self.instances.values() if i.is_primitive]

    def hierarchical_instances(self) -> List[Instance]:
        return [i for i in self.instances.values() if not i.is_primitive]

    def count_primitives(self) -> Dict[str, int]:
        """Count leaf cells by type, recursing through hierarchy."""
        counts: Dict[str, int] = {}
        self._count_primitives_into(counts)
        return counts

    def _count_primitives_into(self, counts: Dict[str, int]) -> None:
        for inst in self.instances.values():
            if inst.is_primitive:
                counts[inst.reference.name] = counts.get(inst.reference.name, 0) + 1
            else:
                inst.reference._count_primitives_into(counts)

    def __repr__(self) -> str:
        return (f"Definition({self.name!r}, ports={len(self.ports)}, "
                f"instances={len(self.instances)}, nets={len(self.nets)})")


class Library:
    """A named collection of definitions."""

    def __init__(self, name: str, netlist: Optional["Netlist"] = None) -> None:
        self.name = name
        self.netlist = netlist
        self.definitions: Dict[str, Definition] = {}

    def add_definition(self, name: str, is_primitive: bool = False) -> Definition:
        if name in self.definitions:
            raise NetlistError(f"library {self.name!r} already defines {name!r}")
        definition = Definition(name, library=self, is_primitive=is_primitive)
        self.definitions[name] = definition
        return definition

    def adopt(self, definition: Definition) -> Definition:
        """Take ownership of an externally created definition."""
        if definition.name in self.definitions:
            raise NetlistError(
                f"library {self.name!r} already defines {definition.name!r}")
        definition.library = self
        self.definitions[definition.name] = definition
        return definition

    def get(self, name: str) -> Optional[Definition]:
        return self.definitions.get(name)

    def __iter__(self) -> Iterator[Definition]:
        return iter(self.definitions.values())

    def __contains__(self, name: str) -> bool:
        return name in self.definitions

    def __repr__(self) -> str:
        return f"Library({self.name!r}, definitions={len(self.definitions)})"


class Netlist:
    """Top-level container: libraries plus a designated top definition."""

    def __init__(self, name: str = "design") -> None:
        self.name = name
        self.libraries: Dict[str, Library] = {}
        self.top: Optional[Definition] = None

    def add_library(self, name: str) -> Library:
        if name in self.libraries:
            raise NetlistError(f"netlist already has library {name!r}")
        library = Library(name, netlist=self)
        self.libraries[name] = library
        return library

    def get_library(self, name: str) -> Library:
        library = self.libraries.get(name)
        if library is None:
            library = self.add_library(name)
        return library

    def set_top(self, definition: Definition) -> None:
        self.top = definition

    def find_definition(self, name: str) -> Optional[Definition]:
        for library in self.libraries.values():
            if name in library:
                return library.definitions[name]
        return None

    def all_definitions(self) -> Iterator[Definition]:
        for library in self.libraries.values():
            yield from library

    def __repr__(self) -> str:
        top = self.top.name if self.top is not None else None
        return f"Netlist({self.name!r}, top={top!r})"


def bus_nets(definition: Definition, base_name: str, width: int) -> List[Net]:
    """Create *width* nets named ``base_name[i]`` and return them LSB-first."""
    return [definition.add_net(f"{base_name}[{i}]") for i in range(width)]


def connect_bus(instance: Instance, port_name: str, nets: Iterable[Net]) -> None:
    """Connect an iterable of nets (LSB first) to the bits of a bus port."""
    for index, net in enumerate(nets):
        instance.connect(port_name, net, index)
