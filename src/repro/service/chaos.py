"""Deterministic chaos harness: seeded fault-point injection for the service.

The campaign service claims to be crash-safe (journaled jobs, shard
checkpoints, worker supervision).  This module makes those claims
testable by injecting failures at *named, deterministic fault points*
instead of relying on luck:

=====================  ==================================================
Point spec             Effect
=====================  ==================================================
``kill-shard:K``       the worker process evaluating shard ``K`` calls
                       ``os._exit(137)`` — a SIGKILL-grade death the
                       sharded backend's supervision must absorb
``crash-after-shards:K``  raise :class:`ChaosCrash` in the *parent* once
                       ``K`` shard checkpoints have been stored this
                       run — simulates the whole service dying
                       mid-campaign without settling the job
``write-latency:S``    sleep ``S`` seconds before every tier write
``enospc[:NS]``        tier writes (to namespace ``NS``, or all) raise
                       ``OSError(ENOSPC)`` — the store must degrade to
                       "not persisted", never fail the computation
``corrupt[:NS]``       truncate the entry just written to namespace
                       ``NS`` (a torn write) — the next reader must
                       evict it as corrupt and recompute
=====================  ==================================================

Activation is ambient so fault points reach worker *processes* without
threading knobs through every layer: set ``REPRO_CHAOS`` to a
``;``-separated list of point specs.  Determinism comes from the specs
themselves — every point fires at an exact shard index / store count,
never probabilistically, so a chaos run is as reproducible as the
campaign it perturbs.

Fire-once semantics: when ``REPRO_CHAOS_STATE`` names a directory, each
event-like point (kill, crash, corrupt) fires exactly once per state
directory — the claim is an atomic ``O_CREAT | O_EXCL`` marker-file
create, which is race-free across worker processes.  Without a state
directory those points fire on *every* visit, which is the way to drive
a shard into retry exhaustion and backend degradation.  ``enospc`` and
``write-latency`` model persistent conditions and always apply.
"""

from __future__ import annotations

import dataclasses
import errno
import os
import time
from typing import Dict, Optional, Tuple

#: Point specs, e.g. ``kill-shard:1;corrupt:golden;write-latency:0.01``.
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Directory holding fire-once markers; unset means "fire every visit".
CHAOS_STATE_ENV_VAR = "REPRO_CHAOS_STATE"

#: Exit status of a chaos-killed worker (the SIGKILL convention).
KILLED_WORKER_STATUS = 137


class ChaosCrash(Exception):
    """A simulated hard crash of the service process.

    Deliberately escapes the orchestrator's job-failure handling: a real
    SIGKILL never gets to mark its job failed, so neither does this —
    the job stays unsettled and only the journal knows about it.
    """


@dataclasses.dataclass(frozen=True)
class ChaosConfig:
    """One parsed ``REPRO_CHAOS`` value."""

    raw: str
    #: point kind -> argument strings (empty tuple for bare points)
    points: Dict[str, Tuple[str, ...]]
    state_dir: Optional[str] = None

    @classmethod
    def parse(cls, raw: str,
              state_dir: Optional[str] = None) -> "ChaosConfig":
        points: Dict[str, Tuple[str, ...]] = {}
        for item in raw.split(";"):
            item = item.strip()
            if not item:
                continue
            kind, _, argument = item.partition(":")
            points[kind.strip()] = tuple(
                part.strip() for part in argument.split(":")) \
                if argument else ()
        return cls(raw=raw, points=points, state_dir=state_dir)

    # ------------------------------------------------------------------
    def args(self, kind: str) -> Optional[Tuple[str, ...]]:
        """The point's arguments, or ``None`` when it is not configured."""
        return self.points.get(kind)

    def claim(self, label: str) -> bool:
        """Whether this visit of a fire-once point should fire.

        With a state directory the claim is an exclusive marker-file
        create — atomic across processes, so exactly one visitor wins.
        Without one every visit fires.
        """
        if self.state_dir is None:
            return True
        try:
            os.makedirs(self.state_dir, exist_ok=True)
            fd = os.open(os.path.join(self.state_dir, f"{label}.fired"),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            # An unusable state dir must not turn chaos into a hang;
            # degrade to fire-every-visit.
            return True
        os.close(fd)
        return True


def active_chaos() -> Optional[ChaosConfig]:
    """The chaos configuration of this process, or ``None``.

    Read from the environment on every call (cheap: one getenv plus a
    memoized parse) so worker processes — which inherit the environment
    under both fork and spawn — see the same fault points as the parent.
    """
    global _CACHED
    raw = os.environ.get(CHAOS_ENV_VAR)
    if not raw:
        return None
    state_dir = os.environ.get(CHAOS_STATE_ENV_VAR) or None
    cached = _CACHED
    if cached is not None and cached.raw == raw \
            and cached.state_dir == state_dir:
        return cached
    _CACHED = ChaosConfig.parse(raw, state_dir)
    return _CACHED


_CACHED: Optional[ChaosConfig] = None


# ----------------------------------------------------------------------
# Fault-point hooks (called from the tier and the sharded backend)
# ----------------------------------------------------------------------
def on_shard_start(shard_index: int) -> None:
    """Worker-side hook: die hard when this shard is the seeded target."""
    config = active_chaos()
    if config is None:
        return
    args = config.args("kill-shard")
    if args and args[0].isdigit() and int(args[0]) == shard_index \
            and config.claim(f"kill-shard-{shard_index}"):
        os._exit(KILLED_WORKER_STATUS)


def on_shard_checkpointed(stored_this_run: int) -> None:
    """Parent-side hook: simulate the service dying after ``K`` stores."""
    config = active_chaos()
    if config is None:
        return
    args = config.args("crash-after-shards")
    if args and args[0].isdigit() and stored_this_run >= int(args[0]) \
            and config.claim("crash-after-shards"):
        raise ChaosCrash(
            f"chaos: simulated service crash after {stored_this_run} "
            "shard checkpoints")


def _namespace_matches(args: Tuple[str, ...], namespace: str) -> bool:
    return not args or not args[0] or args[0] == namespace


def before_tier_write(namespace: str) -> None:
    """Pre-write hook: inject latency and/or a disk-full failure."""
    config = active_chaos()
    if config is None:
        return
    latency = config.args("write-latency")
    if latency and latency[0]:
        try:
            time.sleep(float(latency[0]))
        except ValueError:
            pass
    enospc = config.args("enospc")
    if enospc is not None and _namespace_matches(enospc, namespace):
        raise OSError(errno.ENOSPC,
                      f"chaos: simulated disk-full writing {namespace!r}")


def after_tier_write(namespace: str, path: "os.PathLike[str]") -> None:
    """Post-write hook: tear the entry that was just persisted."""
    config = active_chaos()
    if config is None:
        return
    corrupt = config.args("corrupt")
    if corrupt is None or not _namespace_matches(corrupt, namespace):
        return
    if not config.claim(f"corrupt-{namespace}"):
        return
    try:
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
    except OSError:
        pass
