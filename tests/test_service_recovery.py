"""Crash-safety tests: journal, shard checkpoints, chaos, recovery.

Everything here runs the ``tiny`` scale so the *recovery semantics* —
durable job journal, shard-level checkpoint/resume, worker supervision
with retry and backend degradation, deadline/cancel propagation, the
drain protocol — are exercised end to end in seconds.  The headline
contract under test: a campaign interrupted at a seeded chaos fault
point and resumed after a (simulated) full service restart recomputes
only the missing shards and produces a stable report byte-identical to
an uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import pipeline
from repro.faults import clear_cache, run_campaign, CampaignConfig, \
    ShardedBackend
from repro.fpga.config import clear_layout_cache
from repro.fpga.routing import clear_routing_graph_cache
from repro.pipeline import stable_report
from repro.scenarios import run_scenario, scenario_by_name
from repro.service import (CampaignService, ChaosConfig, ChaosCrash,
                           JobJournal, JobSpec, JobState, ServiceDraining,
                           SharedCacheTier, activate_tier, deactivate_tier)
from repro.service import chaos
from repro.service.httpd import (MAX_WAIT_SECONDS, cancel_job, fetch_job,
                                 make_server, submit_job, wait_for_job)
from repro.service.journal import JOURNAL_VERSION


@pytest.fixture(autouse=True)
def no_ambient_tier():
    deactivate_tier()
    yield
    deactivate_tier()


@pytest.fixture(autouse=True)
def no_ambient_chaos(monkeypatch):
    monkeypatch.delenv(chaos.CHAOS_ENV_VAR, raising=False)
    monkeypatch.delenv(chaos.CHAOS_STATE_ENV_VAR, raising=False)


def _simulate_restart() -> None:
    """Drop every in-process cache; only the tier directory survives."""
    clear_cache()
    pipeline._SUITE_MEMO.clear()
    clear_routing_graph_cache()
    clear_layout_cache()
    deactivate_tier()


def tiny_spec(**overrides) -> JobSpec:
    defaults = dict(scale="tiny", num_faults=30, designs=("standard",))
    defaults.update(overrides)
    return JobSpec("table3-fir", **defaults)


# ----------------------------------------------------------------------
# The job journal
# ----------------------------------------------------------------------
class TestJobJournal:
    def test_record_replay_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path)
        spec = tiny_spec().as_dict()
        assert journal.record("submitted", job_id="job-0001",
                              fingerprint="f1", spec=spec)
        journal.record("running", job_id="job-0001")
        journal.record("submitted", job_id="job-0002",
                       fingerprint="f2", spec=spec)
        journal.record("done", job_id="job-0001")
        replay = journal.replay()
        assert replay.replayed == 4
        assert replay.settled == 1
        assert not replay.clean_shutdown
        assert [info["job_id"] for info in replay.unsettled] == ["job-0002"]
        assert replay.unsettled[0]["spec"] == spec
        assert replay.unsettled[0]["state"] == "submitted"

    def test_torn_tail_line_is_skipped_not_poisonous(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record("submitted", job_id="job-0001",
                       fingerprint="f", spec=tiny_spec().as_dict())
        with open(journal.path, "a") as handle:
            handle.write('{"version": "' + JOURNAL_VERSION
                         + '", "event": "runn')  # the crash arrived here
        replay = journal.replay()
        assert replay.corrupt_lines == 1
        assert len(replay.unsettled) == 1

    def test_foreign_version_counts_as_corrupt(self, tmp_path):
        journal = JobJournal(tmp_path)
        with open(journal.path, "a") as handle:
            handle.write(json.dumps({"version": "journal-999",
                                     "event": "submitted",
                                     "job_id": "job-0001",
                                     "spec": {}}) + "\n")
        replay = journal.replay()
        assert replay.corrupt_lines == 1
        assert not replay.unsettled

    def test_shutdown_marker_only_counts_when_last(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record("shutdown", clean=True)
        assert journal.replay().clean_shutdown
        journal.record("submitted", job_id="job-0001", fingerprint="f",
                       spec=tiny_spec().as_dict())
        replay = journal.replay()
        assert not replay.clean_shutdown
        assert len(replay.unsettled) == 1

    def test_reset_truncates_atomically(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record("submitted", job_id="job-0001", fingerprint="f",
                       spec=tiny_spec().as_dict())
        journal.reset()
        replay = journal.replay()
        assert replay.replayed == 0 and not replay.unsettled
        assert not list(tmp_path.glob("*.tmp"))

    def test_missing_file_replays_empty(self, tmp_path):
        replay = JobJournal(tmp_path / "fresh").replay()
        assert replay.replayed == 0
        assert not replay.clean_shutdown


# ----------------------------------------------------------------------
# The chaos harness
# ----------------------------------------------------------------------
class TestChaosHarness:
    def test_parse_points(self):
        config = ChaosConfig.parse(
            "kill-shard:1; corrupt:golden ;write-latency:0.5;enospc")
        assert config.args("kill-shard") == ("1",)
        assert config.args("corrupt") == ("golden",)
        assert config.args("write-latency") == ("0.5",)
        assert config.args("enospc") == ()
        assert config.args("not-configured") is None

    def test_claim_fires_once_with_state_dir(self, tmp_path):
        config = ChaosConfig.parse("kill-shard:0",
                                   state_dir=str(tmp_path))
        assert config.claim("kill-shard-0")
        assert not config.claim("kill-shard-0")
        assert config.claim("another-label")

    def test_claim_without_state_dir_fires_every_visit(self):
        config = ChaosConfig.parse("kill-shard:0")
        assert config.claim("x") and config.claim("x")

    def test_enospc_degrades_store_not_computation(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV_VAR, "enospc")
        tier = SharedCacheTier(tmp_path)
        assert not tier.store_defeat_map("fp", "design", [1])
        assert tier.stats.store_failures == 1
        assert tier.load_defeat_map("fp", "design") is None  # plain miss

    def test_enospc_scoped_to_namespace(self, tmp_path, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV_VAR, "enospc:golden")
        tier = SharedCacheTier(tmp_path)
        assert not tier.store_golden("fp", ("k",), "t", "p")
        assert tier.store_defeat_map("fp", "design", [1])

    def test_corrupt_write_is_evicted_on_next_load(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV_VAR, "corrupt:defeat-map")
        tier = SharedCacheTier(tmp_path)
        assert tier.store_defeat_map("fp", "design", list(range(100)))
        assert tier.load_defeat_map("fp", "design") is None
        assert tier.stats.corrupt_evictions == 1
        # The eviction removed the torn file; a re-store (the chaos point
        # fires per-visit without a state dir, so scope it away) works.
        monkeypatch.delenv(chaos.CHAOS_ENV_VAR)
        assert tier.store_defeat_map("fp", "design", [2])
        assert tier.load_defeat_map("fp", "design") == [2]

    def test_crash_after_shards_raises_chaoscrash(self, monkeypatch,
                                                  tmp_path):
        monkeypatch.setenv(chaos.CHAOS_ENV_VAR, "crash-after-shards:2")
        monkeypatch.setenv(chaos.CHAOS_STATE_ENV_VAR, str(tmp_path))
        chaos.on_shard_checkpointed(1)  # below the threshold
        with pytest.raises(ChaosCrash):
            chaos.on_shard_checkpointed(2)
        chaos.on_shard_checkpointed(5)  # fire-once: the marker is claimed


# ----------------------------------------------------------------------
# Tier robustness satellites
# ----------------------------------------------------------------------
class TestTierRobustness:
    def test_orphan_tmp_files_swept_on_startup(self, tmp_path):
        tier = SharedCacheTier(tmp_path)
        tier.store_defeat_map("fp", "design", [1])
        orphan = tmp_path / "defeat-map" / ".deadbeef.tmp"
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"torn write from a killed process")
        reopened = SharedCacheTier(tmp_path)
        assert not orphan.exists()
        assert reopened.stats.orphan_tmp_removed == 1
        assert reopened.load_defeat_map("fp", "design") == [1]

    def test_shard_verdict_round_trip_and_counters(self, tmp_path):
        tier = SharedCacheTier(tmp_path)
        assert tier.load_shard_verdicts("campaign-4-2-0") is None
        assert tier.store_shard_verdicts("campaign-4-2-0",
                                         {"start": 0, "stop": 2,
                                          "verdicts": [1, 2]})
        assert tier.load_shard_verdicts("campaign-4-2-0") == {
            "start": 0, "stop": 2, "verdicts": [1, 2]}
        assert tier.stats.shard_misses == 1
        assert tier.stats.shard_hits == 1
        assert tier.stats.shard_stores == 1

    def test_shard_counters_excluded_from_hit_rate(self, tmp_path):
        tier = SharedCacheTier(tmp_path)
        tier.store_golden("fp", ("k",), "t", "p")
        assert tier.load_golden("fp", ("k",)) is not None
        before = tier.stats.hit_rate()
        tier.load_shard_verdicts("missing")  # a structural miss
        assert tier.stats.hit_rate() == before


# ----------------------------------------------------------------------
# Shard checkpoints: store, resume, identity
# ----------------------------------------------------------------------
class TestShardCheckpoints:
    CONFIG = CampaignConfig(num_faults=40, workload_cycles=6, seed=9)

    def test_checkpointed_rerun_is_bit_identical(self, tmp_path,
                                                 tiny_fir_implementation):
        activate_tier(SharedCacheTier(tmp_path))
        backend = ShardedBackend(workers=2, min_tasks=0)
        first = run_campaign(tiny_fir_implementation, self.CONFIG,
                             backend=backend)
        stored = backend.last_run_stats["checkpoint_stores"]
        assert stored == backend.last_run_stats["shards"] >= 2
        assert backend.last_run_stats["checkpoint_hits"] == 0

        clear_cache()  # the restart: only the tier survives
        backend = ShardedBackend(workers=2, min_tasks=0)
        second = run_campaign(tiny_fir_implementation, self.CONFIG,
                              backend=backend)
        assert backend.last_run_stats["checkpoint_hits"] == stored
        assert backend.last_run_stats["checkpoint_stores"] == 0
        assert second.wrong_answers == first.wrong_answers
        assert second.effect_table() == first.effect_table()
        assert [dataclasses.asdict(r) for r in second.results] == \
            [dataclasses.asdict(r) for r in first.results]

    def test_checkpoints_respect_campaign_identity(self, tmp_path,
                                                   tiny_fir_implementation):
        activate_tier(SharedCacheTier(tmp_path))
        backend = ShardedBackend(workers=2, min_tasks=0)
        run_campaign(tiny_fir_implementation, self.CONFIG, backend=backend)
        other = ShardedBackend(workers=2, min_tasks=0)
        run_campaign(tiny_fir_implementation,
                     CampaignConfig(num_faults=40, workload_cycles=6,
                                    seed=10),  # different sampling seed
                     backend=other)
        assert other.last_run_stats["checkpoint_hits"] == 0

    def test_inline_path_checkpoints_too(self, tmp_path,
                                         tiny_fir_implementation):
        activate_tier(SharedCacheTier(tmp_path))
        backend = ShardedBackend(workers=2)  # below min_tasks: inline
        first = run_campaign(tiny_fir_implementation, self.CONFIG,
                             backend=backend)
        assert backend.last_run_stats["inline"]
        assert backend.last_run_stats["checkpoint_stores"] == 1
        clear_cache()
        backend = ShardedBackend(workers=2)
        second = run_campaign(tiny_fir_implementation, self.CONFIG,
                              backend=backend)
        assert backend.last_run_stats["checkpoint_hits"] == 1
        assert second.effect_table() == first.effect_table()

    def test_no_tier_means_no_checkpointing(self, tiny_fir_implementation):
        backend = ShardedBackend(workers=2, min_tasks=0)
        run_campaign(tiny_fir_implementation, self.CONFIG, backend=backend)
        assert backend.last_run_stats["checkpoint_stores"] == 0
        assert backend.last_run_stats["checkpoint_hits"] == 0


# ----------------------------------------------------------------------
# Seeded worker kill: supervision retries and the campaign survives
# ----------------------------------------------------------------------
class TestSeededWorkerKill:
    def test_killed_worker_is_retried_and_campaign_succeeds(
            self, tmp_path, monkeypatch, tiny_fir_implementation):
        config = CampaignConfig(num_faults=40, workload_cycles=6, seed=9)
        serial = run_campaign(tiny_fir_implementation, config,
                              backend="serial")
        # The worker evaluating shard 1 dies with a SIGKILL-grade
        # os._exit exactly once (the state dir claims the fault point);
        # the respawned pool must finish the campaign bit-identically.
        monkeypatch.setenv(chaos.CHAOS_ENV_VAR, "kill-shard:1")
        monkeypatch.setenv(chaos.CHAOS_STATE_ENV_VAR,
                           str(tmp_path / "chaos-state"))
        backend = ShardedBackend(workers=2, min_tasks=0,
                                 retry_backoff_s=0.01)
        killed = run_campaign(tiny_fir_implementation, config,
                              backend=backend)
        assert backend.last_run_stats["retries"] >= 1
        assert killed.wrong_answers == serial.wrong_answers
        assert killed.effect_table() == serial.effect_table()


# ----------------------------------------------------------------------
# The headline: crash, restart, resume — byte-identical
# ----------------------------------------------------------------------
class TestCrashRestartResume:
    @pytest.fixture(autouse=True)
    def pinned_shard_schedule(self, monkeypatch):
        # Pin the shard schedule so checkpoint keys and chaos fault
        # points are deterministic across the reference and crash runs.
        monkeypatch.setenv("REPRO_SHARD_MIN_TASKS", "0")
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
        monkeypatch.setenv("REPRO_SHARD_RETRIES", "2")

    def _stable_bytes(self, report) -> bytes:
        return json.dumps(stable_report(report), sort_keys=True).encode()

    def test_resumed_job_byte_identical_to_uninterrupted(
            self, tmp_path, monkeypatch):
        spec = tiny_spec()

        # Reference: an uninterrupted run on its own tier.
        _simulate_restart()
        with CampaignService(tier=tmp_path / "tier-ref") as service:
            reference = service.run(spec, timeout=300)
            assert reference.state == JobState.DONE
        reference_bytes = self._stable_bytes(reference.report)

        # Crash run: the service "dies" (ChaosCrash, which like a real
        # SIGKILL never settles the job) after two shard checkpoints.
        _simulate_restart()
        monkeypatch.setenv(chaos.CHAOS_ENV_VAR, "crash-after-shards:2")
        monkeypatch.setenv(chaos.CHAOS_STATE_ENV_VAR,
                           str(tmp_path / "chaos-state"))
        crashed = CampaignService(tier=tmp_path / "tier-crash").start()
        job = crashed.submit(spec)
        assert not crashed.wait(timeout=300)  # the job never settled
        assert job.state == JobState.RUNNING  # only the journal knows
        crashed.stop(timeout=1.0)  # incomplete drain: no clean marker

        # Restart on the same tier: recovery replays the journal,
        # resubmits the unsettled job, and the rerun reloads the two
        # checkpointed shards instead of recomputing them.
        monkeypatch.delenv(chaos.CHAOS_ENV_VAR)
        _simulate_restart()
        with CampaignService(tier=tmp_path / "tier-crash") as recovered:
            assert recovered.last_recovery["recovered_jobs"] == 1
            assert not recovered.last_recovery["clean_shutdown"]
            assert recovered.wait(timeout=300)
            jobs = recovered.queue.jobs()
            assert len(jobs) == 1
            resumed = jobs[0]
            assert resumed.recovered
            assert resumed.snapshot()["recovered"]
            assert resumed.state == JobState.DONE
            execution = self._execution_stats(resumed.report)
            assert execution["checkpoint_hits"] >= 2
            assert execution["checkpoint_hits"] + \
                execution["checkpoint_stores"] == execution["shards"]
        assert self._stable_bytes(resumed.report) == reference_bytes

    def _execution_stats(self, report):
        for stage in report["stages"]:
            if stage["name"] == "campaign":
                return stage["summary"]["execution"]["standard"]
        raise AssertionError("no campaign stage in report")

    def test_resume_identity_across_backends(self, tmp_path, monkeypatch):
        """The resumed sharded report agrees with every in-process
        backend once backend provenance is set aside (the aggregate
        bit-identity contract of the engine suite, extended to the
        crash/resume path)."""
        import repro.sim.npkernel as npkernel

        spec = tiny_spec()

        _simulate_restart()
        monkeypatch.setenv(chaos.CHAOS_ENV_VAR, "crash-after-shards:2")
        monkeypatch.setenv(chaos.CHAOS_STATE_ENV_VAR,
                           str(tmp_path / "chaos-state"))
        crashed = CampaignService(tier=tmp_path / "tier").start()
        crashed.submit(spec)
        assert not crashed.wait(timeout=300)
        crashed.stop(timeout=1.0)
        monkeypatch.delenv(chaos.CHAOS_ENV_VAR)
        _simulate_restart()
        with CampaignService(tier=tmp_path / "tier") as recovered:
            assert recovered.wait(timeout=300)
            resumed = recovered.queue.jobs()[0]
            assert resumed.state == JobState.DONE

        backends = ["serial", "vector"]
        if npkernel.have_numpy():
            backends.append("numpy")
        resumed_scrubbed = self._strip_backend(stable_report(resumed.report))
        for backend in backends:
            _simulate_restart()
            direct = run_scenario("table3-fir", scale="tiny", num_faults=30,
                                  designs=("standard",), backend=backend)
            assert self._strip_backend(stable_report(direct)) == \
                resumed_scrubbed, f"backend {backend} disagrees"

    def _strip_backend(self, value):
        if isinstance(value, dict):
            return {key: self._strip_backend(item)
                    for key, item in value.items() if key != "backend"}
        if isinstance(value, list):
            return [self._strip_backend(item) for item in value]
        return value

    def test_clean_shutdown_leaves_nothing_to_recover(self, tmp_path):
        _simulate_restart()
        service = CampaignService(tier=tmp_path / "tier").start()
        job = service.run(tiny_spec(), timeout=300)
        assert job.state == JobState.DONE
        service.stop()
        _simulate_restart()
        with CampaignService(tier=tmp_path / "tier") as reopened:
            assert reopened.last_recovery["clean_shutdown"]
            assert reopened.last_recovery["recovered_jobs"] == 0
            assert not reopened.queue.jobs()


# ----------------------------------------------------------------------
# Deadlines, cancellation, draining
# ----------------------------------------------------------------------
class TestDeadlinesAndCancellation:
    def test_timeout_s_is_delivery_only(self):
        from repro.service import job_fingerprint

        assert job_fingerprint(tiny_spec()) == \
            job_fingerprint(tiny_spec(timeout_s=5.0))
        spec = JobSpec.from_dict(tiny_spec(timeout_s=5.0).as_dict())
        assert spec.timeout_s == 5.0
        assert "timeout_s" not in spec.overrides()

    def test_deadline_cancels_queued_job(self, tmp_path):
        with CampaignService(tier=tmp_path / "tier",
                             max_parallel=1) as service:
            blocker = service.submit(tiny_spec(seed=7))
            doomed = service.submit(tiny_spec(timeout_s=0.01))
            assert doomed.wait(timeout=60)
            assert doomed.state == JobState.CANCELLED
            assert "deadline" in doomed.error
            assert blocker.wait(timeout=300)
            assert blocker.state == JobState.DONE

    def test_cancel_pending_job_settles_immediately(self, tmp_path):
        with CampaignService(tier=tmp_path / "tier",
                             max_parallel=1) as service:
            blocker = service.submit(tiny_spec(seed=7))
            victim = service.submit(tiny_spec())
            service.cancel(victim.id)
            assert victim.wait(timeout=60)
            assert victim.state == JobState.CANCELLED
            assert blocker.wait(timeout=300)

    def test_draining_service_refuses_submissions(self, tmp_path):
        service = CampaignService(tier=tmp_path / "tier").start()
        service.run(tiny_spec(), timeout=300)
        stopper = threading.Thread(target=service.stop)
        stopper.start()
        stopper.join()
        with pytest.raises((ServiceDraining, Exception)):
            service.submit(tiny_spec(seed=99))


# ----------------------------------------------------------------------
# The HTTP operational surface
# ----------------------------------------------------------------------
class TestHttpOperations:
    @pytest.fixture()
    def served(self, tmp_path):
        service = CampaignService(tier=tmp_path / "tier").start()
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield service, server, f"http://{host}:{port}"
        finally:
            server.shutdown()
            server.server_close()
            service.stop()

    def test_healthz_and_readyz(self, served):
        _service, _server, url = served
        with urllib.request.urlopen(f"{url}/healthz") as response:
            assert response.status == 200
        with urllib.request.urlopen(f"{url}/readyz") as response:
            assert response.status == 200

    def test_draining_returns_503_with_retry_after(self, served):
        _service, server, url = served
        server.draining = True
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{url}/readyz")
        assert excinfo.value.code == 503
        assert excinfo.value.headers["Retry-After"]
        request = urllib.request.Request(
            f"{url}/jobs", data=json.dumps(tiny_spec().as_dict()).encode(),
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 503
        assert excinfo.value.headers["Retry-After"]
        server.draining = False
        with urllib.request.urlopen(f"{url}/readyz") as response:
            assert response.status == 200

    def test_wait_is_clamped_server_side(self, served):
        _service, _server, url = served
        snapshot = submit_job(url, tiny_spec().as_dict())
        # Negative and absurd waits are clamped, not honored: the
        # request returns promptly with a snapshot either way.
        listing = fetch_job(url, snapshot["id"], wait=-5)
        assert listing["id"] == snapshot["id"]
        assert MAX_WAIT_SECONDS <= 60.0
        final = wait_for_job(url, snapshot["id"], timeout=300)
        assert final["state"] == JobState.DONE

    def test_cancel_endpoint_and_409_report(self, served):
        service, _server, url = served
        blocker = submit_job(url, tiny_spec(seed=7).as_dict())
        victim = submit_job(url, tiny_spec().as_dict())
        cancelled = cancel_job(url, victim["id"])
        assert cancelled["id"] == victim["id"]
        final = wait_for_job(url, victim["id"], timeout=60)
        assert final["state"] == JobState.CANCELLED
        with pytest.raises(RuntimeError, match="409"):
            _request_report(url, victim["id"])
        assert wait_for_job(url, blocker["id"],
                            timeout=300)["state"] == JobState.DONE

    def test_recovered_flag_in_snapshot(self, served):
        _service, _server, url = served
        snapshot = submit_job(url, tiny_spec().as_dict())
        assert snapshot["recovered"] is False


def _request_report(url: str, job_id: str):
    from repro.service.httpd import fetch_report

    return fetch_report(url, job_id)


# ----------------------------------------------------------------------
# The chaos scenario
# ----------------------------------------------------------------------
class TestChaosScenario:
    def test_registered_with_sharded_backend(self):
        scenario = scenario_by_name("chaos-fir")
        assert scenario.backend == "sharded"
        assert scenario.scale == "tiny"
        assert set(scenario.designs) == {"standard", "TMR_p2"}
