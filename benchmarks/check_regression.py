"""Guard the benchmarks against performance regressions.

Compares freshly measured benchmark reports against the baselines
committed at the repository root and fails (exit code 1) when a
normalized speedup regresses by more than the tolerance:

* ``BENCH_campaign.json`` — the best campaign backend's
  ``speedup_vs_seed_serial`` per design;
* ``BENCH_flow.json`` (optional, via ``--flow-baseline/--flow-current``)
  — the implementation flow's total ``cold_speedup_vs_seed`` and
  ``warm_speedup_vs_seed``.

Absolute seconds are machine-dependent, so every comparison uses a
speedup over a seed replica measured on the *same* machine in the same
session, which makes the ratios portable across laptops and shared CI
runners.  A >30 % drop of a ratio means the code itself got slower, not
the hardware.

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_campaign.json --current /tmp/BENCH_campaign.json \
        [--flow-baseline BENCH_flow.json --flow-current /tmp/BENCH_flow.json] \
        [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def best_speedups(payload: dict) -> dict:
    """{design: best speedup_vs_seed_serial over all backends}."""
    result = {}
    for design, row in payload.get("designs", {}).items():
        speedups = [backend.get("speedup_vs_seed_serial", 0.0)
                    for backend in row.get("backends", {}).values()]
        if speedups:
            result[design] = max(speedups)
    return result


def flow_speedups(payload: dict) -> dict:
    """{metric: total flow speedup vs the seed replica}."""
    totals = payload.get("totals", {})
    result = {}
    for metric in ("cold_speedup_vs_seed", "warm_speedup_vs_seed"):
        if metric in totals:
            result[metric] = totals[metric]
    return result


def _compare(label: str, baseline: dict, current: dict,
             tolerance: float) -> list:
    problems = []
    for key, reference in sorted(baseline.items()):
        measured = current.get(key)
        if measured is None:
            problems.append(f"{label} {key}: missing from the current "
                            f"report")
            continue
        floor = reference * (1.0 - tolerance)
        if measured < floor:
            problems.append(
                f"{label} {key}: speedup {measured:.2f}x fell below "
                f"{floor:.2f}x ({reference:.2f}x baseline - "
                f"{tolerance:.0%} tolerance)")
    return problems


def check(baseline: dict, current: dict, tolerance: float) -> list:
    """Campaign regression messages (empty when the run is acceptable)."""
    return _compare("campaign", best_speedups(baseline),
                    best_speedups(current), tolerance)


def check_flow(baseline: dict, current: dict, tolerance: float) -> list:
    """Flow regression messages (empty when the run is acceptable)."""
    return _compare("flow", flow_speedups(baseline),
                    flow_speedups(current), tolerance)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_campaign.json")
    parser.add_argument("--current", type=Path, required=True,
                        help="freshly measured BENCH_campaign.json")
    parser.add_argument("--flow-baseline", type=Path, default=None,
                        help="committed BENCH_flow.json")
    parser.add_argument("--flow-current", type=Path, default=None,
                        help="freshly measured BENCH_flow.json")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop of the best "
                        "speedup (default 0.30)")
    arguments = parser.parse_args(argv)

    baseline = json.loads(arguments.baseline.read_text())
    current = json.loads(arguments.current.read_text())
    problems = check(baseline, current, arguments.tolerance)

    for design, reference in sorted(best_speedups(baseline).items()):
        measured = best_speedups(current).get(design)
        shown = f"{measured:.2f}x" if measured is not None else "missing"
        print(f"{design}: baseline {reference:.2f}x -> current {shown}")

    if arguments.flow_baseline is not None and \
            arguments.flow_current is not None:
        flow_baseline = json.loads(arguments.flow_baseline.read_text())
        flow_current = json.loads(arguments.flow_current.read_text())
        problems.extend(check_flow(flow_baseline, flow_current,
                                   arguments.tolerance))
        measured_flow = flow_speedups(flow_current)
        for metric, reference in sorted(
                flow_speedups(flow_baseline).items()):
            measured = measured_flow.get(metric)
            shown = f"{measured:.2f}x" if measured is not None else "missing"
            print(f"flow {metric}: baseline {reference:.2f}x -> "
                  f"current {shown}")
    if problems:
        print("\nBenchmark regression detected:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("No benchmark regression beyond tolerance "
          f"({arguments.tolerance:.0%}).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
