"""Configuration-memory model: bit addressing, frames and decode database.

Every programmable resource of the device owns one or more configuration
bits.  The layout assigns each tile a contiguous bit region containing, in
order: the two LUT truth tables (16 bits each), the slice customization bits
and one bit per PIP owned by the tile.  Global bit addresses are grouped into
fixed-size *frames* purely for reporting, mirroring the frame-organized
configuration memory of the Spartan-IIE (2,501 frames of 576 bits on the
XC2S200E).

The :class:`ConfigLayout` is bidirectional — ``bit_of(resource)`` and
``resource_of(bit)`` — which is exactly the "database of the programmed
resources obtained by decoding the Xilinx bitstream" that the paper's fault
list manager relies on; here we own the format, so the database is computed
rather than reverse-engineered.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Dict, List, Tuple

from .device import DIRECTIONS as DIRECTIONS_DELTA
from .device import LUT_SLOTS, Device
from .routing import Pip, count_tile_pips, pips_into_tile

#: Truth-table bits per LUT.
LUT_BITS = 16
#: Slice customization bits, in layout order.  INIT bits give the flip-flop
#: power-up value ("Initialization" upsets in Table 4); the others control
#: intra-CLB multiplexers ("MUX" upsets).
SLICE_CFG_BITS = (
    "FFX_INIT", "FFY_INIT",        # flip-flop power-up / reset value
    "FFX_DMUX", "FFY_DMUX",        # FF data from paired LUT vs BX/BY bypass
    "FFX_CEMUX", "FFY_CEMUX",      # clock-enable used vs tied active
    "FFX_SRMODE", "FFY_SRMODE",    # sync reset vs set behaviour
    "CLKINV",                      # clock polarity for the slice
)
#: Logic (non-routing) bits per tile.
TILE_LOGIC_BITS = 2 * LUT_BITS + len(SLICE_CFG_BITS)

#: Resource kinds appearing in the decode database.
KIND_LUT_BIT = "lut_bit"
KIND_SLICE_CFG = "slice_cfg"
KIND_PIP = "pip"

Resource = Tuple


def lut_bit(x: int, y: int, slot: str, bit: int) -> Resource:
    return (KIND_LUT_BIT, x, y, slot, bit)


def slice_cfg(x: int, y: int, name: str) -> Resource:
    return (KIND_SLICE_CFG, x, y, name)


def pip_resource(pip: Pip) -> Resource:
    return (KIND_PIP, pip[0], pip[1])


class ConfigLayout:
    """Deterministic mapping between configuration bits and resources."""

    def __init__(self, device: Device) -> None:
        self.device = device
        self._tile_base: Dict[Tuple[int, int], int] = {}
        self._tile_order: List[Tuple[int, int]] = []
        self._tile_starts: List[int] = []
        self._pip_count_cache: Dict[Tuple, int] = {}
        self._tile_pip_cache: Dict[Tuple[int, int], List[Pip]] = {}
        self._tile_pip_index_cache: Dict[Tuple[int, int], Dict[Pip, int]] = {}
        self._tile_fanin_cache: Dict[Tuple[int, int], Dict[Tuple, int]] = {}
        self._tile_pip_bits_cache: Dict[Tuple[int, int],
                                        Dict[Tuple, List[Tuple[Pip, int]]]] \
            = {}
        self._resource_by_bit: Dict[int, Resource] = {}
        self.total_bits = self._assign_tiles()

    def __getstate__(self) -> Dict[str, object]:
        # The per-tile PIP caches are large, derived purely from the
        # device, and rebuilt on demand; keep them out of pickled
        # implementations (the on-disk flow-artifact store).
        state = self.__dict__.copy()
        state["_pip_count_cache"] = {}
        state["_tile_pip_cache"] = {}
        state["_tile_pip_index_cache"] = {}
        state["_tile_fanin_cache"] = {}
        state["_tile_pip_bits_cache"] = {}
        state["_resource_by_bit"] = {}
        return state

    # ------------------------------------------------------------------
    def _tile_class(self, x: int, y: int) -> Tuple:
        """Tiles with the same border situation have identical PIP counts."""
        device = self.device
        outgoing = tuple(sorted(
            direction for direction in ("N", "S", "E", "W")
            if device.wire_exists(x, y, direction)))
        arriving = tuple(sorted(
            direction for direction in ("N", "S", "E", "W")
            if device.in_bounds(x - DIRECTIONS_DELTA[direction][0],
                                y - DIRECTIONS_DELTA[direction][1])))
        return (outgoing, arriving, len(device.pads_at(x, y)))

    def _pip_count(self, x: int, y: int) -> int:
        key = self._tile_class(x, y)
        if key not in self._pip_count_cache:
            self._pip_count_cache[key] = count_tile_pips(self.device, x, y)
        return self._pip_count_cache[key]

    def _assign_tiles(self) -> int:
        offset = 0
        for (x, y) in self.device.tiles():
            self._tile_base[(x, y)] = offset
            self._tile_order.append((x, y))
            self._tile_starts.append(offset)
            offset += TILE_LOGIC_BITS + self._pip_count(x, y)
        return offset

    # ------------------------------------------------------------------
    @property
    def frame_bits(self) -> int:
        return self.device.spec.frame_bits

    @property
    def num_frames(self) -> int:
        return (self.total_bits + self.frame_bits - 1) // self.frame_bits

    def frame_of(self, bit: int) -> int:
        return bit // self.frame_bits

    def tile_bits(self, x: int, y: int) -> int:
        return TILE_LOGIC_BITS + self._pip_count(x, y)

    def tile_base(self, x: int, y: int) -> int:
        return self._tile_base[(x, y)]

    # ------------------------------------------------------------------
    def _tile_pips(self, x: int, y: int) -> List[Pip]:
        key = (x, y)
        if key not in self._tile_pip_cache:
            self._tile_pip_cache[key] = pips_into_tile(self.device, x, y)
        return self._tile_pip_cache[key]

    def _tile_pip_index(self, x: int, y: int) -> Dict[Pip, int]:
        key = (x, y)
        if key not in self._tile_pip_index_cache:
            self._tile_pip_index_cache[key] = {
                pip: index for index, pip in enumerate(self._tile_pips(x, y))}
        return self._tile_pip_index_cache[key]

    def pip_fanin_counts(self, x: int, y: int) -> Dict[Tuple, int]:
        """Candidate-PIP count per destination node of one tile.

        This is the quantity the Table 2 bit accounting sums per used
        destination; precomputing it turns the seed's linear scan over the
        tile's PIP list (per node!) into one dictionary lookup.
        """
        key = (x, y)
        counts = self._tile_fanin_cache.get(key)
        if counts is None:
            counts = {}
            for _source, destination in self._tile_pips(x, y):
                counts[destination] = counts.get(destination, 0) + 1
            self._tile_fanin_cache[key] = counts
        return counts

    def pip_bits_by_destination(self, x: int, y: int
                                ) -> Dict[Tuple, List[Tuple[Pip, int]]]:
        """Destination node -> [(pip, bit address)] for one tile.

        The fault-list builder enumerates every candidate PIP bit of every
        used destination node; pairing PIPs with their bit addresses once
        per tile (in the canonical layout order) replaces a ``bit_of``
        call per PIP with plain list iteration, and the layout-level cache
        shares the result across every fault list built on the device.
        """
        key = (x, y)
        fanin = self._tile_pip_bits_cache.get(key)
        if fanin is None:
            base = self._tile_base[key] + TILE_LOGIC_BITS
            fanin = {}
            for index, pip in enumerate(self._tile_pips(x, y)):
                fanin.setdefault(pip[1], []).append((pip, base + index))
            self._tile_pip_bits_cache[key] = fanin
        return fanin

    # ------------------------------------------------------------------
    def bit_of(self, resource: Resource) -> int:
        """Global bit address of a resource."""
        kind = resource[0]
        if kind == KIND_LUT_BIT:
            _, x, y, slot, bit = resource
            if slot not in LUT_SLOTS:
                raise KeyError(f"unknown LUT slot {slot!r}")
            if not 0 <= bit < LUT_BITS:
                raise KeyError(f"LUT bit {bit} out of range")
            return self._tile_base[(x, y)] + LUT_SLOTS.index(slot) * LUT_BITS \
                + bit
        if kind == KIND_SLICE_CFG:
            _, x, y, name = resource
            return self._tile_base[(x, y)] + 2 * LUT_BITS + \
                SLICE_CFG_BITS.index(name)
        if kind == KIND_PIP:
            pip = (resource[1], resource[2])
            from .routing import pip_tile

            x, y = pip_tile(self.device, pip)
            index = self._tile_pip_index(x, y).get(pip)
            if index is None:
                raise KeyError(f"PIP {pip!r} does not exist in tile "
                               f"({x}, {y})")
            return self._tile_base[(x, y)] + TILE_LOGIC_BITS + index
        raise KeyError(f"unknown resource kind {kind!r}")

    def resource_of(self, bit: int) -> Resource:
        """Inverse mapping: which resource a bit address controls.

        Memoized a tile at a time: the fault models and the layout
        analyzer resolve every bit of a fault list, and tiles worth of
        consecutive bits share the bisect and the PIP enumeration.
        """
        cached = self._resource_by_bit.get(bit)
        if cached is not None:
            return cached
        if not 0 <= bit < self.total_bits:
            raise IndexError(f"bit {bit} outside configuration memory "
                             f"(0..{self.total_bits - 1})")
        tile_index = bisect.bisect_right(self._tile_starts, bit) - 1
        x, y = self._tile_order[tile_index]
        base = self._tile_starts[tile_index]
        table = self._resource_by_bit
        for offset in range(LUT_BITS):
            table[base + offset] = lut_bit(x, y, "F", offset)
            table[base + LUT_BITS + offset] = lut_bit(x, y, "G", offset)
        for offset, name in enumerate(SLICE_CFG_BITS):
            table[base + 2 * LUT_BITS + offset] = slice_cfg(x, y, name)
        pip_base = base + TILE_LOGIC_BITS
        for index, pip in enumerate(self._tile_pips(x, y)):
            table[pip_base + index] = pip_resource(pip)
        return table[bit]

    def routing_bit_count(self) -> int:
        """Total number of PIP bits in the device."""
        return self.total_bits - TILE_LOGIC_BITS * self.device.spec.num_tiles


#: ConfigLayout per DeviceSpec.  The layout is a pure function of the
#: device geometry, so one instance (and its lazily filled PIP caches)
#: serves every design implemented on that profile.
_LAYOUT_CACHE: Dict[object, ConfigLayout] = {}


def shared_layout(device: Device) -> ConfigLayout:
    """The memoized configuration layout of a device profile."""
    layout = _LAYOUT_CACHE.get(device.spec)
    if layout is None:
        layout = ConfigLayout(device)
        _LAYOUT_CACHE[device.spec] = layout
    return layout


def clear_layout_cache() -> None:
    """Drop memoized layouts (used by cold-start benchmarks)."""
    _LAYOUT_CACHE.clear()


@dataclasses.dataclass
class BitstreamStats:
    """Composition of a bitstream's programmed (or design-related) bits."""

    routing_bits: int = 0
    lut_bits: int = 0
    ff_bits: int = 0

    @property
    def total(self) -> int:
        return self.routing_bits + self.lut_bits + self.ff_bits

    def routing_fraction(self) -> float:
        return self.routing_bits / self.total if self.total else 0.0


class ConfigMemory:
    """The configuration memory contents (one byte per bit for simplicity)."""

    def __init__(self, layout: ConfigLayout) -> None:
        self.layout = layout
        self.bits = bytearray(layout.total_bits)

    def set_bit(self, bit: int, value: int = 1) -> None:
        self.bits[bit] = 1 if value else 0

    def get_bit(self, bit: int) -> int:
        return self.bits[bit]

    def flip_bit(self, bit: int) -> int:
        """Flip one bit (the SEU model) and return the new value."""
        self.bits[bit] ^= 1
        return self.bits[bit]

    def set_resource(self, resource: Resource, value: int = 1) -> None:
        self.set_bit(self.layout.bit_of(resource), value)

    def get_resource(self, resource: Resource) -> int:
        return self.get_bit(self.layout.bit_of(resource))

    def programmed_bits(self) -> List[int]:
        """Addresses of all bits currently set to one."""
        return [index for index, value in enumerate(self.bits) if value]

    def count_programmed(self) -> int:
        return sum(self.bits)

    def copy(self) -> "ConfigMemory":
        duplicate = ConfigMemory(self.layout)
        duplicate.bits = bytearray(self.bits)
        return duplicate

    def frame_view(self, frame: int) -> bytes:
        start = frame * self.layout.frame_bits
        end = min(start + self.layout.frame_bits, self.layout.total_bits)
        return bytes(self.bits[start:end])

    def difference(self, other: "ConfigMemory") -> List[int]:
        """Bit addresses at which two configuration memories differ."""
        return [index for index, (a, b) in enumerate(zip(self.bits,
                                                         other.bits))
                if a != b]
