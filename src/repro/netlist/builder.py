"""Convenience builder for assembling netlists programmatically.

The :class:`NetlistBuilder` wraps the raw IR with helpers for the patterns
that dominate structural design entry: creating buses, wiring instances by
keyword, tying constants and stitching sub-modules together.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from .ir import (Definition, Direction, Instance, Library, Net, Netlist,
                 NetlistError)

NetOrName = Union[Net, str]


class NetlistBuilder:
    """Stateful helper bound to one definition under construction."""

    def __init__(self, netlist: Netlist, definition: Definition,
                 cell_library: Optional[Library] = None) -> None:
        self.netlist = netlist
        self.definition = definition
        self.cell_library = cell_library

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def new_module(cls, netlist: Netlist, name: str,
                   library_name: str = "work",
                   cell_library: Optional[Library] = None) -> "NetlistBuilder":
        """Create a new definition in *library_name* and return a builder."""
        library = netlist.get_library(library_name)
        definition = library.add_definition(name)
        return cls(netlist, definition, cell_library)

    def input(self, name: str, width: int = 1) -> List[Net]:
        """Add an input port and return its bit nets (LSB first)."""
        port = self.definition.add_port(name, Direction.INPUT, width)
        return self._port_nets(port.name, width)

    def output(self, name: str, width: int = 1) -> List[Net]:
        """Add an output port and return its bit nets (LSB first)."""
        port = self.definition.add_port(name, Direction.OUTPUT, width)
        return self._port_nets(port.name, width)

    def _port_nets(self, port_name: str, width: int) -> List[Net]:
        nets = []
        for bit in range(width):
            net_name = port_name if width == 1 else f"{port_name}[{bit}]"
            net = self.definition.get_or_create_net(net_name)
            net.connect(self.definition.top_pin(port_name, bit))
            nets.append(net)
        return nets

    def wire(self, name: Optional[str] = None) -> Net:
        """Create (or fetch) a single named net."""
        if name is None:
            return self.definition.add_net()
        return self.definition.get_or_create_net(name)

    def bus(self, base_name: str, width: int) -> List[Net]:
        """Create *width* nets named ``base[i]`` and return them LSB first."""
        return [self.wire(f"{base_name}[{i}]") for i in range(width)]

    def _resolve(self, net: NetOrName) -> Net:
        if isinstance(net, Net):
            return net
        return self.definition.get_or_create_net(net)

    # ------------------------------------------------------------------
    # Instantiation
    # ------------------------------------------------------------------
    def _find_reference(self, cell_name: str) -> Definition:
        if self.cell_library is not None and cell_name in self.cell_library:
            return self.cell_library.definitions[cell_name]
        reference = self.netlist.find_definition(cell_name)
        if reference is None:
            raise NetlistError(f"unknown cell or module {cell_name!r}")
        return reference

    def instantiate(self, cell_name: str, inst_name: Optional[str] = None,
                    properties: Optional[Dict[str, object]] = None,
                    **connections: Union[NetOrName, Sequence[NetOrName]],
                    ) -> Instance:
        """Instantiate *cell_name* and connect ports given as keywords.

        Scalar ports take a net (or net name); bus ports take a sequence of
        nets LSB first.
        """
        reference = self._find_reference(cell_name)
        instance = self.definition.add_instance(reference, inst_name)
        if properties:
            instance.properties.update(properties)
        for port_name, value in connections.items():
            if port_name not in reference.ports:
                raise NetlistError(
                    f"cell {cell_name!r} has no port {port_name!r}")
            port = reference.ports[port_name]
            if isinstance(value, (list, tuple)):
                if len(value) != port.width:
                    raise NetlistError(
                        f"port {port_name!r} of {cell_name!r} has width "
                        f"{port.width}, got {len(value)} nets")
                for bit, net in enumerate(value):
                    instance.connect(port_name, self._resolve(net), bit)
            else:
                instance.connect(port_name, self._resolve(value), 0)
        return instance

    def submodule(self, definition: Definition,
                  inst_name: Optional[str] = None,
                  **connections: Union[NetOrName, Sequence[NetOrName]],
                  ) -> Instance:
        """Instantiate an already-built definition by object."""
        instance = self.definition.add_instance(definition, inst_name)
        for port_name, value in connections.items():
            if port_name not in definition.ports:
                raise NetlistError(
                    f"module {definition.name!r} has no port {port_name!r}")
            port = definition.ports[port_name]
            if isinstance(value, (list, tuple)):
                if len(value) != port.width:
                    raise NetlistError(
                        f"port {port_name!r} of {definition.name!r} has width "
                        f"{port.width}, got {len(value)} nets")
                for bit, net in enumerate(value):
                    instance.connect(port_name, self._resolve(net), bit)
            else:
                instance.connect(port_name, self._resolve(value), 0)
        return instance

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------
    def ground(self) -> Net:
        """Return a net driven by a GND cell (shared per definition)."""
        return self._constant_net("GND", "G", "const0")

    def power(self) -> Net:
        """Return a net driven by a VCC cell (shared per definition)."""
        return self._constant_net("VCC", "P", "const1")

    def _constant_net(self, cell_name: str, out_port: str, net_name: str) -> Net:
        existing = self.definition.nets.get(net_name)
        if existing is not None and existing.drivers():
            return existing
        net = self.definition.get_or_create_net(net_name)
        reference = self._find_reference(cell_name)
        instance = self.definition.add_instance(
            reference, self.definition.make_unique_name(cell_name.lower()))
        instance.connect(out_port, net, 0)
        return net

    def constant_bus(self, value: int, width: int) -> List[Net]:
        """Return nets representing *value* as an unsigned bus, LSB first."""
        if value < 0:
            value &= (1 << width) - 1
        nets = []
        for bit in range(width):
            nets.append(self.power() if (value >> bit) & 1 else self.ground())
        return nets

    def finish(self, set_top: bool = False) -> Definition:
        """Return the built definition, optionally marking it netlist top."""
        if set_top:
            self.netlist.set_top(self.definition)
        return self.definition
