"""Experiment driver for Table 4: classification of error-causing upsets.

The campaigns of Table 3 already classify every injected upset by its effect
(LUT / MUX / Initialization / Open / Bridge / Input-Antenna / Conflict /
Others); this driver aggregates the error-causing ones per design version,
which is the paper's Table 4.
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, Optional, Sequence

from ..analysis import routing_effect_share
from ..faults import CampaignResult, table4_report
from ..faults.engine import BACKEND_CHOICES, BackendLike
from ..pnr import Implementation
from .designs import DESIGN_ORDER, DesignSuite, build_design_suite, \
    implement_design_suite
from .table2 import add_flow_arguments
from .table3 import run_table3

#: Error-causing effect counts from the paper's Table 4 (for reference).
PAPER_TABLE4 = {
    "standard": {"LUT": 852, "MUX": 123, "Initialization": 174, "Open": 1321,
                 "Bridge": 427, "Input-Antenna": 76, "Conflict": 1342,
                 "Others": 1006},
    "TMR_p1": {"LUT": 0, "MUX": 16, "Initialization": 13, "Open": 276,
               "Bridge": 62, "Input-Antenna": 33, "Conflict": 26,
               "Others": 301},
    "TMR_p2": {"LUT": 0, "MUX": 1, "Initialization": 0, "Open": 82,
               "Bridge": 41, "Input-Antenna": 7, "Conflict": 13,
               "Others": 66},
    "TMR_p3": {"LUT": 0, "MUX": 15, "Initialization": 11, "Open": 126,
               "Bridge": 42, "Input-Antenna": 14, "Conflict": 6,
               "Others": 128},
    "TMR_p3_nv": {"LUT": 0, "MUX": 367, "Initialization": 400, "Open": 1672,
                  "Bridge": 403, "Input-Antenna": 73, "Conflict": 185,
                  "Others": 756},
}


def run_table4(results: Optional[Dict[str, CampaignResult]] = None,
               suite: Optional[DesignSuite] = None,
               implementations: Optional[Dict[str, Implementation]] = None,
               scale: str = "fast", num_faults: Optional[int] = None,
               backend: BackendLike = None) -> Dict[str, Dict[str, int]]:
    """Return the per-design effect breakdown of error-causing upsets.

    *backend* selects the campaign execution backend (``"serial"``,
    ``"batch"``, ``"process"`` or the bit-parallel ``"vector"``).
    """
    if results is None:
        results = run_table3(suite=suite, implementations=implementations,
                             scale=scale, num_faults=num_faults,
                             backend=backend)
    table: Dict[str, Dict[str, int]] = {}
    for name, result in results.items():
        table[name] = result.effect_table()
    return table


def derived_claims(results: Dict[str, CampaignResult]) -> Dict[str, object]:
    """The qualitative claims the paper draws from Table 4."""
    claims: Dict[str, object] = {}
    tmr_names = [n for n in results if n.startswith("TMR")]
    claims["lut_upsets_defeat_tmr"] = any(
        results[name].by_category.get("LUT") is not None and
        results[name].by_category["LUT"].wrong > 0 for name in tmr_names)
    claims["routing_effect_share"] = {
        name: round(routing_effect_share(result), 3)
        for name, result in results.items()}
    return claims


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="fast",
                        choices=("paper", "fast", "smoke"))
    parser.add_argument("--faults", type=int, default=None)
    parser.add_argument("--backend", default="serial",
                        choices=BACKEND_CHOICES,
                        help="campaign execution backend")
    parser.add_argument("--json", action="store_true")
    add_flow_arguments(parser)
    arguments = parser.parse_args(argv)

    results = run_table3(scale=arguments.scale, num_faults=arguments.faults,
                         progress=True, backend=arguments.backend,
                         jobs=arguments.jobs,
                         flow_cache=arguments.flow_cache)
    if arguments.json:
        print(json.dumps({
            "measured": run_table4(results),
            "paper": PAPER_TABLE4,
            "claims": derived_claims(results),
        }, indent=2, default=str))
    else:
        print(table4_report(results, order=[n for n in DESIGN_ORDER
                                            if n in results]))
        claims = derived_claims(results)
        print("\nLUT upsets able to defeat TMR:",
              "yes" if claims["lut_upsets_defeat_tmr"] else
              "no (matches the paper)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
