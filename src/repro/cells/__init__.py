"""Primitive cell library, LUT INIT helpers and behavioural models."""

from . import logic
from .evaluate import (asynchronous_state, combinational_output,
                       initial_state, lut_init_of, output_port_of,
                       sequential_next_state)
from .library import (CELL_INFO, FF_CELLS, IO_CELLS, LUT_CELLS, CellInfo,
                      build_cell_library, cell_info, is_flip_flop, is_lut,
                      lut_cell_for_inputs, lut_input_count,
                      shared_cell_library)
from .lut import (INIT_AND2, INIT_AND3, INIT_AND4, INIT_ANDNOT2, INIT_BUF,
                  INIT_INV, INIT_MAJ3, INIT_MUX2, INIT_NAND2, INIT_NOR2,
                  INIT_OR2, INIT_OR3, INIT_OR4, INIT_VOTER, INIT_XNOR2,
                  INIT_XOR2, INIT_XOR3, INIT_XOR4, init_from_function,
                  init_from_truth_table, named_init, named_init_width,
                  truth_table)

__all__ = [
    "logic", "asynchronous_state", "combinational_output", "initial_state",
    "lut_init_of", "output_port_of", "sequential_next_state", "CELL_INFO",
    "FF_CELLS", "IO_CELLS", "LUT_CELLS", "CellInfo", "build_cell_library",
    "cell_info", "is_flip_flop", "is_lut", "lut_cell_for_inputs",
    "lut_input_count", "shared_cell_library", "INIT_AND2", "INIT_AND3",
    "INIT_AND4", "INIT_ANDNOT2", "INIT_BUF", "INIT_INV", "INIT_MAJ3",
    "INIT_MUX2", "INIT_NAND2", "INIT_NOR2", "INIT_OR2", "INIT_OR3",
    "INIT_OR4", "INIT_VOTER", "INIT_XNOR2", "INIT_XOR2", "INIT_XOR3",
    "INIT_XOR4", "init_from_function", "init_from_truth_table", "named_init",
    "named_init_width", "truth_table",
]
