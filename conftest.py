"""Repository-root pytest configuration.

Lives at the root (not under ``benchmarks/``) because ``pytest_addoption``
only takes effect in an *initial* conftest, and the tier-1 invocation —
``python -m pytest -x -q`` from the repository root — collects both
``tests/`` and ``benchmarks/`` without naming either on the command line.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-baselines", action="store_true", default=False,
        help="write freshly measured BENCH_*.json files over the committed "
             "baselines at the repository root (default: write them to the "
             "REPRO_BENCH_OUT directory, .bench-out/, leaving the committed "
             "baselines untouched)")
