"""Triple Modular Redundancy insertion with configurable voter partitioning.

This module implements the paper's design-space knob: given a component-level
design, :func:`apply_tmr` produces a new netlist in which

* every component instance is triplicated into domains ``tr0``/``tr1``/``tr2``
  (Figure 1);
* every input port is triplicated so no external pin is a single point of
  failure;
* register stages are (optionally) turned into *TMR registers with voters and
  refresh* (Figure 2);
* the outputs of the components selected by the partition strategy receive
  triplicated majority-voter barriers (Figure 3);
* the outermost outputs are voted down to single signals (Figure 1's "TMR
  output majority voter").

The five filter versions evaluated in the paper are different instantiations
of :class:`TMRConfig` over the same FIR netlist (see
``repro.experiments.designs``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from ..cells.library import Library, shared_cell_library
from ..netlist.ir import (Definition, Direction, Instance, InstancePin, Net, Netlist, NetlistError)
from .partition import (NoPartition, PartitionStrategy, is_register_component,
                        register_components)
from .voters import DOMAIN_PROPERTY, insert_majority_voter

#: Number of redundant domains in triple modular redundancy.
NUM_DOMAINS = 3
#: Suffix applied to per-domain object names, e.g. ``mult_3_tr1``.
DOMAIN_SUFFIXES = tuple(f"_tr{d}" for d in range(NUM_DOMAINS))

#: Default names treated as clock ports (kept single when
#: ``triplicate_clock`` is disabled).
DEFAULT_CLOCK_PORTS = ("CLK", "C", "CLOCK", "CLK_IN")


@dataclasses.dataclass
class TMRConfig:
    """Configuration of one TMR instantiation."""

    #: which component outputs receive intermediate voter barriers
    partition: PartitionStrategy = dataclasses.field(default_factory=NoPartition)
    #: turn register stages into voted registers with refresh (Figure 2)
    vote_registers: bool = True
    #: triplicate intermediate voters (one per domain) — a single shared
    #: voter would itself be a single point of failure
    triplicate_voters: bool = True
    #: give every redundant domain its own copy of each input port
    triplicate_inputs: bool = True
    #: triplicate the clock input as well (clk0/clk1/clk2 in Figure 2)
    triplicate_clock: bool = True
    #: keep three output ports instead of voting down to one signal
    triplicate_outputs: bool = False
    #: port names regarded as clocks
    clock_ports: Tuple[str, ...] = DEFAULT_CLOCK_PORTS
    #: suffix of the generated definition name
    name_suffix: str = "_tmr"

    def describe(self) -> str:
        parts = [f"partition={self.partition.describe()}"]
        parts.append("voted-regs" if self.vote_registers else "unvoted-regs")
        if not self.triplicate_voters:
            parts.append("single-voters")
        if self.triplicate_outputs:
            parts.append("triplicated-outputs")
        return ", ".join(parts)


@dataclasses.dataclass
class TMRResult:
    """Outcome of a TMR transformation."""

    definition: Definition
    config: TMRConfig
    source: Definition
    #: names of original nets that received intermediate voter barriers
    voted_nets: List[str]
    #: number of voter LUT instances inserted (all roles)
    voter_count: int
    #: voter count by role: barrier / register / output
    voters_by_role: Dict[str, int]
    #: number of logic partitions (voted blocks) per domain, including the
    #: final output block
    partition_count: int
    #: per-domain copies of each original input port: port -> [tr0, tr1, tr2]
    input_port_map: Dict[str, List[str]]
    #: output port map (original -> generated)
    output_port_map: Dict[str, List[str]]

    def summary(self) -> str:
        return (f"{self.definition.name}: {self.config.describe()}; "
                f"{self.voter_count} voters, "
                f"{len(self.voted_nets)} voted nets, "
                f"{self.partition_count} partitions")


def apply_tmr(netlist: Netlist, top: Definition, config: Optional[TMRConfig]
              = None, cell_library: Optional[Library] = None,
              name: Optional[str] = None) -> TMRResult:
    """Triplicate *top* and insert voters according to *config*."""
    config = config if config is not None else TMRConfig()
    cells = cell_library if cell_library is not None else shared_cell_library()
    if top.is_primitive:
        raise NetlistError("cannot apply TMR to a primitive definition")

    tmr_name = name if name is not None else f"{top.name}{config.name_suffix}"
    library = netlist.get_library("tmr")
    if tmr_name in library:
        raise NetlistError(f"library 'tmr' already contains {tmr_name!r}")
    tmr = library.add_definition(tmr_name)
    tmr.properties["tmr_source"] = top.name
    tmr.properties["tmr_config"] = config

    voted_instances = set(config.partition.select(top))
    if config.vote_registers:
        voted_instances |= {inst.name for inst in register_components(top)}

    # ------------------------------------------------------------------
    # 1. Ports and per-domain nets
    # ------------------------------------------------------------------
    shared_input_nets = _plan_shared_inputs(top, config)
    domain_nets: Dict[str, List[Net]] = {}
    for net in top.nets.values():
        if net.name in shared_input_nets:
            shared = tmr.add_net(net.name)
            shared.properties = dict(net.properties)
            domain_nets[net.name] = [shared] * NUM_DOMAINS
        else:
            copies = []
            for domain in range(NUM_DOMAINS):
                copy = tmr.add_net(f"{net.name}{DOMAIN_SUFFIXES[domain]}")
                copy.properties = dict(net.properties)
                copy.properties[DOMAIN_PROPERTY] = domain
                copies.append(copy)
            domain_nets[net.name] = copies

    input_port_map: Dict[str, List[str]] = {}
    output_port_map: Dict[str, List[str]] = {}
    for port in top.ports.values():
        if port.direction is Direction.INPUT:
            input_port_map[port.name] = _create_input_ports(
                tmr, top, port, config, domain_nets, shared_input_nets)
        # Output ports are created later, after voter barriers, because the
        # final voters must read the post-barrier nets.

    # ------------------------------------------------------------------
    # 2. Triplicate instances
    # ------------------------------------------------------------------
    for inst in top.instances.values():
        for domain in range(NUM_DOMAINS):
            copy = tmr.add_instance(inst.reference,
                                    f"{inst.name}{DOMAIN_SUFFIXES[domain]}")
            copy.properties = dict(inst.properties)
            copy.properties[DOMAIN_PROPERTY] = domain
            copy.properties["tmr_block"] = inst.name
            for pin in inst.pins():
                if pin.net is None:
                    continue
                target = domain_nets[pin.net.name][domain]
                copy.connect(pin.port_name, target, pin.index)

    # ------------------------------------------------------------------
    # 3. Voter barriers after the selected components
    # ------------------------------------------------------------------
    # sink_nets tracks, per original net and domain, the net downstream
    # sinks should read (the voted copy once a barrier is inserted).
    sink_nets: Dict[str, List[Net]] = {name: list(nets)
                                       for name, nets in domain_nets.items()}
    voted_net_names: List[str] = []
    voters_by_role: Dict[str, int] = {"barrier": 0, "register": 0, "output": 0}

    for inst_name in sorted(voted_instances):
        original = top.instances[inst_name]
        role = "register" if is_register_component(original) else "barrier"
        for net_name in _output_net_names(original):
            if net_name in voted_net_names:
                continue
            voted_net_names.append(net_name)
            raw = domain_nets[net_name]
            voters_by_role[role] += _insert_barrier(
                tmr, cells, net_name, raw, sink_nets, config, role,
                block=inst_name)

    # ------------------------------------------------------------------
    # 4. Output ports and the final output voters
    # ------------------------------------------------------------------
    for port in top.output_ports():
        output_port_map[port.name] = _create_output_ports(
            tmr, top, port, config, cells, sink_nets, voters_by_role)

    voter_count = sum(voters_by_role.values())

    result = TMRResult(
        definition=tmr,
        config=config,
        source=top,
        voted_nets=voted_net_names,
        voter_count=voter_count,
        voters_by_role=voters_by_role,
        partition_count=len({_block_of_net(top, n) for n in voted_net_names})
        + 1,
        input_port_map=input_port_map,
        output_port_map=output_port_map,
    )
    tmr.properties["tmr_result_summary"] = result.summary()
    return result


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _plan_shared_inputs(top: Definition, config: TMRConfig) -> Set[str]:
    """Names of nets that stay shared across domains (non-triplicated pins)."""
    shared: Set[str] = set()
    for port in top.input_ports():
        is_clock = port.name.upper() in {p.upper() for p in config.clock_ports}
        triplicate = config.triplicate_clock if is_clock else \
            config.triplicate_inputs
        if triplicate:
            continue
        for bit in port.bits():
            pin = top.top_pin(port.name, bit)
            if pin.net is not None:
                shared.add(pin.net.name)
    return shared


def _create_input_ports(tmr: Definition, top: Definition, port,
                        config: TMRConfig, domain_nets: Dict[str, List[Net]],
                        shared_input_nets: Set[str]) -> List[str]:
    """Create the (possibly triplicated) copies of one input port."""
    is_clock = port.name.upper() in {p.upper() for p in config.clock_ports}
    triplicate = config.triplicate_clock if is_clock else \
        config.triplicate_inputs

    created: List[str] = []
    if not triplicate:
        new_port = tmr.add_port(port.name, Direction.INPUT, port.width)
        created.append(new_port.name)
        for bit in port.bits():
            pin = top.top_pin(port.name, bit)
            if pin.net is None:
                continue
            domain_nets[pin.net.name][0].connect(tmr.top_pin(port.name, bit))
        return created

    for domain in range(NUM_DOMAINS):
        port_name = f"{port.name}{DOMAIN_SUFFIXES[domain]}"
        tmr.add_port(port_name, Direction.INPUT, port.width)
        created.append(port_name)
        for bit in port.bits():
            pin = top.top_pin(port.name, bit)
            if pin.net is None:
                continue
            domain_nets[pin.net.name][domain].connect(
                tmr.top_pin(port_name, bit))
    return created


def _output_net_names(instance: Instance) -> List[str]:
    """Original nets driven by an instance's output ports."""
    names: List[str] = []
    for pin in instance.pins():
        if pin.is_driver and pin.net is not None:
            names.append(pin.net.name)
    return names


def _insert_barrier(tmr: Definition, cells: Library, net_name: str,
                    raw: List[Net], sink_nets: Dict[str, List[Net]],
                    config: TMRConfig, role: str,
                    block: Optional[str] = None) -> int:
    """Insert voters for one original net; returns the number of voters."""
    # Collect the sink pins per domain before any voter input is attached.
    pending_sinks: List[List] = []
    for domain in range(NUM_DOMAINS):
        pending_sinks.append([pin for pin in raw[domain].sinks()
                              if isinstance(pin, InstancePin)])

    inserted = 0
    if config.triplicate_voters:
        voted: List[Net] = []
        for domain in range(NUM_DOMAINS):
            voted_net = tmr.add_net(f"{net_name}_voted{DOMAIN_SUFFIXES[domain]}")
            voted_net.properties[DOMAIN_PROPERTY] = domain
            voted_net.properties["voted_copy_of"] = net_name
            voter = insert_majority_voter(
                tmr, raw, voted_net, cell_library=cells,
                name=tmr.make_unique_name(f"voter_{role}"),
                domain=domain, voted_net=net_name, role=role)
            if block is not None:
                # Keep the voter physically close to the component whose
                # output it votes: the packer clusters by this tag.
                voter.properties["tmr_block"] = block
            voted.append(voted_net)
            inserted += 1
    else:
        single = tmr.add_net(f"{net_name}_voted")
        single.properties["voted_copy_of"] = net_name
        voter = insert_majority_voter(
            tmr, raw, single, cell_library=cells,
            name=tmr.make_unique_name(f"voter_{role}"),
            domain=None, voted_net=net_name, role=role)
        if block is not None:
            voter.properties["tmr_block"] = block
        voted = [single] * NUM_DOMAINS
        inserted += 1

    for domain in range(NUM_DOMAINS):
        for pin in pending_sinks[domain]:
            voted[domain].connect(pin)
        sink_nets[net_name][domain] = voted[domain]
    return inserted


def _create_output_ports(tmr: Definition, top: Definition, port,
                         config: TMRConfig, cells: Library,
                         sink_nets: Dict[str, List[Net]],
                         voters_by_role: Dict[str, int]) -> List[str]:
    """Create output ports, inserting the final output voters by default."""
    created: List[str] = []
    if config.triplicate_outputs:
        for domain in range(NUM_DOMAINS):
            port_name = f"{port.name}{DOMAIN_SUFFIXES[domain]}"
            tmr.add_port(port_name, Direction.OUTPUT, port.width)
            created.append(port_name)
            for bit in port.bits():
                pin = top.top_pin(port.name, bit)
                if pin.net is None:
                    continue
                sink_nets[pin.net.name][domain].connect(
                    tmr.top_pin(port_name, bit))
        return created

    tmr.add_port(port.name, Direction.OUTPUT, port.width)
    created.append(port.name)
    for bit in port.bits():
        pin = top.top_pin(port.name, bit)
        if pin.net is None:
            continue
        net_name = pin.net.name
        output_net = tmr.add_net(f"{net_name}_out")
        insert_majority_voter(
            tmr, [sink_nets[net_name][d] for d in range(NUM_DOMAINS)],
            output_net, cell_library=cells,
            name=tmr.make_unique_name("voter_output"),
            domain=None, voted_net=net_name, role="output")
        voters_by_role["output"] += 1
        output_net.connect(tmr.top_pin(port.name, bit))
    return created


def _block_of_net(top: Definition, net_name: str) -> str:
    """The component instance that drives an original net (for partition
    counting)."""
    net = top.nets.get(net_name)
    if net is None:
        return net_name
    for pin in net.drivers():
        if isinstance(pin, InstancePin):
            return pin.instance.name
    return net_name


def domain_of(instance: Instance) -> Optional[int]:
    """The TMR domain an instance belongs to (None for shared logic such as
    the final output voters)."""
    value = instance.properties.get(DOMAIN_PROPERTY)
    return int(value) if value is not None else None
