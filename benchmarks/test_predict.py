"""Benchmark: predictive fault-list pruning (static campaign prefilter).

Measures, per design, the Table 3 campaign with and without the layout
analyzer's ``prefilter="static"`` knob: the defeat map is built once (a
static per-design artifact amortized over every later campaign — seeds,
workloads, upset models) and passed in explicitly, then the prefiltered
campaign — which hands the execution backend only the injections that can
possibly change an output — is measured against the full campaign both
cold (empty campaign cache, the first-campaign regime) and warm (the
steady state of scenario matrices).

The headline metric is ``simulated_reduction``: how many times fewer
injections the execution backend evaluates.  Wall times are recorded too,
but most pruned bits are no-effect upsets that were cheap to evaluate, so
the wall-time gain is modest — the count reduction is what scales (every
skipped injection also skips its fault modeling, task construction and
verdict classification at every later seed/workload/model combination).

The defeat-map build itself is costed separately
(``defeat_map_seconds``) and then *folded back in*: ``speedup_with_map``
is the cold campaign speedup when the map build is charged to that one
campaign (the pay-it-all-upfront worst case), and
``campaigns_to_amortize_map`` is how many cold campaigns it takes for
the map to pay for itself.  That keeps the prefilter's known soft spot —
a map that costs more to build than it saves — visible and gateable
instead of hidden in an untimed setup step.

The numbers land in ``BENCH_predict.json`` at the repository root; the CI
regression gate (``benchmarks/check_regression.py --predict-baseline ...``)
tracks the pruning ratios across PRs.

Knobs: ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_FAULTS`` (see conftest);
``REPRO_BENCH_PREDICT_MIN_SPEEDUP`` relaxes the wall-time floor on noisy
shared runners (the pruning-ratio bar is count-based and portable).
"""

import json
import os
import time

from repro.analysis.layout import defeat_map_for
from repro.experiments import campaign_config_for
from repro.faults import clear_cache, implementation_fingerprint, \
    run_campaign
from repro.service.tier import SharedCacheTier

BENCH_FAULTS = int(os.environ.get("REPRO_BENCH_FAULTS", "0")) or None

#: Wall-time floor: the prefiltered campaign must not be *pathologically*
#: slower than the full one.  Smoke-scale campaigns finish in fractions
#: of a second, so the ratio jitters around 1.0 with scheduler noise —
#: the floor only catches a prefilter that somehow doubles the campaign
#: cost; the headline saving is the simulated-fault count, asserted
#: separately and machine-independent.
MIN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_PREDICT_MIN_SPEEDUP", "0.5"))

#: Floor on the cold speedup with the defeat-map build charged to the
#: campaign (``speedup_with_map``).  Catches a map build that blows up
#: to many multiples of the campaign it serves; relaxed on noisy shared
#: runners via the env knob.
MAP_MIN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_PREDICT_MAP_MIN_SPEEDUP", "0.2"))

#: Required reduction of backend-simulated faults on the paper's optimal
#: partition: the acceptance bar of the predictive-pruning feature.
MIN_REDUCTION_TMR_P2 = 1.5

#: design versions measured (the unprotected filter plus the paper's
#: optimal partition and the unvoted-register worst case)
MEASURED_DESIGNS = ("standard", "TMR_p2", "TMR_p3_nv")

#: written into the session's ``bench_out_dir`` (committed baselines are
#: only overwritten under ``--update-baselines``)
BENCH_NAME = "BENCH_predict.json"


def _timed(thunk):
    start = time.perf_counter()
    value = thunk()
    return value, time.perf_counter() - start


def test_predictive_prefilter(benchmark, design_suite, implementations,
                              bench_out_dir, tmp_path_factory):
    config = campaign_config_for(design_suite, num_faults=BENCH_FAULTS)
    prefiltered_config = campaign_config_for(
        design_suite, num_faults=BENCH_FAULTS, prefilter="static")
    tier = SharedCacheTier(tmp_path_factory.mktemp("cache-tier"))

    clear_cache()
    payload = {
        "scale": design_suite.scale.name,
        "num_faults": config.num_faults,
        "workload_cycles": config.workload_cycles,
        "designs": {},
    }
    for name in MEASURED_DESIGNS:
        implementation = implementations[name]

        # The defeat map is the static artifact the prefilter consumes —
        # built once per design and amortized over every later campaign
        # (seeds, workloads, upset models) — so it is built outside the
        # timed region, passed in explicitly, and costed separately.
        defeat_map, map_seconds = _timed(
            lambda: defeat_map_for(implementation,
                                   mode=config.fault_list_mode,
                                   use_cache=False))

        # Cold runs: each campaign starts from an empty campaign cache,
        # the regime of the *first* campaign on a design, where the
        # prefiltered run skips the fault modeling of every silent bit.
        # Best of two per variant — the runs are fractions of a second,
        # so a single timer blip would swing the reported ratio.
        cold_pre = cold_full = None
        pre_result = full_result = None
        for _ in range(2):
            clear_cache()
            pre_result, seconds = _timed(
                lambda: run_campaign(implementation, prefiltered_config,
                                     backend="batch",
                                     defeat_map=defeat_map))
            cold_pre = seconds if cold_pre is None \
                else min(cold_pre, seconds)
            clear_cache()
            full_result, seconds = _timed(
                lambda: run_campaign(implementation, config,
                                     backend="batch"))
            cold_full = seconds if cold_full is None \
                else min(cold_full, seconds)

        # Warm runs: repeated campaigns over the shared campaign cache
        # (the steady state of scenario matrices and repeated seeds).
        warm_pre = warm_full = None
        warm_pre_result = warm_full_result = None
        for _ in range(2):
            warm_pre_result, seconds = _timed(
                lambda: run_campaign(implementation, prefiltered_config,
                                     backend="batch",
                                     defeat_map=defeat_map))
            warm_pre = seconds if warm_pre is None \
                else min(warm_pre, seconds)
            warm_full_result, seconds = _timed(
                lambda: run_campaign(implementation, config,
                                     backend="batch"))
            warm_full = seconds if warm_full is None \
                else min(warm_full, seconds)

        # Prefiltering must not change a single aggregate.
        for candidate in (pre_result, warm_pre_result, warm_full_result):
            assert candidate.wrong_answers == full_result.wrong_answers
            assert candidate.injected == full_result.injected
            assert candidate.effect_table() == full_result.effect_table()

        reduction = (full_result.injected / pre_result.simulated
                     if pre_result.simulated else float("inf"))
        per_campaign_saving = cold_full - cold_pre
        campaigns_to_amortize = (
            round(map_seconds / per_campaign_saving, 1)
            if per_campaign_saving > 0 else None)

        # The shared cache tier's amortization story: the map is built
        # (and stored) once *ever*, then every later campaign — in this
        # process or any other service worker — pays a pickle load
        # instead of the analyzer pass.  A warm-tier campaign therefore
        # amortizes the map after ~1 campaign; the build cost is paid by
        # exactly one job fleet-wide.
        fingerprint = implementation_fingerprint(implementation)
        _, map_store_seconds = _timed(
            lambda: tier.store_defeat_map(fingerprint,
                                          config.fault_list_mode,
                                          defeat_map))
        loaded_map, map_load_seconds = _timed(
            lambda: tier.load_defeat_map(fingerprint,
                                         config.fault_list_mode))
        assert loaded_map is not None
        assert loaded_map.predictions == defeat_map.predictions
        amortize_with_tier = (
            round(map_load_seconds / per_campaign_saving, 2)
            if per_campaign_saving > 0 else None)

        payload["designs"][name] = {
            "injected": full_result.injected,
            "simulated_full": full_result.injected,
            "simulated_prefiltered": pre_result.simulated,
            "skipped_silent": pre_result.skipped_silent,
            "simulated_reduction": round(reduction, 2),
            "full_seconds": round(cold_full, 4),
            "prefiltered_seconds": round(cold_pre, 4),
            "speedup": round(cold_full / cold_pre, 2),
            "warm_full_seconds": round(warm_full, 4),
            "warm_prefiltered_seconds": round(warm_pre, 4),
            "warm_speedup": round(warm_full / warm_pre, 2),
            "defeat_map_seconds": round(map_seconds, 4),
            "speedup_with_map": round(
                cold_full / (cold_pre + map_seconds), 2),
            "campaigns_to_amortize_map": campaigns_to_amortize,
            "map_tier_store_seconds": round(map_store_seconds, 4),
            "map_tier_load_seconds": round(map_load_seconds, 4),
            "map_tier_load_speedup_vs_build": round(
                map_seconds / map_load_seconds, 1)
            if map_load_seconds > 0 else None,
            "campaigns_to_amortize_map_with_tier": amortize_with_tier,
            "fault_list_bits": len(defeat_map),
            "classes": defeat_map.counts(),
            "layout_defeat_probability": round(
                defeat_map.defeat_probability(), 5),
        }

    (bench_out_dir / BENCH_NAME).write_text(
        json.dumps(payload, indent=2) + "\n")
    benchmark.extra_info["predictive_prefilter"] = payload
    benchmark.pedantic(lambda: payload, rounds=1, iterations=1)

    # Acceptance bars: the static prefilter cuts the backend-simulated
    # fault count of the optimal partition by >= 1.5x (count-based,
    # machine-independent) and the prefiltered campaign must not be
    # materially slower than the full one (floor relaxed further on
    # noisy shared runners via the env knob).
    tmr_p2 = payload["designs"]["TMR_p2"]
    assert tmr_p2["simulated_reduction"] >= MIN_REDUCTION_TMR_P2, tmr_p2
    for name, row in payload["designs"].items():
        assert row["simulated_reduction"] >= 1.0, (name, row)
        assert row["speedup"] >= MIN_SPEEDUP, (name, row)
        assert row["speedup_with_map"] >= MAP_MIN_SPEEDUP, (name, row)

    # The vectorized analyzer now rebuilds a smoke-scale map about as
    # fast as the tier deserializes one, so load-beats-build no longer
    # holds at this scale (the crossover stays visible per design via
    # ``map_tier_load_speedup_vs_build``); the tier's remaining value
    # here is cross-process amortization — one build fleet-wide — not
    # single-process latency.  What must still hold is that a tier load
    # never costs *multiples* of a rebuild, which would mean the stored
    # artifact has bloated.
    for name, row in payload["designs"].items():
        assert row["map_tier_load_seconds"] < \
            5 * row["defeat_map_seconds"] + 0.05, (name, row)
