"""Benchmark reproducing Table 2: area, bitstream composition, performance.

Paper claims checked (shape, not absolute numbers):

* the TMR versions cost roughly 3-4x the unprotected slices;
* the maximum partition (TMR_p1) is the largest TMR version and the
  unvoted-register version (TMR_p3_nv) the smallest;
* routing bits dominate the per-design configuration bits (~77-83% in the
  paper, ~85-92% in our fabric model);
* the minimum partitions lose little performance, the maximum partition the
  most.
"""

from repro.analysis import area_overhead, resource_table
from repro.experiments import DESIGN_ORDER, run_table2


def test_table2_resources(benchmark, design_suite, implementations):
    table = benchmark.pedantic(
        lambda: run_table2(design_suite, implementations),
        rounds=1, iterations=1)

    rows = {name: table[name] for name in DESIGN_ORDER}
    benchmark.extra_info["table2"] = {
        name: {key: rows[name][key]
               for key in ("slices", "routing_bits", "lut_bits", "ff_bits",
                           "fmax_mhz", "area_overhead_vs_standard")}
        for name in DESIGN_ORDER}

    # TMR area overhead is in the 2.5x - 6x band around the paper's ~3.2-3.7x.
    for name in ("TMR_p1", "TMR_p2", "TMR_p3", "TMR_p3_nv"):
        overhead = rows[name]["area_overhead_vs_standard"]
        assert 2.0 <= overhead <= 7.0, (name, overhead)

    # Ordering of the TMR versions by area matches the paper:
    # max partition >= medium >= minimum >= minimum without voted registers.
    assert rows["TMR_p1"]["slices"] >= rows["TMR_p2"]["slices"] >= \
        rows["TMR_p3"]["slices"] >= rows["TMR_p3_nv"]["slices"]

    # Routing bits dominate every design's configuration footprint.
    for name in DESIGN_ORDER:
        assert rows[name]["routing_fraction"] > 0.75, name

    # Performance: no TMR version is faster than the unprotected filter, and
    # the maximum partition (a voter after every component) is the slowest.
    for name in ("TMR_p1", "TMR_p2", "TMR_p3", "TMR_p3_nv"):
        assert rows[name]["fmax_mhz"] <= rows["standard"]["fmax_mhz"] * 1.02
    assert rows["TMR_p1"]["fmax_mhz"] <= rows["TMR_p3"]["fmax_mhz"]


def test_table2_bit_accounting_consistency(benchmark, implementations):
    """The Table 2 bit counts equal the fault-list size used for Table 3."""
    from repro.faults import FaultListManager

    def check():
        rows = resource_table(implementations, order=DESIGN_ORDER)
        consistent = {}
        for row in rows:
            fault_list = FaultListManager(
                implementations[row.design]).build("design")
            consistent[row.design] = (row.total_bits, len(fault_list))
        return consistent

    consistent = benchmark.pedantic(check, rounds=1, iterations=1)
    for design, (table_bits, fault_bits) in consistent.items():
        assert table_bits == fault_bits, design
