"""LUT INIT value construction helpers.

A ``LUTk`` primitive stores its truth table in an ``INIT`` integer: bit *i*
of INIT is the LUT output when the input address (I0 = LSB) equals *i*.
These helpers build INIT values from Python functions and provide the
canonical INITs used by the technology mapper and the TMR voter generator.
"""

from __future__ import annotations

from typing import Callable, Sequence


def init_from_function(function: Callable[..., int], num_inputs: int) -> int:
    """Build an INIT integer from a boolean function of *num_inputs* args."""
    if not 1 <= num_inputs <= 6:
        raise ValueError(f"unsupported LUT size: {num_inputs}")
    init = 0
    for address in range(1 << num_inputs):
        arguments = [(address >> bit) & 1 for bit in range(num_inputs)]
        if function(*arguments) & 1:
            init |= 1 << address
    return init


def init_from_truth_table(rows: Sequence[int], num_inputs: int) -> int:
    """Build an INIT from an explicit truth table (entry *i* = output at *i*)."""
    if len(rows) != (1 << num_inputs):
        raise ValueError(
            f"truth table for LUT{num_inputs} needs {1 << num_inputs} rows, "
            f"got {len(rows)}")
    init = 0
    for address, value in enumerate(rows):
        if value & 1:
            init |= 1 << address
    return init


def truth_table(init: int, num_inputs: int) -> list:
    """Inverse of :func:`init_from_truth_table`."""
    return [(init >> address) & 1 for address in range(1 << num_inputs)]


# ----------------------------------------------------------------------
# Canonical INITs (I0 is the least-significant address bit)
# ----------------------------------------------------------------------

#: LUT1 buffer: O = I0
INIT_BUF = init_from_function(lambda a: a, 1)
#: LUT1 inverter: O = ~I0
INIT_INV = init_from_function(lambda a: 1 - a, 1)

#: LUT2 basics
INIT_AND2 = init_from_function(lambda a, b: a & b, 2)
INIT_OR2 = init_from_function(lambda a, b: a | b, 2)
INIT_XOR2 = init_from_function(lambda a, b: a ^ b, 2)
INIT_XNOR2 = init_from_function(lambda a, b: 1 - (a ^ b), 2)
INIT_NAND2 = init_from_function(lambda a, b: 1 - (a & b), 2)
INIT_NOR2 = init_from_function(lambda a, b: 1 - (a | b), 2)
INIT_ANDNOT2 = init_from_function(lambda a, b: a & (1 - b), 2)

#: LUT3: full-adder sum (a ^ b ^ cin) and carry (majority)
INIT_XOR3 = init_from_function(lambda a, b, c: a ^ b ^ c, 3)
INIT_MAJ3 = init_from_function(lambda a, b, c: (a & b) | (a & c) | (b & c), 3)
#: LUT3 2:1 mux — I2 is the select, I0 selected when S=0, I1 when S=1.
INIT_MUX2 = init_from_function(lambda a, b, s: b if s else a, 3)
INIT_AND3 = init_from_function(lambda a, b, c: a & b & c, 3)
INIT_OR3 = init_from_function(lambda a, b, c: a | b | c, 3)

#: LUT4
INIT_XOR4 = init_from_function(lambda a, b, c, d: a ^ b ^ c ^ d, 4)
INIT_AND4 = init_from_function(lambda a, b, c, d: a & b & c & d, 4)
INIT_OR4 = init_from_function(lambda a, b, c, d: a | b | c | d, 4)

#: The TMR majority voter is a 3-input majority function in a single LUT —
#: this is exactly what the paper means by "one majority voter can be
#: implemented by one LUT".
INIT_VOTER = INIT_MAJ3

_NAMED_INITS = {
    "BUF": (INIT_BUF, 1),
    "INV": (INIT_INV, 1),
    "AND2": (INIT_AND2, 2),
    "OR2": (INIT_OR2, 2),
    "XOR2": (INIT_XOR2, 2),
    "XNOR2": (INIT_XNOR2, 2),
    "NAND2": (INIT_NAND2, 2),
    "NOR2": (INIT_NOR2, 2),
    "ANDNOT2": (INIT_ANDNOT2, 2),
    "XOR3": (INIT_XOR3, 3),
    "MAJ3": (INIT_MAJ3, 3),
    "MUX2": (INIT_MUX2, 3),
    "AND3": (INIT_AND3, 3),
    "OR3": (INIT_OR3, 3),
    "XOR4": (INIT_XOR4, 4),
    "AND4": (INIT_AND4, 4),
    "OR4": (INIT_OR4, 4),
    "VOTER": (INIT_VOTER, 3),
}


def named_init(name: str) -> int:
    """Look up a canonical INIT by gate name (e.g. ``"XOR2"``)."""
    try:
        return _NAMED_INITS[name][0]
    except KeyError:
        raise ValueError(f"unknown named INIT {name!r}") from None


def named_init_width(name: str) -> int:
    """Number of LUT inputs used by a named INIT."""
    try:
        return _NAMED_INITS[name][1]
    except KeyError:
        raise ValueError(f"unknown named INIT {name!r}") from None
