"""Bitstream generation.

``generate_bitstream`` turns a packed, placed and routed design into the
configuration memory contents of the target device and, at the same time,
builds the *used-resource database* that the fault-list manager relies on:
which LUT sites, flip-flop sites, slice configuration bits and PIPs implement
the design, and which design cell or net each of them belongs to.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..cells.evaluate import lut_init_of
from ..cells.library import lut_input_count
from ..netlist.ir import Definition
from .config import (LUT_BITS, BitstreamStats, ConfigLayout, ConfigMemory,
                     lut_bit, pip_resource, slice_cfg)
from .device import FF_SLOTS, LUT_SLOTS, Device
from .routing import Node, Pip

if TYPE_CHECKING:  # imported for type annotations only (avoids a cycle)
    from ..pnr.pack import PackResult
    from ..pnr.place import Placement
    from ..pnr.route import RoutingResult


@dataclasses.dataclass
class LutSite:
    """A LUT site occupied by a design cell."""

    x: int
    y: int
    slot: str
    cell: str
    logical_inputs: int
    init: int


@dataclasses.dataclass
class FlipFlopSite:
    """A flip-flop site occupied by a design cell."""

    x: int
    y: int
    slot: str
    cell: str
    init_value: int
    uses_clock_enable: bool
    data_from_lut: bool


@dataclasses.dataclass
class UsedResources:
    """Everything the implemented design occupies on the device."""

    lut_sites: List[LutSite]
    ff_sites: List[FlipFlopSite]
    used_slices: List[Tuple[int, int]]
    used_pips: Dict[Pip, str]            # pip -> net name
    used_nodes: Dict[Node, str]          # routing node -> net name
    #: (x, y, slot) -> cell name, for both LUT and FF slots
    site_cells: Dict[Tuple[int, int, str], str]
    stats: BitstreamStats

    def lut_site_at(self, x: int, y: int, slot: str) -> Optional[LutSite]:
        for site in self.lut_sites:
            if site.x == x and site.y == y and site.slot == slot:
                return site
        return None

    def ff_site_at(self, x: int, y: int, slot: str) -> Optional[FlipFlopSite]:
        for site in self.ff_sites:
            if site.x == x and site.y == y and site.slot == slot:
                return site
        return None


def _physical_lut_init(logical_init: int, logical_inputs: int) -> int:
    """Expand a k-input LUT INIT into the 16-bit physical truth table.

    Unused physical inputs are modelled as tied low, so only the low
    ``2**k`` entries of the physical table are meaningful; the upper entries
    stay zero.  A configuration upset in those upper entries therefore has no
    functional effect, while an upset in the low region flips one minterm of
    the logical function.
    """
    mask = (1 << (1 << logical_inputs)) - 1
    return logical_init & mask


def generate_bitstream(definition: Definition, device: Device,
                       pack_result: PackResult, placement: Placement,
                       routing: RoutingResult,
                       layout: Optional[ConfigLayout] = None
                       ) -> Tuple[ConfigMemory, UsedResources, ConfigLayout]:
    """Produce the configuration memory and the used-resource database."""
    layout = layout if layout is not None else ConfigLayout(device)
    memory = ConfigMemory(layout)

    lut_sites: List[LutSite] = []
    ff_sites: List[FlipFlopSite] = []
    used_slices: List[Tuple[int, int]] = []
    site_cells: Dict[Tuple[int, int, str], str] = {}

    direct_ff_cells = {connection.cell for connection in routing.direct}

    for slice_index, assignment in enumerate(pack_result.slices):
        if assignment.is_empty():
            continue
        x, y = placement.slice_tiles[slice_index]
        used_slices.append((x, y))

        for slot in LUT_SLOTS:
            cell_name = assignment.cells.get(slot)
            if cell_name is None:
                continue
            instance = definition.instances[cell_name]
            logical_inputs = lut_input_count(instance.reference.name)
            init = _physical_lut_init(lut_init_of(instance), logical_inputs)
            lut_sites.append(LutSite(x, y, slot, cell_name, logical_inputs,
                                     init))
            site_cells[(x, y, slot)] = cell_name
            for bit in range(LUT_BITS):
                if (init >> bit) & 1:
                    memory.set_resource(lut_bit(x, y, slot, bit), 1)

        for slot in FF_SLOTS:
            cell_name = assignment.cells.get(slot)
            if cell_name is None:
                continue
            instance = definition.instances[cell_name]
            ff_init = int(instance.properties.get("FF_INIT", 0)) & 1
            uses_ce = "CE" in instance.reference.ports and \
                instance.net_of("CE") is not None
            data_direct = cell_name in direct_ff_cells or \
                slot in assignment.direct_ff_data
            ff_sites.append(FlipFlopSite(x, y, slot, cell_name, ff_init,
                                         uses_ce, data_direct))
            site_cells[(x, y, slot)] = cell_name
            suffix = "X" if slot == "FFX" else "Y"
            if ff_init:
                memory.set_resource(slice_cfg(x, y, f"FF{suffix}_INIT"), 1)
            if data_direct:
                memory.set_resource(slice_cfg(x, y, f"FF{suffix}_DMUX"), 1)
            if uses_ce:
                memory.set_resource(slice_cfg(x, y, f"FF{suffix}_CEMUX"), 1)

    for pip, net_name in routing.pip_owner.items():
        memory.set_resource(pip_resource(pip), 1)

    stats = compute_design_bit_stats(device, layout, lut_sites, ff_sites,
                                     used_slices, routing)

    resources = UsedResources(
        lut_sites=lut_sites,
        ff_sites=ff_sites,
        used_slices=used_slices,
        used_pips=dict(routing.pip_owner),
        used_nodes=dict(routing.node_owner),
        site_cells=site_cells,
        stats=stats,
    )
    return memory, resources, layout


def compute_design_bit_stats(device: Device, layout: ConfigLayout,
                             lut_sites: List[LutSite],
                             ff_sites: List[FlipFlopSite],
                             used_slices: List[Tuple[int, int]],
                             routing: RoutingResult) -> BitstreamStats:
    """Count the configuration bits associated with the implemented design.

    This reproduces the accounting of the paper's Table 2: *routing bits* are
    the bits of every routing multiplexer serving the design's signals (all
    candidate PIPs of every used destination node, not just the ones turned
    on), *LUT bits* are the truth-table bits of used LUTs and *CLB flip-flop
    bits* are the slice configuration bits of used flip-flops.

    The per-node candidate counts come from the layout's memoized
    fan-in tables (one dictionary lookup per used node) instead of the
    seed's linear scan over each tile's PIP list; the counts are the same
    integers, asserted by the flow-equivalence tests against
    :func:`repro.pnr.reference.reference_bit_stats`.
    """
    from .routing import node_tile

    lut_bits = LUT_BITS * len(lut_sites)
    ff_bits = 0
    for _site in ff_sites:
        # INIT, DMUX, CEMUX and SRMODE bits belong to each used flip-flop,
        # plus a share of the per-slice clock-inversion bit.
        ff_bits += 4
    ff_bits += len(used_slices)  # CLKINV per used slice

    used_destinations = {node for node in routing.node_owner
                         if node[0] in ("wire", "ipin", "pad_i")}
    routing_bits = 0
    for node in used_destinations:
        tile = node_tile(device, node)
        routing_bits += layout.pip_fanin_counts(*tile).get(node, 0)

    return BitstreamStats(routing_bits=routing_bits, lut_bits=lut_bits,
                          ff_bits=ff_bits)
