"""Tests for the compiled design, simulator, overlays and golden comparison."""

import pytest

from repro.cells import INIT_AND2, INIT_XOR2, logic
from repro.netlist import Netlist, NetlistBuilder
from repro.sim import (BLEND_WIRED_AND, BLEND_WIRED_OR, CompiledDesign,
                       ComparisonResult, FaultOverlay, SimulationTrace,
                       Simulator, SourceOverride, alternating,
                       campaign_workload, compare_traces, impulse,
                       random_samples, signed_range, step,
                       stimulus_from_samples, tmr_stimulus_from_samples,
                       trace_matches_reference)
from repro.techmap import GateBuilder
from repro.cells.library import shared_cell_library


@pytest.fixture()
def registered_xor():
    """A tiny registered design: Q <= A xor (A and B)."""
    netlist = Netlist("t")
    builder = NetlistBuilder.new_module(netlist, "dut", "work",
                                        shared_cell_library())
    gates = GateBuilder(builder)
    clk = builder.input("CLK", 1)[0]
    a = builder.input("A", 1)[0]
    b = builder.input("B", 1)[0]
    q = builder.output("Q", 1)[0]
    comb = gates.xor2(a, gates.and2(a, b))
    builder.instantiate("FD", "state", C=clk, D=comb, Q=q)
    return CompiledDesign(builder.finish(set_top=True))


class TestCompiledDesign:
    def test_ports_and_nets_indexed(self, registered_xor):
        assert "A" in registered_xor.inputs
        assert "Q" in registered_xor.outputs
        assert registered_xor.num_nets == len(
            registered_xor.definition.nets)

    def test_clock_net_identified(self, registered_xor):
        clock_names = [registered_xor.net_names[i]
                       for i in registered_xor.clock_nets]
        assert clock_names == ["CLK"]

    def test_gate_and_ff_tables(self, registered_xor):
        assert len(registered_xor.flip_flops) == 1
        assert len(registered_xor.gates) == 2
        assert registered_xor.flip_flops[0].cell == "FD"

    def test_rejects_hierarchical_netlist(self, tiny_fir):
        _netlist, _spec, top, _components = tiny_fir
        with pytest.raises(Exception):
            CompiledDesign(top)

    def test_fault_cone_includes_driver_and_downstream(self, registered_xor):
        and_gate = next(g for g in registered_xor.gates
                        if g.init == INIT_AND2)
        cone = registered_xor.fault_cone([and_gate.output_net])
        assert and_gate.index in cone.gate_indices
        xor_gate = next(g for g in registered_xor.gates
                        if g.init == INIT_XOR2)
        assert xor_gate.index in cone.gate_indices
        assert registered_xor.flip_flops[0].index in cone.ff_indices

    def test_fault_cone_of_ff_output(self, registered_xor):
        q_net = registered_xor.flip_flops[0].q_net
        cone = registered_xor.fault_cone([q_net])
        assert registered_xor.flip_flops[0].index in cone.ff_indices


class TestSimulator:
    def test_register_delays_by_one_cycle(self, registered_xor):
        stimulus = [{"A": 1, "B": 0}, {"A": 0, "B": 0}, {"A": 0, "B": 0}]
        trace = Simulator(registered_xor).run(stimulus)
        assert trace.output_ints("Q", signed=False) == [0, 1, 0]

    def test_record_nets_and_ff_states(self, registered_xor):
        trace = Simulator(registered_xor).run([{"A": 1, "B": 1}] * 2,
                                              record_nets=True)
        assert trace.net_values is not None and len(trace.net_values) == 2
        assert trace.ff_states is not None

    def test_cone_simulation_matches_full(self, tiny_fir, tiny_fir_compiled):
        _netlist, spec, _top, _components = tiny_fir
        samples = random_samples(12, spec.data_width, seed=1)
        stimulus = stimulus_from_samples(samples)
        golden = Simulator(tiny_fir_compiled).run(stimulus, record_nets=True)

        victim = next(g for g in tiny_fir_compiled.gates if g.kind == 0)
        overlay = FaultOverlay(lut_init_overrides={victim.index:
                                                   victim.init ^ 0x3},
                               seed_nets=[victim.output_net])
        full = Simulator(tiny_fir_compiled, overlay).run(stimulus)
        cone = tiny_fir_compiled.fault_cone(overlay.seed_nets)
        fast = Simulator(tiny_fir_compiled, overlay).run(
            stimulus, golden=golden, cone=cone)
        assert full.outputs == fast.outputs

    def test_cone_requires_recorded_golden(self, registered_xor):
        golden = Simulator(registered_xor).run([{"A": 0, "B": 0}])
        cone = registered_xor.fault_cone([0])
        with pytest.raises(ValueError):
            Simulator(registered_xor).run([{"A": 0, "B": 0}], golden=golden,
                                          cone=cone)

    def test_unknown_inputs_propagate(self, registered_xor):
        trace = Simulator(registered_xor).run([{"A": [logic.UNKNOWN],
                                                "B": [1]}])
        # Q is still the initial 0 in cycle 0 regardless of the unknown.
        assert trace.outputs[0]["Q"] == [0]


class TestOverlays:
    def test_source_override_constant_and_net(self):
        values = [0, 1, logic.UNKNOWN]
        assert SourceOverride.constant(1).resolve(values) == 1
        assert SourceOverride.floating().resolve(values) == logic.UNKNOWN
        assert SourceOverride.net(1).resolve(values) == 1

    def test_source_override_blends(self):
        values = [1, 0, 1]
        assert SourceOverride.blend_of(0, 2, BLEND_WIRED_AND).resolve(
            values) == 1
        assert SourceOverride.blend_of(0, 1, BLEND_WIRED_AND).resolve(
            values) == 0
        assert SourceOverride.blend_of(1, 0, BLEND_WIRED_OR).resolve(
            values) == 1

    def test_overlay_is_empty_and_passes(self):
        overlay = FaultOverlay()
        assert overlay.is_empty()
        assert overlay.required_passes() == 1
        overlay.net_overrides[0] = SourceOverride.constant(0)
        assert not overlay.is_empty()
        assert overlay.required_passes() >= 3

    def test_gate_pin_override_changes_result(self, registered_xor):
        and_gate = next(g for g in registered_xor.gates
                        if g.init == INIT_AND2)
        overlay = FaultOverlay(gate_pin_overrides={
            (and_gate.index, 1): SourceOverride.constant(1)})
        stimulus = [{"A": 1, "B": 0}, {"A": 1, "B": 0}]
        clean = Simulator(registered_xor).run(stimulus)
        faulty = Simulator(registered_xor, overlay).run(stimulus)
        assert clean.outputs != faulty.outputs

    def test_ff_init_override(self, registered_xor):
        overlay = FaultOverlay(ff_init_overrides={0: 1})
        trace = Simulator(registered_xor, overlay).run([{"A": 0, "B": 0}])
        assert trace.outputs[0]["Q"] == [1]

    def test_output_pin_override(self, registered_xor):
        overlay = FaultOverlay(output_pin_overrides={
            ("Q", 0): SourceOverride.constant(1)})
        trace = Simulator(registered_xor, overlay).run([{"A": 0, "B": 0}])
        assert trace.outputs[0]["Q"] == [1]


class TestGoldenComparison:
    def _trace(self, values):
        return SimulationTrace([{"Q": [v]} for v in values])

    def test_identical_traces_match(self):
        result = compare_traces(self._trace([0, 1]), self._trace([0, 1]))
        assert not result.wrong_answer
        assert result.first_mismatch_cycle is None

    def test_mismatch_detected(self):
        result = compare_traces(self._trace([0, 1, 1]),
                                self._trace([0, 0, 1]))
        assert result.wrong_answer
        assert result.first_mismatch_cycle == 1
        assert result.mismatching_cycles == 1

    def test_unknown_dut_output_counts_as_wrong(self):
        result = compare_traces(self._trace([logic.UNKNOWN]),
                                self._trace([1]))
        assert result.wrong_answer

    def test_unknown_golden_output_ignored(self):
        result = compare_traces(self._trace([0]),
                                self._trace([logic.UNKNOWN]))
        assert not result.wrong_answer

    def test_skip_cycles(self):
        result = compare_traces(self._trace([1, 1]), self._trace([0, 1]),
                                skip_cycles=1)
        assert not result.wrong_answer

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compare_traces(self._trace([0]), self._trace([0, 1]))

    def test_trace_matches_reference(self, tiny_fir, tiny_fir_compiled):
        from repro.rtl import fir_reference

        _netlist, spec, _top, _components = tiny_fir
        samples = random_samples(8, spec.data_width, seed=2)
        trace = Simulator(tiny_fir_compiled).run(stimulus_from_samples(samples))
        assert trace_matches_reference(trace, "DOUT",
                                       fir_reference(spec, samples))


class TestVectors:
    def test_random_samples_deterministic_and_in_range(self):
        first = random_samples(50, 6, seed=3)
        second = random_samples(50, 6, seed=3)
        assert first == second
        assert all(value in signed_range(6) for value in first)

    def test_impulse_and_step(self):
        assert impulse(4, 4) == [7, 0, 0, 0]
        assert step(4, 4, position=2) == [0, 0, 7, 7]

    def test_alternating_covers_extremes(self):
        samples = alternating(4, 5)
        assert samples == [15, -16, 15, -16]

    def test_stimulus_wrappers(self):
        plain = stimulus_from_samples([1, 2], port="DIN")
        assert plain == [{"DIN": 1}, {"DIN": 2}]
        tmr = tmr_stimulus_from_samples([3], port="DIN")
        assert tmr == [{"DIN_tr0": 3, "DIN_tr1": 3, "DIN_tr2": 3}]

    def test_campaign_workload_starts_with_impulse(self):
        workload = campaign_workload(6, 5)
        assert workload[0] == 31
        assert len(workload) == 5
        with pytest.raises(ValueError):
            campaign_workload(6, 0)
