"""Experiment driver for Table 2: area, bitstream composition, performance.

Running ``python -m repro.experiments.table2 --scale fast`` builds the five
filter versions, implements each on its device profile and prints the
Table 2 analogue next to the paper's reference numbers.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Dict, Optional, Sequence

from ..analysis import (area_overhead, format_resource_table,
                        performance_degradation, resource_table)
from ..pnr import Implementation
from ..pnr.artifacts import StoreLike
from .designs import (DESIGN_ORDER, PAPER_TABLE2_FMAX, PAPER_TABLE2_SLICES,
                      DesignSuite, build_design_suite, implement_design_suite)


def add_flow_arguments(parser: argparse.ArgumentParser) -> None:
    """The implementation-flow knobs shared by every experiment CLI."""
    parser.add_argument(
        "--flow-cache", metavar="DIR",
        default=os.environ.get("REPRO_FLOW_CACHE"),
        help="persistent flow-artifact directory; place-and-route results "
             "are stored there and reused by later runs (default: the "
             "REPRO_FLOW_CACHE environment variable, else disabled)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="implement the suite designs in N parallel worker processes "
             "(default: 1)")


def run_table2(suite: Optional[DesignSuite] = None,
               implementations: Optional[Dict[str, Implementation]] = None,
               scale: str = "fast", jobs: int = 1,
               flow_cache: StoreLike = None) -> Dict[str, Dict[str, object]]:
    """Compute the Table 2 analogue; returns one dict per design."""
    if suite is None:
        suite = build_design_suite(scale)
    if implementations is None:
        implementations = implement_design_suite(suite, jobs=jobs,
                                                 artifact_store=flow_cache)
    rows = resource_table(implementations, order=DESIGN_ORDER)
    overhead = area_overhead(rows, "standard")
    slowdown = performance_degradation(rows, "standard")
    result: Dict[str, Dict[str, object]] = {}
    for row in rows:
        entry = row.as_dict()
        entry["area_overhead_vs_standard"] = round(overhead[row.design], 2)
        entry["relative_fmax_vs_standard"] = round(slowdown[row.design], 2)
        entry["paper_slices"] = PAPER_TABLE2_SLICES.get(row.design)
        entry["paper_fmax_mhz"] = PAPER_TABLE2_FMAX.get(row.design)
        result[row.design] = entry
    return result


def format_report(table: Dict[str, Dict[str, object]]) -> str:
    from ..faults.report import format_table

    rows = []
    for name in DESIGN_ORDER:
        if name not in table:
            continue
        entry = table[name]
        rows.append([
            name, entry["slices"], entry["routing_bits"], entry["lut_bits"],
            entry["ff_bits"], f"{entry['routing_fraction'] * 100:.1f}%",
            f"{entry['fmax_mhz']:.0f}",
            f"x{entry['area_overhead_vs_standard']:.2f}",
            entry["paper_slices"] if entry["paper_slices"] else "-",
            f"{entry['paper_fmax_mhz']:.0f}" if entry["paper_fmax_mhz"]
            else "-",
        ])
    return format_table(
        ["Design", "Slices", "Routing bits", "LUT bits", "FF bits",
         "Routing share", "Fmax (MHz)", "Area vs std",
         "Paper slices", "Paper Fmax"],
        rows, "Table 2 — resources and performance (measured vs paper)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="fast",
                        choices=("paper", "fast", "smoke"),
                        help="experiment scale (default: fast)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of a table")
    add_flow_arguments(parser)
    arguments = parser.parse_args(argv)

    table = run_table2(scale=arguments.scale, jobs=arguments.jobs,
                       flow_cache=arguments.flow_cache)
    if arguments.json:
        print(json.dumps(table, indent=2))
    else:
        print(format_report(table))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
