"""Resource and bitstream-composition reports (the paper's Table 2).

For every implemented design version the report collects the slice count,
the configuration-bit composition (routing / LUT / CLB flip-flop bits) and
the estimated performance, which is exactly the comparison the paper uses to
argue that the medium partition is also efficient in area and speed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence

from ..pnr.flow import Implementation


@dataclasses.dataclass
class ResourceRow:
    """One row of the Table 2 analogue."""

    design: str
    slices: int
    luts: int
    flip_flops: int
    routing_bits: int
    lut_bits: int
    ff_bits: int
    fmax_mhz: float

    @property
    def total_bits(self) -> int:
        return self.routing_bits + self.lut_bits + self.ff_bits

    @property
    def routing_fraction(self) -> float:
        total = self.total_bits
        return self.routing_bits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "design": self.design,
            "slices": self.slices,
            "luts": self.luts,
            "flip_flops": self.flip_flops,
            "routing_bits": self.routing_bits,
            "lut_bits": self.lut_bits,
            "ff_bits": self.ff_bits,
            "total_bits": self.total_bits,
            "routing_fraction": round(self.routing_fraction, 3),
            "fmax_mhz": round(self.fmax_mhz, 1),
        }


def resource_row(name: str, implementation: Implementation) -> ResourceRow:
    """Extract the Table 2 row of one implementation."""
    stats = implementation.resources.stats
    return ResourceRow(
        design=name,
        slices=implementation.slice_count,
        luts=implementation.packing.num_luts,
        flip_flops=implementation.packing.num_ffs,
        routing_bits=stats.routing_bits,
        lut_bits=stats.lut_bits,
        ff_bits=stats.ff_bits,
        fmax_mhz=implementation.timing.fmax_mhz,
    )


def resource_table(implementations: Mapping[str, Implementation],
                   order: Optional[Sequence[str]] = None) -> List[ResourceRow]:
    """Table 2 analogue for a set of design versions."""
    names = list(order) if order is not None else list(implementations)
    return [resource_row(name, implementations[name]) for name in names]


def area_overhead(rows: Sequence[ResourceRow],
                  baseline: str) -> Dict[str, float]:
    """Slice overhead of every version relative to the unprotected baseline."""
    by_name = {row.design: row for row in rows}
    if baseline not in by_name:
        raise KeyError(f"baseline design {baseline!r} not in the table")
    base = by_name[baseline].slices or 1
    return {row.design: row.slices / base for row in rows}


def performance_degradation(rows: Sequence[ResourceRow],
                            baseline: str) -> Dict[str, float]:
    """Relative Fmax of every version versus the unprotected baseline."""
    by_name = {row.design: row for row in rows}
    if baseline not in by_name:
        raise KeyError(f"baseline design {baseline!r} not in the table")
    base = by_name[baseline].fmax_mhz or 1.0
    return {row.design: row.fmax_mhz / base for row in rows}


def format_resource_table(rows: Sequence[ResourceRow]) -> str:
    """Plain-text rendering in the paper's layout."""
    from ..faults.report import format_table

    table_rows = []
    for row in rows:
        table_rows.append([
            row.design, row.slices, row.routing_bits, row.lut_bits,
            row.ff_bits, f"{row.routing_fraction * 100:.1f}%",
            f"{row.fmax_mhz:.0f} MHz",
        ])
    return format_table(
        ["Filter Design", "Area (# slices)", "#routing bits", "#LUTs bits",
         "#CLB ffs bits", "routing share", "Estimated Performance"],
        table_rows,
        "Table 2 — Comparison between TMR partitioned designs")
