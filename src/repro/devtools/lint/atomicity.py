"""A-series checkers: atomic-write discipline.

Tier entries, flow artifacts and the job journal survive crashes
because every durable write stages through a temp file and
``os.replace`` (plus ``fsync`` for the WAL).  A direct
``open(path, "w")`` or ``pickle.dump`` onto a final path can be torn
mid-write, leaving the corrupt-entry eviction heuristics as the only
defence.  These rules flag raw writes whose enclosing function never
calls ``os.replace`` — the signature of the atomic pattern.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from .context import ModuleContext
from .model import Finding, LintConfig, RULES

_WRITABLE_MODE_CHARS = ("w", "a", "x", "+")


def _finding(ctx: ModuleContext, rule: str, node: ast.AST,
             message: str) -> Finding:
    return Finding(rule=rule, path=ctx.rel_path, line=node.lineno,
                   col=node.col_offset, scope=ctx.qualname(node),
                   message=message, hint=RULES[rule].hint)


def _open_mode(node: ast.Call) -> Optional[str]:
    """The literal mode string of an ``open`` call, if it has one."""
    mode: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _atomic_scopes(ctx: ModuleContext) -> Set[Optional[ast.AST]]:
    """Functions (or the module) that call ``os.replace`` somewhere.

    A raw write inside such a scope is the staging half of the atomic
    temp-file + rename pattern, not a bypass.
    """
    scopes: Set[Optional[ast.AST]] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) \
                and ctx.dotted(node.func) == "os.replace":
            scopes.add(ctx.enclosing_function(node))
    return scopes


def check_atomicity(ctx: ModuleContext,
                    config: LintConfig) -> List[Finding]:
    findings: List[Finding] = []
    atomic = _atomic_scopes(ctx)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = ctx.dotted(node.func)
        if dotted == "open" and config.enabled("A301"):
            mode = _open_mode(node)
            if mode is not None and any(
                    char in mode for char in _WRITABLE_MODE_CHARS):
                if ctx.enclosing_function(node) not in atomic:
                    findings.append(_finding(
                        ctx, "A301", node,
                        f"open(..., {mode!r}) writes in place without "
                        "the temp-file + os.replace pattern"))
        elif dotted == "pickle.dump" and config.enabled("A302"):
            if ctx.enclosing_function(node) not in atomic:
                findings.append(_finding(
                    ctx, "A302", node,
                    "pickle.dump straight onto a final path; an "
                    "interrupted write leaves a corrupt entry"))
    return findings
