"""Reference (seed) implementations of the P&R hot paths.

The production router (:mod:`repro.pnr.route`), annealer
(:mod:`repro.pnr.place`) and bit-statistics pass (:mod:`repro.fpga.bitgen`)
were rewritten onto a precomputed integer-indexed routing graph for speed.
This module keeps byte-for-byte ports of the original tuple-based
algorithms so that

* the golden-equivalence tests can assert the fast flow still produces
  **bit-identical** placements, route trees and bit statistics, and
* the flow benchmark (``benchmarks/test_flow.py``) can measure the fast
  flow against the true seed baseline on the same machine.

Nothing in the production flow imports this module; it exists purely as a
semantic anchor.  Do not "optimize" it — its value is that it stays slow
and obviously equivalent to the seed.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..fpga.bitgen import LutSite, FlipFlopSite
from ..fpga.config import BitstreamStats, ConfigLayout
from ..fpga.device import Device
from ..fpga.routing import Node, downhill, node_tile, pips_into_tile
from ..netlist.ir import Definition
from .pack import PackResult
from .route import (NetRequest, RouteTree, RoutingError, RoutingResult,
                    SinkSpec, extract_routing_problem)
from .place import Placement


# ----------------------------------------------------------------------
# Seed router: tuple-keyed PathFinder with a per-instance downhill cache
# ----------------------------------------------------------------------
class ReferenceRouter:
    """The seed negotiated-congestion router, verbatim."""

    def __init__(self, device: Device, max_iterations: int = 12,
                 present_factor: float = 0.5,
                 present_growth: float = 1.8,
                 history_increment: float = 1.0,
                 allow_overuse: bool = False,
                 heuristic_weight: float = 1.3,
                 bounding_box_margin: int = 3) -> None:
        self.device = device
        self.max_iterations = max_iterations
        self.present_factor = present_factor
        self.present_growth = present_growth
        self.history_increment = history_increment
        self.allow_overuse = allow_overuse
        self.heuristic_weight = heuristic_weight
        self.bounding_box_margin = bounding_box_margin
        self._downhill_cache: Dict[Node, List[Node]] = {}
        self._extra_margin = 0

    def _downhill(self, node: Node) -> List[Node]:
        cached = self._downhill_cache.get(node)
        if cached is None:
            cached = downhill(self.device, node)
            self._downhill_cache[node] = cached
        return cached

    def route(self, requests: Sequence[NetRequest]) -> Tuple[
            Dict[str, RouteTree], int]:
        occupancy: Dict[Node, int] = {}
        history: Dict[Node, float] = {}
        trees: Dict[str, RouteTree] = {}
        present_factor = self.present_factor

        order = sorted(requests, key=lambda r: (len(r.sinks), r.name))
        to_route = list(order)
        iteration = 0
        while iteration < self.max_iterations:
            iteration += 1
            self._extra_margin = 2 * (iteration - 1)
            for request in to_route:
                existing = trees.pop(request.name, None)
                if existing is not None:
                    self._release(existing, occupancy)
                tree = self._route_net(request, occupancy, history,
                                       present_factor)
                trees[request.name] = tree
                self._claim(tree, occupancy)

            overused = {node for node, count in occupancy.items()
                        if count > 1 and node[0] == "wire"}
            if not overused:
                return trees, iteration
            for node in overused:
                history[node] = history.get(node, 0.0) + \
                    self.history_increment
            present_factor *= self.present_growth
            to_route = [request for request in order
                        if trees[request.name].nodes() & overused]

        if not self.allow_overuse:
            overused = {node for node, count in occupancy.items()
                        if count > 1 and node[0] == "wire"}
            raise RoutingError(
                f"router failed to resolve congestion after "
                f"{self.max_iterations} iterations; {len(overused)} wires "
                f"remain overused")
        return trees, iteration

    def _claim(self, tree: RouteTree, occupancy: Dict[Node, int]) -> None:
        for node in tree.nodes():
            occupancy[node] = occupancy.get(node, 0) + 1

    def _release(self, tree: RouteTree, occupancy: Dict[Node, int]) -> None:
        for node in tree.nodes():
            remaining = occupancy.get(node, 0) - 1
            if remaining <= 0:
                occupancy.pop(node, None)
            else:
                occupancy[node] = remaining

    def _route_net(self, request: NetRequest, occupancy: Dict[Node, int],
                   history: Dict[Node, float],
                   present_factor: float) -> RouteTree:
        device = self.device
        parent: Dict[Node, Node] = {}
        tree_nodes: Set[Node] = {request.source}
        sink_map: Dict[Node, SinkSpec] = {}

        source_tile = node_tile(device, request.source)
        ordered_sinks = sorted(
            request.sinks,
            key=lambda spec: device.manhattan(
                source_tile, node_tile(device, spec.node)))

        bounding_box = self._net_bounding_box(request)
        for spec in ordered_sinks:
            if spec.node in tree_nodes:
                sink_map[spec.node] = spec
                continue
            path = self._find_path(tree_nodes, spec.node, occupancy, history,
                                   present_factor, bounding_box)
            if path is None:
                path = self._find_path(tree_nodes, spec.node, occupancy,
                                       history, present_factor, None)
            if path is None:
                raise RoutingError(
                    f"no path from {request.source} to {spec.node} "
                    f"for net {request.name!r}")
            previous = path[0]
            for node in path[1:]:
                if node not in parent:
                    parent[node] = previous
                previous = node
                tree_nodes.add(node)
            sink_map[spec.node] = spec

        return RouteTree(request.name, request.source, parent, sink_map)

    def _net_bounding_box(self, request: NetRequest
                          ) -> Tuple[int, int, int, int]:
        device = self.device
        tiles = [node_tile(device, request.source)]
        tiles.extend(node_tile(device, spec.node) for spec in request.sinks)
        margin = self.bounding_box_margin + self._extra_margin
        min_x = max(0, min(t[0] for t in tiles) - margin)
        min_y = max(0, min(t[1] for t in tiles) - margin)
        max_x = min(device.columns - 1, max(t[0] for t in tiles) + margin)
        max_y = min(device.rows - 1, max(t[1] for t in tiles) + margin)
        return (min_x, min_y, max_x, max_y)

    def _find_path(self, tree_nodes: Set[Node], target: Node,
                   occupancy: Dict[Node, int], history: Dict[Node, float],
                   present_factor: float,
                   bounding_box: Optional[Tuple[int, int, int, int]]
                   ) -> Optional[List[Node]]:
        device = self.device
        target_tile = node_tile(device, target)
        weight = self.heuristic_weight

        def heuristic(node: Node) -> float:
            return weight * device.manhattan(node_tile(device, node),
                                             target_tile)

        came_from: Dict[Node, Optional[Node]] = {}
        best_cost: Dict[Node, float] = {}
        frontier: List[Tuple[float, float, int, Node]] = []
        counter = 0
        for node in sorted(tree_nodes):
            came_from[node] = None
            best_cost[node] = 0.0
            heapq.heappush(frontier, (heuristic(node), 0.0, counter, node))
            counter += 1

        target_x, target_y = target_tile
        infinity = float("inf")
        heappush = heapq.heappush
        heappop = heapq.heappop
        occupancy_get = occupancy.get
        history_get = history.get
        best_get = best_cost.get

        while frontier:
            _, cost_so_far, _, node = heappop(frontier)
            if cost_so_far > best_get(node, infinity):
                continue
            if node == target:
                path = [node]
                current = node
                while came_from[current] is not None:
                    current = came_from[current]
                    path.append(current)
                path.reverse()
                return path
            for neighbor in self._downhill(node):
                kind = neighbor[0]
                if kind in ("ipin", "pad_i") and neighbor != target:
                    continue
                if bounding_box is not None and kind == "wire":
                    if not (bounding_box[0] <= neighbor[1] <= bounding_box[2]
                            and bounding_box[1] <= neighbor[2]
                            <= bounding_box[3]):
                        continue
                step = 1.0 + history_get(neighbor, 0.0)
                usage = occupancy_get(neighbor, 0)
                if usage:
                    if kind == "wire":
                        step += present_factor * usage
                    else:
                        step += 1000.0
                new_cost = cost_so_far + step
                if new_cost < best_get(neighbor, infinity):
                    best_cost[neighbor] = new_cost
                    came_from[neighbor] = node
                    counter += 1
                    if kind == "pad_i":
                        estimate = 0.0
                    else:
                        estimate = weight * (abs(neighbor[1] - target_x)
                                             + abs(neighbor[2] - target_y))
                    heappush(frontier, (new_cost + estimate, new_cost,
                                        counter, neighbor))
        return None


def reference_route_design(definition: Definition, pack_result: PackResult,
                           placement: Placement, device: Device,
                           max_iterations: int = 12,
                           allow_overuse: bool = False) -> RoutingResult:
    """The seed ``route_design``: extraction plus the tuple-keyed router."""
    requests, skipped, direct = extract_routing_problem(
        definition, pack_result, placement)
    router = ReferenceRouter(device, max_iterations=max_iterations,
                             allow_overuse=allow_overuse)
    trees, iterations = router.route(requests)

    node_owner: Dict[Node, str] = {}
    pip_owner: Dict[Tuple[Node, Node], str] = {}
    wirelength = 0
    for name, tree in trees.items():
        for node in sorted(tree.nodes()):
            node_owner[node] = name
            if node[0] == "wire":
                wirelength += 1
        for pip in sorted(tree.pips()):
            pip_owner[pip] = name

    return RoutingResult(
        routes=trees,
        skipped=skipped,
        direct=direct,
        node_owner=node_owner,
        pip_owner=pip_owner,
        iterations=iterations,
        total_wirelength=wirelength,
    )


# ----------------------------------------------------------------------
# Seed annealer: swap, recompute affected nets, maybe swap back
# ----------------------------------------------------------------------
def reference_anneal(definition: Definition, pack_result: PackResult,
                     device: Device, slice_tiles: List[Tuple[int, int]],
                     cell_tiles: Dict[str, Tuple[int, int]],
                     endpoints: List[List[str]], rng: random.Random,
                     moves: int) -> int:
    """The seed ``_anneal``: pairwise-swap annealing over cell-name nets."""
    cell_slice: Dict[str, int] = {}
    for slice_index, assignment in enumerate(pack_result.slices):
        for cell in assignment.cells.values():
            cell_slice[cell] = slice_index
    nets_of_slice: Dict[int, List[int]] = {}
    for net_index, cells in enumerate(endpoints):
        for cell in cells:
            nets_of_slice.setdefault(cell_slice[cell], []).append(net_index)

    def net_length(net_index: int) -> int:
        cells = endpoints[net_index]
        xs = [cell_tiles[c][0] for c in cells]
        ys = [cell_tiles[c][1] for c in cells]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def swap(a: int, b: int) -> None:
        slice_tiles[a], slice_tiles[b] = slice_tiles[b], slice_tiles[a]
        for cell in pack_result.slices[a].cells.values():
            cell_tiles[cell] = slice_tiles[a]
        for cell in pack_result.slices[b].cells.values():
            cell_tiles[cell] = slice_tiles[b]

    current = sum(net_length(i) for i in range(len(endpoints)))
    num_slices = len(slice_tiles)
    temperature = max(2.0, current / max(1, len(endpoints)) * 0.5)

    for move in range(moves):
        a = rng.randrange(num_slices)
        b = rng.randrange(num_slices)
        if a == b:
            continue
        affected = set(nets_of_slice.get(a, ())) | set(nets_of_slice.get(b, ()))
        before = sum(net_length(i) for i in affected)
        swap(a, b)
        after = sum(net_length(i) for i in affected)
        delta = after - before
        if delta <= 0 or rng.random() < pow(2.718281828, -delta / temperature):
            current += delta
        else:
            swap(a, b)
        if move and move % max(1, moves // 10) == 0:
            temperature = max(temperature * 0.7, 0.05)
    return current


def reference_place(definition: Definition, pack_result: PackResult,
                    device: Device, seed: int = 1,
                    anneal_moves_per_slice: int = 0,
                    target_utilization: float = 0.55) -> Placement:
    """The seed ``place`` (no floorplan): constructive fill plus the
    swap-and-recompute annealer above."""
    from .place import (_assign_pads, _build_net_endpoints, _serpentine_tiles,
                        _wirelength)

    num_slices = pack_result.num_slices
    if num_slices > device.spec.num_tiles:
        raise ValueError(
            f"design needs {num_slices} slices but {device.spec.name} has "
            f"only {device.spec.num_tiles}")

    rng = random.Random(seed)
    slice_tiles: List[Optional[Tuple[int, int]]] = [None] * num_slices

    spread_tiles = min(device.spec.num_tiles,
                       max(num_slices,
                           int(num_slices / max(target_utilization, 0.05))))
    columns_needed = min(device.columns,
                         max(1, -(-spread_tiles // device.rows)))
    first_column = max(0, (device.columns - columns_needed) // 2)
    ordered_tiles = _serpentine_tiles(
        device, range(first_column, first_column + columns_needed))
    if num_slices > 0:
        stride = len(ordered_tiles) / num_slices
        used_positions = set()
        for index in range(num_slices):
            position = min(int(index * stride), len(ordered_tiles) - 1)
            while position in used_positions:
                position += 1
            used_positions.add(position)
            slice_tiles[index] = ordered_tiles[position]

    cell_tiles: Dict[str, Tuple[int, int]] = {}
    for slice_index, tile in enumerate(slice_tiles):
        for cell_name in pack_result.slices[slice_index].cells.values():
            cell_tiles[cell_name] = tile

    endpoints = _build_net_endpoints(definition, pack_result)
    wirelength = _wirelength(endpoints, cell_tiles)

    if anneal_moves_per_slice > 0 and num_slices > 2:
        wirelength = reference_anneal(definition, pack_result, device,
                                      slice_tiles, cell_tiles, endpoints,
                                      rng, anneal_moves_per_slice
                                      * num_slices)

    port_pads = _assign_pads(definition, device)

    return Placement(
        device=device,
        slice_tiles=[tile for tile in slice_tiles],
        port_pads=port_pads,
        cell_tiles=cell_tiles,
        wirelength=wirelength,
    )


# ----------------------------------------------------------------------
# Seed bit statistics: re-enumerate the PIPs of every touched tile
# ----------------------------------------------------------------------
def reference_bit_stats(device: Device, layout: ConfigLayout,
                        lut_sites: List[LutSite],
                        ff_sites: List[FlipFlopSite],
                        used_slices: List[Tuple[int, int]],
                        routing: RoutingResult) -> BitstreamStats:
    """The seed ``compute_design_bit_stats``: linear PIP scans per node."""
    from ..fpga.config import LUT_BITS

    lut_bits = LUT_BITS * len(lut_sites)
    ff_bits = 0
    for _site in ff_sites:
        ff_bits += 4
    ff_bits += len(used_slices)

    used_destinations = {node for node in routing.node_owner
                         if node[0] in ("wire", "ipin", "pad_i")}
    routing_bits = 0
    counted_tiles: Dict[Tuple[int, int], List] = {}
    for node in used_destinations:
        tile = node_tile(device, node)
        if tile not in counted_tiles:
            counted_tiles[tile] = pips_into_tile(device, *tile)
        routing_bits += sum(1 for pip in counted_tiles[tile]
                            if pip[1] == node)

    return BitstreamStats(routing_bits=routing_bits, lut_bits=lut_bits,
                          ff_bits=ff_bits)
