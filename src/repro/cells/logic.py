"""Three-valued (0 / 1 / X) logic used throughout simulation.

Values are plain integers: ``ZERO = 0``, ``ONE = 1`` and ``UNKNOWN = 2``.
Keeping them as small ints keeps the levelized simulator fast and lets fault
effects (floating inputs, driver conflicts) propagate pessimistically as X.
"""

from __future__ import annotations

from typing import List, Sequence

ZERO = 0
ONE = 1
UNKNOWN = 2

VALUES = (ZERO, ONE, UNKNOWN)

_CHAR = {ZERO: "0", ONE: "1", UNKNOWN: "X"}
_FROM_CHAR = {"0": ZERO, "1": ONE, "x": UNKNOWN, "X": UNKNOWN}


def to_char(value: int) -> str:
    """Render a logic value as ``0``/``1``/``X``."""
    return _CHAR[value]


def from_char(char: str) -> int:
    """Parse ``0``/``1``/``x``/``X`` into a logic value."""
    try:
        return _FROM_CHAR[char]
    except KeyError:
        raise ValueError(f"not a logic value character: {char!r}") from None


def is_known(value: int) -> bool:
    """True for 0/1, False for X (equality alone covers the identity case)."""
    return value != UNKNOWN


def not_(a: int) -> int:
    if a == UNKNOWN:
        return UNKNOWN
    return ONE - a


def and_(a: int, b: int) -> int:
    if a == ZERO or b == ZERO:
        return ZERO
    if a == ONE and b == ONE:
        return ONE
    return UNKNOWN


def or_(a: int, b: int) -> int:
    if a == ONE or b == ONE:
        return ONE
    if a == ZERO and b == ZERO:
        return ZERO
    return UNKNOWN


def xor_(a: int, b: int) -> int:
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    return a ^ b


def mux(select: int, if_zero: int, if_one: int) -> int:
    """Two-input multiplexer with X-pessimism on the select."""
    if select == ZERO:
        return if_zero
    if select == ONE:
        return if_one
    if if_zero == if_one:
        return if_zero
    return UNKNOWN


def majority(a: int, b: int, c: int) -> int:
    """Majority of three values; this is the TMR voter function.

    The vote is resolved whenever two inputs agree on a known value, even if
    the third is unknown — which is exactly why TMR masks a single corrupted
    domain.
    """
    if a == b and a != UNKNOWN:
        return a
    if a == c and a != UNKNOWN:
        return a
    if b == c and b != UNKNOWN:
        return b
    return UNKNOWN


def resolve_drivers(values: Sequence[int]) -> int:
    """Resolve several drivers shorted onto one node.

    No driver yields X (floating); one driver passes through; agreeing
    drivers keep their value; disagreeing or unknown drivers yield X.  This
    models the electrical conflict created by a *Bridge*/*Conflict* routing
    upset pessimistically.
    """
    if not values:
        return UNKNOWN
    first = values[0]
    for value in values[1:]:
        if value != first:
            return UNKNOWN
    return first


def lut_eval(init: int, inputs: Sequence[int], num_inputs: int) -> int:
    """Evaluate a LUT with the given INIT bit vector.

    ``init`` is interpreted the Xilinx way: bit ``i`` of INIT is the output
    when the inputs (I0 = LSB of the address) encode ``i``.  Unknown inputs
    cause both possible addresses to be explored; if all reachable entries
    agree the output is still known.
    """
    if len(inputs) != num_inputs:
        raise ValueError(
            f"LUT{num_inputs} expects {num_inputs} inputs, got {len(inputs)}")

    unknown_positions = [i for i, v in enumerate(inputs) if v == UNKNOWN]
    if not unknown_positions:
        address = 0
        for position, value in enumerate(inputs):
            address |= (value & 1) << position
        return (init >> address) & 1

    # Enumerate the possible addresses induced by unknown inputs.  With at
    # most 4 inputs this enumerates at most 16 entries.
    base_address = 0
    for position, value in enumerate(inputs):
        if value == ONE:
            base_address |= 1 << position
    seen = None
    for combo in range(1 << len(unknown_positions)):
        address = base_address
        for bit, position in enumerate(unknown_positions):
            if (combo >> bit) & 1:
                address |= 1 << position
        entry = (init >> address) & 1
        if seen is None:
            seen = entry
        elif seen != entry:
            return UNKNOWN
    return seen if seen is not None else UNKNOWN


def bits_to_int(bits: Sequence[int]) -> int:
    """Convert a LSB-first sequence of known logic values to an integer.

    Raises ``ValueError`` if any bit is unknown.
    """
    value = 0
    for position, bit in enumerate(bits):
        if bit == UNKNOWN:
            raise ValueError("cannot convert unknown bit to integer")
        value |= (bit & 1) << position
    return value


def int_to_bits(value: int, width: int) -> List[int]:
    """Convert an integer to a LSB-first list of logic values."""
    if value < 0:
        value &= (1 << width) - 1
    return [(value >> i) & 1 for i in range(width)]


def word_to_string(bits: Sequence[int]) -> str:
    """Render a bus value MSB-first, e.g. ``01X1``."""
    return "".join(to_char(b) for b in reversed(list(bits)))
