"""Tests of the campaign service: queue, tier, orchestrator, HTTP, seeds.

The heavy campaign content is covered by the engine/pipeline suites; here
every scenario run uses the ``tiny`` scale so the service's *semantics* —
lifecycle, in-flight coalescing, tier persistence, failure surfacing,
report identity with a direct ``run_scenario`` call — are exercised end
to end in seconds.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time

import pytest

from repro import pipeline
from repro.faults import (CampaignConfig, CampaignWorkerError,
                          ShardedBackend, clear_cache, derive_seed,
                          run_campaign, split_shards, substream)
from repro.faults.fault_list import FaultList
from repro.pipeline import stable_report
from repro.scenarios import run_scenario, scenario_by_name
from repro.service import (CampaignService, JobQueue, JobSpec, JobState,
                           SharedCacheTier, activate_tier, active_tier,
                           deactivate_tier, job_fingerprint)
from repro.service.httpd import (fetch_job, fetch_report, fetch_stats,
                                 make_server, submit_job, wait_for_job)
from repro.service.tier import TIER_VERSION, PersistentStore


@pytest.fixture(autouse=True)
def no_ambient_tier():
    """Every test starts and ends without a process-wide tier."""
    deactivate_tier()
    yield
    deactivate_tier()


def tiny_spec(**overrides) -> JobSpec:
    defaults = dict(scale="tiny", num_faults=30, designs=("standard",))
    defaults.update(overrides)
    return JobSpec("table3-fir", **defaults)


def _die_in_worker(shard_index, shard):
    # Module-level so the executor can pickle it by reference; a test-local
    # closure would fail to serialize instead of exercising the crash path.
    os._exit(13)


# ----------------------------------------------------------------------
# Seed derivation (the sharded-worker reproducibility contract)
# ----------------------------------------------------------------------
class TestSeeds:
    def test_derive_seed_is_stable(self):
        # Pinned values: changing the derivation silently re-randomizes
        # every recorded oversampled draw (treat like a tool-version bump).
        assert derive_seed(2005, "oversample") == 8090250657571724634
        assert derive_seed(7, "shard", 3) == 241020708290790905

    def test_derive_seed_pure_and_distinct(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")
        # Labeled substreams never track the raw seed.
        assert derive_seed(1, "a") != 1

    def test_substream_independent_of_raw_stream(self):
        import random

        raw = random.Random(5)
        labeled = substream(5, "oversample")
        assert [raw.random() for _ in range(4)] != \
            [labeled.random() for _ in range(4)]

    @pytest.mark.parametrize("count,shards", [
        (0, 1), (1, 1), (5, 2), (10, 3), (10, 10), (3, 8), (100, 7)])
    def test_split_shards_cover_and_disjoint(self, count, shards):
        ranges = split_shards(count, shards)
        flattened = [i for start, stop in ranges for i in range(start, stop)]
        assert flattened == list(range(count))
        sizes = [stop - start for start, stop in ranges]
        if count:
            assert max(sizes) - min(sizes) <= 1

    def test_split_shards_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            split_shards(10, 0)

    def test_oversample_reproducible_and_covering(self):
        fault_list = FaultList(mode="design", bits=list(range(10, 20)),
                               composition={"lut": 10})
        draw = fault_list.sample(25, seed=42)
        again = fault_list.sample(25, seed=42)
        assert draw == again
        # The whole population appears once before the replacement tail.
        assert draw[:10] == fault_list.bits
        assert set(draw[10:]) <= set(fault_list.bits)
        # The tail rides a labeled substream, not the raw seed.
        assert fault_list.sample(25, seed=43) != draw
        # Below the population size the draw matches the seed semantics.
        import random

        assert fault_list.sample(4, seed=42) == \
            random.Random(42).sample(fault_list.bits, 4)


# ----------------------------------------------------------------------
# The persistent tier
# ----------------------------------------------------------------------
class TestSharedCacheTier:
    def test_golden_and_defeat_map_and_fault_list_round_trip(self, tmp_path):
        tier = SharedCacheTier(tmp_path)
        key = (("i", (1, 2)),)
        assert tier.load_golden("fp", key) is None
        assert tier.store_golden("fp", key, {"trace": 1}, {"program": 2})
        assert tier.load_golden("fp", key) == ({"trace": 1}, {"program": 2})

        assert tier.load_defeat_map("fp", "design") is None
        assert tier.store_defeat_map("fp", "design", {"map": 3})
        assert tier.load_defeat_map("fp", "design") == {"map": 3}

        assert tier.load_fault_list("fp", "design") is None
        fault_list = FaultList(mode="design", bits=[4, 5],
                               composition={"lut": 2})
        assert tier.store_fault_list("fp", "design", fault_list)
        assert tier.load_fault_list("fp", "design") == fault_list

        stats = tier.stats.as_dict()
        assert stats["golden_hits"] == stats["golden_misses"] == 1
        assert stats["defeat_map_stores"] == 1
        assert stats["fault_list_hits"] == 1
        assert tier.stats.hit_rate() == 0.5

    def test_reload_from_second_store_instance(self, tmp_path):
        SharedCacheTier(tmp_path).store_defeat_map("fp", "design", [1, 2])
        assert SharedCacheTier(tmp_path).load_defeat_map(
            "fp", "design") == [1, 2]

    def test_corrupt_entry_evicted_as_miss(self, tmp_path):
        tier = SharedCacheTier(tmp_path)
        tier.store_golden("fp", ("k",), "trace", "program")
        path = tier._store.path_of("golden", tier.golden_key("fp", ("k",)))
        path.write_bytes(b"not a pickle")
        assert tier.load_golden("fp", ("k",)) is None
        assert not path.exists()
        assert tier.stats.corrupt_evictions == 1

    def test_version_mismatch_evicted_as_miss(self, tmp_path, monkeypatch):
        store = PersistentStore(tmp_path)
        store.store("golden", "key", "payload")
        monkeypatch.setattr("repro.service.tier.TIER_VERSION",
                            TIER_VERSION + "-next")
        assert store.load("golden", "key") is None
        assert not store.path_of("golden", "key").exists()

    def test_foreign_key_evicted_as_miss(self, tmp_path):
        store = PersistentStore(tmp_path)
        store.store("golden", "key-a", "payload")
        source = store.path_of("golden", "key-a")
        target = store.path_of("golden", "ke-renamed")
        target.parent.mkdir(parents=True, exist_ok=True)
        source.rename(target)
        assert store.load("golden", "ke-renamed") is None
        assert not target.exists()

    def test_lru_eviction_spares_recently_used(self, tmp_path):
        tier = SharedCacheTier(tmp_path, max_bytes=10 ** 9)
        for index in range(3):
            tier.store_defeat_map("fp", f"mode{index}", b"x" * 2000)
        # Deterministic recency: mode0 oldest, mode2 newest.
        now = time.time()
        for index in range(3):
            path = tier._store.path_of(
                "defeat-map", tier.defeat_map_key("fp", f"mode{index}"))
            os.utime(path, (now - 100 + index, now - 100 + index))
        tier.max_bytes = 2 * tier.total_bytes() // 3
        assert tier.enforce_budget() >= 1
        assert tier.load_defeat_map("fp", "mode0") is None
        assert tier.load_defeat_map("fp", "mode2") is not None
        assert tier.stats.lru_evictions >= 1
        assert tier.stats.bytes_evicted > 0

    def test_load_refreshes_recency(self, tmp_path):
        tier = SharedCacheTier(tmp_path)
        tier.store_defeat_map("fp", "old-but-hot", [1])
        tier.store_defeat_map("fp", "cold", [2])
        now = time.time()
        for mode, age in (("old-but-hot", 200), ("cold", 100)):
            path = tier._store.path_of(
                "defeat-map", tier.defeat_map_key("fp", mode))
            os.utime(path, (now - age, now - age))
        assert tier.load_defeat_map("fp", "old-but-hot") is not None
        tier.max_bytes = tier.total_bytes() - 1
        tier.enforce_budget()
        # The refreshed entry survived; the untouched one was evicted.
        assert tier.load_defeat_map("fp", "old-but-hot") is not None
        assert tier.load_defeat_map("fp", "cold") is None

    def test_store_failure_is_silent(self, tmp_path, monkeypatch):
        tier = SharedCacheTier(tmp_path)
        monkeypatch.setattr(os, "replace",
                            lambda *a, **k: (_ for _ in ()).throw(
                                OSError("disk full")))
        assert not tier.store_defeat_map("fp", "design", [1])
        assert tier.stats.store_failures == 1

    def test_activate_and_deactivate(self, tmp_path):
        assert active_tier() is None
        tier = activate_tier(tmp_path)
        assert isinstance(tier, SharedCacheTier)
        assert active_tier() is tier
        deactivate_tier()
        assert active_tier() is None


class TestTierReadThrough:
    """The campaign cache serves fault lists and golden traces from the
    tier across a simulated process restart."""

    def test_campaign_artifacts_survive_restart(self, tmp_path,
                                                tiny_fir_implementation):
        config = CampaignConfig(num_faults=25, workload_cycles=6, seed=9)
        tier = SharedCacheTier(tmp_path)
        activate_tier(tier)

        clear_cache()
        first = run_campaign(tiny_fir_implementation, config,
                             backend="batch")
        assert tier.stats.fault_list_stores == 1
        assert tier.stats.golden_stores == 1

        clear_cache()  # the restart: only the tier survives
        second = run_campaign(tiny_fir_implementation, config,
                              backend="batch")
        assert tier.stats.fault_list_hits == 1
        assert tier.stats.golden_hits == 1
        assert second.wrong_answers == first.wrong_answers
        assert second.effect_table() == first.effect_table()

        # Without the tier the same restart recomputes from scratch and
        # must agree — the tier never changes results, only costs.
        deactivate_tier()
        clear_cache()
        fresh = run_campaign(tiny_fir_implementation, config,
                             backend="batch")
        assert fresh.wrong_answers == first.wrong_answers
        assert fresh.effect_table() == first.effect_table()


# ----------------------------------------------------------------------
# Job specs, fingerprints, queue
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown job spec fields"):
            JobSpec.from_dict({"scenario": "table3-fir", "bogus": 1})

    def test_from_dict_requires_scenario(self):
        with pytest.raises(ValueError, match="scenario"):
            JobSpec.from_dict({"scale": "tiny"})

    def test_round_trip_preserves_designs_tuple(self):
        spec = tiny_spec(designs=["standard", "TMR_p2"])
        assert spec.designs == ("standard", "TMR_p2")
        again = JobSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert again == spec

    def test_fingerprint_collapses_explicit_defaults(self):
        scenario = scenario_by_name("table3-fir")
        assert job_fingerprint(JobSpec("table3-fir")) == job_fingerprint(
            JobSpec("table3-fir", scale=scenario.scale,
                    seed=scenario.seed))

    def test_fingerprint_separates_real_differences(self):
        base = tiny_spec()
        assert job_fingerprint(base) != job_fingerprint(
            dataclasses.replace(base, seed=123))
        assert job_fingerprint(base) != job_fingerprint(
            dataclasses.replace(base, designs=("TMR_p2",)))

    def test_unknown_scenario_raises_at_fingerprint_time(self):
        with pytest.raises(KeyError):
            job_fingerprint(JobSpec("no-such-scenario"))


class TestJobQueue:
    def test_lifecycle(self):
        queue = JobQueue()
        job, created = queue.submit(tiny_spec())
        assert created and job.state == JobState.PENDING
        queue.mark_running(job)
        assert job.state == JobState.RUNNING
        queue.finish(job, {"ok": True})
        assert job.state == JobState.DONE
        assert job.report == {"ok": True}
        assert job.done_event.is_set()
        assert job.elapsed() is not None

    def test_in_flight_coalescing(self):
        queue = JobQueue()
        first, created_first = queue.submit(tiny_spec())
        second, created_second = queue.submit(tiny_spec())
        assert created_first and not created_second
        assert first is second
        assert first.submissions == 2
        assert queue.coalesced == 1
        third, created_third = queue.submit(tiny_spec(seed=99))
        assert created_third and third is not first

    def test_finished_jobs_do_not_absorb(self):
        queue = JobQueue()
        job, _created = queue.submit(tiny_spec())
        queue.finish(job, {})
        again, created = queue.submit(tiny_spec())
        assert created and again is not job

    def test_failed_job_records_error(self):
        queue = JobQueue()
        job, _created = queue.submit(tiny_spec())
        queue.fail(job, "boom")
        assert job.state == JobState.FAILED
        assert job.error == "boom"
        assert queue.stats()["by_state"][JobState.FAILED] == 1


# ----------------------------------------------------------------------
# The sharded execution backend
# ----------------------------------------------------------------------
class TestShardedBackend:
    CONFIG = CampaignConfig(num_faults=60, workload_cycles=6, seed=9)

    def test_matches_serial_with_real_workers(self,
                                              tiny_fir_implementation):
        serial = run_campaign(tiny_fir_implementation, self.CONFIG,
                              backend="serial")
        backend = ShardedBackend(workers=2, min_tasks=0)
        sharded = run_campaign(tiny_fir_implementation, self.CONFIG,
                               backend=backend)
        assert not backend.last_run_stats.get("inline")
        assert sharded.wrong_answers == serial.wrong_answers
        assert sharded.injected == serial.injected
        assert sharded.effect_table() == serial.effect_table()

    def test_small_campaigns_fall_back_inline(self,
                                              tiny_fir_implementation):
        backend = ShardedBackend(workers=2)  # default min_tasks=1000
        result = run_campaign(tiny_fir_implementation, self.CONFIG,
                              backend=backend)
        assert backend.last_run_stats["inline"]
        assert backend.name == "sharded:inline-fallback"
        serial = run_campaign(tiny_fir_implementation, self.CONFIG,
                              backend="serial")
        assert result.effect_table() == serial.effect_table()

    def test_killed_workers_self_heal_via_degradation(
            self, tiny_fir_implementation, monkeypatch):
        # Every worker dies hard on every shard; supervision must retry,
        # respawn the pool, exhaust the retry budget and degrade the
        # shards inline — the campaign completes with results identical
        # to serial, and the whole ordeal lands in last_run_stats.
        from repro.faults import engine

        monkeypatch.setattr(engine, "_run_task_shard", _die_in_worker)
        backend = ShardedBackend(workers=2, min_tasks=0,
                                 max_shard_retries=1, retry_backoff_s=0.01)
        sharded = run_campaign(tiny_fir_implementation, self.CONFIG,
                               backend=backend)
        stats = backend.last_run_stats
        assert stats["retries"] >= 1
        assert stats["degradations"]
        assert all(entry["to"].startswith("inline:")
                   for entry in stats["degradations"])
        serial = run_campaign(tiny_fir_implementation, self.CONFIG,
                              backend="serial")
        assert sharded.wrong_answers == serial.wrong_answers
        assert sharded.effect_table() == serial.effect_table()

    def test_exhausted_degradation_surfaces_not_hangs(
            self, tiny_fir_implementation, monkeypatch):
        # Only when workers die AND every inline fallback fails may the
        # campaign abort — and it must do so loudly, never hang.
        from repro.faults import engine

        def broken_inline(inner, context, shard):
            raise ValueError("inline evaluation broken too")

        monkeypatch.setattr(engine, "_run_task_shard", _die_in_worker)
        monkeypatch.setattr(engine, "_evaluate_shard_locally",
                            broken_inline)
        backend = ShardedBackend(workers=2, min_tasks=0,
                                 max_shard_retries=0, retry_backoff_s=0.01)
        with pytest.raises(CampaignWorkerError,
                           match="degradation fallback"):
            run_campaign(tiny_fir_implementation, self.CONFIG,
                         backend=backend)


# ----------------------------------------------------------------------
# The orchestrator
# ----------------------------------------------------------------------
class TestCampaignService:
    def test_job_runs_to_done_with_report(self, tmp_path):
        with CampaignService(tier=tmp_path / "tier") as service:
            job = service.run(tiny_spec(), timeout=300)
            assert job.state == JobState.DONE
            assert job.report["schema"] == "repro.scenario-report/1"
            assert job.report["backend"].startswith("sharded")
            assert "standard" in job.report["designs"]
            assert job.progress  # the monitor callback fed live progress
            json.dumps(job.snapshot())  # snapshots are JSON-safe

    def test_report_identical_to_direct_run_scenario(self, tmp_path):
        with CampaignService(tier=tmp_path / "tier") as service:
            job = service.run(tiny_spec(), timeout=300)
        deactivate_tier()
        direct = run_scenario("table3-fir", scale="tiny", num_faults=30,
                              designs=("standard",), backend="sharded")
        assert stable_report(job.report) == stable_report(direct)

    def test_in_flight_submissions_coalesce(self, tmp_path):
        # One slot + a blocker guarantees the identical pair is still
        # pending when the second submission lands.
        with CampaignService(tier=tmp_path / "tier",
                             max_parallel=1) as service:
            blocker = service.submit(tiny_spec(seed=7))
            first = service.submit(tiny_spec())
            second = service.submit(tiny_spec())
            assert first is second
            assert first.submissions == 2
            assert service.queue.coalesced == 1
            assert service.wait(timeout=300)
            assert blocker.state == first.state == JobState.DONE
            # Settled jobs never absorb: the same spec now starts fresh.
            fresh = service.submit(tiny_spec())
            assert fresh is not first
            assert fresh.wait(timeout=300)
            assert stable_report(fresh.report) == \
                stable_report(first.report)

    def test_failed_job_surfaces_error(self, tmp_path):
        with CampaignService(tier=tmp_path / "tier") as service:
            job = service.run(tiny_spec(designs=("no-such-design",)),
                              timeout=300)
            assert job.state == JobState.FAILED
            assert "no-such-design" in job.error

    def test_dead_sharded_worker_fails_job_without_hanging(
            self, tmp_path, monkeypatch):
        from repro.service import orchestrator

        def crash(*args, **kwargs):
            raise CampaignWorkerError(
                "a sharded campaign worker died after 0/30 verdicts")

        monkeypatch.setattr(orchestrator, "run_scenario", crash)
        with CampaignService(tier=tmp_path / "tier") as service:
            job = service.run(tiny_spec(), timeout=60)
            assert job.state == JobState.FAILED
            assert "worker died" in job.error

    def test_submit_requires_started_service(self):
        service = CampaignService()
        with pytest.raises(Exception, match="not running"):
            service.submit(tiny_spec())

    def test_stats_expose_queue_and_tier(self, tmp_path):
        with CampaignService(tier=tmp_path / "tier") as service:
            service.run(tiny_spec(), timeout=300)
            stats = service.stats()
            assert stats["queue"]["jobs"] == 1
            assert stats["default_backend"] == "sharded"
            assert "stats" in stats["tier"]


# ----------------------------------------------------------------------
# The HTTP surface
# ----------------------------------------------------------------------
class TestHttpApi:
    @pytest.fixture()
    def served(self, tmp_path):
        service = CampaignService(tier=tmp_path / "tier").start()
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield service, f"http://{host}:{port}"
        finally:
            server.shutdown()
            server.server_close()
            service.stop()

    def test_submit_wait_report_round_trip(self, served):
        service, url = served
        snapshot = submit_job(url, tiny_spec().as_dict())
        assert snapshot["state"] in (JobState.PENDING, JobState.RUNNING)
        assert snapshot["coalesced"] is False
        final = wait_for_job(url, snapshot["id"], timeout=300)
        assert final["state"] == JobState.DONE
        report = fetch_report(url, snapshot["id"])
        assert report == service.queue.get(snapshot["id"]).report
        stats = fetch_stats(url)
        assert stats["queue"]["jobs"] == 1
        listing = fetch_job(url, snapshot["id"])
        assert listing["id"] == snapshot["id"]

    def test_duplicate_submission_reports_coalesced(self, served):
        _service, url = served
        blocker = submit_job(url, tiny_spec(seed=7).as_dict())
        first = submit_job(url, tiny_spec().as_dict())
        second = submit_job(url, tiny_spec().as_dict())
        assert second["id"] == first["id"]
        assert second["coalesced"] is True
        assert second["submissions"] == 2
        for job_id in (blocker["id"], first["id"]):
            assert wait_for_job(url, job_id,
                                timeout=300)["state"] == JobState.DONE

    def test_bad_spec_is_rejected(self, served):
        _service, url = served
        with pytest.raises(RuntimeError, match="unknown job spec fields"):
            submit_job(url, {"scenario": "table3-fir", "bogus": 1})
        with pytest.raises(RuntimeError, match="unknown scenario"):
            submit_job(url, {"scenario": "no-such-scenario"})

    def test_unknown_job_is_404(self, served):
        _service, url = served
        with pytest.raises(RuntimeError, match="404"):
            fetch_job(url, "job-9999")
