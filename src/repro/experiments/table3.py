"""Experiment driver for Table 3: fault-injection campaign results.

``python -m repro.experiments.table3 --scale fast`` implements the five
filter versions, runs one bitstream fault-injection campaign per version and
prints the wrong-answer percentages next to the paper's, together with the
headline improvement factor of the medium partition over plain TMR.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Sequence

from ..analysis import best_partition, improvement_factor
from ..faults import CampaignConfig, CampaignResult, run_campaign, \
    table3_report
from ..faults.engine import BACKEND_CHOICES, BackendLike, resolve_backend
from ..pnr import Implementation
from ..pnr.artifacts import StoreLike
from .designs import (DESIGN_ORDER, PAPER_TABLE3_PERCENT, DesignSuite,
                      build_design_suite, implement_design_suite)
from .table2 import add_flow_arguments


def campaign_config_for(suite: DesignSuite,
                        num_faults: Optional[int] = None,
                        fault_list_mode: str = "design",
                        seed: int = 2005) -> CampaignConfig:
    return CampaignConfig(
        num_faults=num_faults if num_faults is not None
        else suite.scale.campaign_faults,
        workload_cycles=suite.scale.workload_cycles,
        fault_list_mode=fault_list_mode,
        seed=seed,
    )


def run_table3(suite: Optional[DesignSuite] = None,
               implementations: Optional[Dict[str, Implementation]] = None,
               scale: str = "fast", num_faults: Optional[int] = None,
               fault_list_mode: str = "design",
               progress: bool = False,
               backend: BackendLike = None,
               jobs: int = 1,
               flow_cache: StoreLike = None) -> Dict[str, CampaignResult]:
    """Run the Table 3 campaigns and return one result per design.

    *backend* selects the campaign execution backend (``"serial"``,
    ``"batch"``, ``"process"`` or the bit-parallel ``"vector"``); every
    backend yields identical results.  *jobs* and *flow_cache* speed up
    the implementation step (parallel place-and-route, persistent flow
    artifacts) without changing any campaign number.
    """
    if suite is None:
        suite = build_design_suite(scale)
    if implementations is None:
        implementations = implement_design_suite(suite, jobs=jobs,
                                                 artifact_store=flow_cache)
    config = campaign_config_for(suite, num_faults, fault_list_mode)
    engine = resolve_backend(backend)

    results: Dict[str, CampaignResult] = {}
    for name in DESIGN_ORDER:
        if name not in implementations:
            continue
        callback = None
        if progress:
            # stderr so ``--json`` runs keep a machine-readable stdout
            callback = lambda done, total, design=name: print(
                f"  {design}: {done}/{total} faults", file=sys.stderr,
                flush=True)
        results[name] = run_campaign(implementations[name], config,
                                     progress=callback, backend=engine)
    return results


def summarize(results: Dict[str, CampaignResult]) -> Dict[str, object]:
    """Headline quantities derived from the campaigns."""
    summary: Dict[str, object] = {
        name: result.summary_row() for name, result in results.items()}
    tmr_versions = [n for n in ("TMR_p1", "TMR_p2", "TMR_p3", "TMR_p3_nv")
                    if n in results]
    if "TMR_p1" in results and "TMR_p2" in results:
        summary["improvement_p1_to_p2"] = round(
            improvement_factor(results, "TMR_p1", "TMR_p2"), 2)
    if tmr_versions:
        summary["best_tmr_partition"] = best_partition(results, tmr_versions)
    return summary


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="fast",
                        choices=("paper", "fast", "smoke"))
    parser.add_argument("--faults", type=int, default=None,
                        help="faults to inject per design (default: scale "
                             "dependent)")
    parser.add_argument("--fault-list", default="design",
                        choices=("design", "extended", "programmed"),
                        help="fault-list selection mode")
    parser.add_argument("--backend", default="serial",
                        choices=BACKEND_CHOICES,
                        help="campaign execution backend")
    parser.add_argument("--json", action="store_true")
    add_flow_arguments(parser)
    arguments = parser.parse_args(argv)

    results = run_table3(scale=arguments.scale, num_faults=arguments.faults,
                         fault_list_mode=arguments.fault_list, progress=True,
                         backend=arguments.backend, jobs=arguments.jobs,
                         flow_cache=arguments.flow_cache)
    if arguments.json:
        payload = {name: result.summary_row()
                   for name, result in results.items()}
        payload["derived"] = summarize(results)
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(table3_report(results, order=[n for n in DESIGN_ORDER
                                            if n in results],
                            paper_reference=PAPER_TABLE3_PERCENT))
        derived = summarize(results)
        if "improvement_p1_to_p2" in derived:
            print(f"\nImprovement TMR_p1 -> TMR_p2: "
                  f"{derived['improvement_p1_to_p2']}x "
                  f"(paper: ~4.1x)")
        if "best_tmr_partition" in derived:
            print(f"Best TMR partition: {derived['best_tmr_partition']} "
                  f"(paper: TMR_p2)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
