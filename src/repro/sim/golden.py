"""Golden-versus-DUT output comparison.

The paper's fault-injection system compares the DUT against a golden device
"every clock cycle"; a fault is classified as a *Wrong Answer* when any
output differs on any cycle.  These helpers implement that comparison over
simulation traces, treating an unknown (X) DUT output as wrong whenever the
golden output is known — the pessimistic reading of a floating or conflicting
signal reaching the output pads.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from ..cells import logic
from .simulator import SimulationTrace


@dataclasses.dataclass
class ComparisonResult:
    """Outcome of comparing a DUT trace against the golden trace."""

    wrong_answer: bool
    first_mismatch_cycle: Optional[int]
    mismatching_cycles: int
    mismatching_ports: List[str]

    @property
    def silent(self) -> bool:
        """True when the fault never produced an observable difference."""
        return not self.wrong_answer


def _bits_mismatch(dut_bits: Sequence[int], golden_bits: Sequence[int]) -> bool:
    for dut, gold in zip(dut_bits, golden_bits):
        if gold == logic.UNKNOWN:
            continue
        if dut != gold:
            return True
    return False


def compare_traces(dut: SimulationTrace, golden: SimulationTrace,
                   ports: Optional[Sequence[str]] = None,
                   skip_cycles: int = 0) -> ComparisonResult:
    """Compare two traces cycle by cycle over the selected output ports.

    *skip_cycles* ignores the first cycles (useful when the golden device and
    the DUT need a warm-up period, e.g. while X values flush out of
    uninitialised paths).
    """
    if len(dut.outputs) != len(golden.outputs):
        raise ValueError("traces have different lengths")
    first_mismatch: Optional[int] = None
    mismatching_cycles = 0
    mismatching_ports: List[str] = []
    # Ports the golden device never drives to X compare with one C-level
    # list inequality (a DUT X still mismatches: UNKNOWN != 0/1), instead
    # of re-scanning every bit for X on every cycle of every fault.
    fully_known = golden.all_known_ports()

    for cycle, (dut_out, golden_out) in enumerate(zip(dut.outputs,
                                                      golden.outputs)):
        if cycle < skip_cycles:
            continue
        selected = ports if ports is not None else golden_out.keys()
        cycle_mismatch = False
        for port in selected:
            if port in fully_known:
                mismatch = dut_out[port] != golden_out[port]
            else:
                mismatch = _bits_mismatch(dut_out[port], golden_out[port])
            if mismatch:
                cycle_mismatch = True
                if port not in mismatching_ports:
                    mismatching_ports.append(port)
        if cycle_mismatch:
            mismatching_cycles += 1
            if first_mismatch is None:
                first_mismatch = cycle

    return ComparisonResult(
        wrong_answer=first_mismatch is not None,
        first_mismatch_cycle=first_mismatch,
        mismatching_cycles=mismatching_cycles,
        mismatching_ports=mismatching_ports,
    )


def outputs_as_ints(trace: SimulationTrace, port: str,
                    signed: bool = True) -> List[Optional[int]]:
    """Convenience re-export of :meth:`SimulationTrace.output_ints`."""
    return trace.output_ints(port, signed)


def trace_matches_reference(trace: SimulationTrace, port: str,
                            reference: Sequence[int], signed: bool = True,
                            skip_cycles: int = 0) -> bool:
    """Check a simulated output stream against a behavioural reference."""
    produced = trace.output_ints(port, signed)
    for cycle, (got, expected) in enumerate(zip(produced, reference)):
        if cycle < skip_cycles:
            continue
        if got != expected:
            return False
    return True
