"""Placement: assign slices to tiles and top-level ports to I/O pads.

The constructive placer keeps the packer's locality order and fills a
centred rectangular window of the array in serpentine order; an optional
simulated-annealing refinement then reduces total half-perimeter wirelength.
A *floorplan* can confine each TMR domain to its own column band — the
dedicated-floorplanning mitigation the paper mentions as future work, which
we evaluate as an ablation experiment.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import random
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.ir import Definition, InstancePin
from ..fpga.device import Device
from .pack import PackResult

logger = logging.getLogger(__name__)

#: Environment knob: worker threads for the partition-parallel annealer
#: (and the suite-level flow fan-out).  Execution-only — never part of the
#: flow fingerprint, never allowed to change results.
FLOW_THREADS_ENV = "REPRO_FLOW_THREADS"

#: Pool-startup guard: below these floors the partitioned anneal runs its
#: region sweeps serially (same results — the pool only schedules work).
MIN_PARALLEL_SLICES_PER_REGION = 8
MIN_PARALLEL_MOVES = 2048


def resolve_flow_threads(threads: Optional[int] = None) -> int:
    """Worker-thread count for the flow: explicit arg > env knob > 1."""
    if threads is not None:
        return max(1, int(threads))
    env = os.environ.get(FLOW_THREADS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            logger.warning("ignoring non-integer %s=%r",
                           FLOW_THREADS_ENV, env)
    return 1


@dataclasses.dataclass
class Floorplan:
    """Column bands per TMR domain: domain -> (min column, max column)."""

    domain_columns: Dict[int, Tuple[int, int]]

    @classmethod
    def vertical_thirds(cls, device: Device, guard_columns: int = 1
                        ) -> "Floorplan":
        """Split the array into three vertical bands, one per domain."""
        width = device.columns // 3
        bands = {}
        for domain in range(3):
            low = domain * width
            high = (domain + 1) * width - 1 if domain < 2 else \
                device.columns - 1
            if domain > 0:
                low += guard_columns
            bands[domain] = (low, high)
        return cls(bands)


@dataclasses.dataclass
class Placement:
    """Result of placement."""

    device: Device
    #: slice index -> tile (x, y)
    slice_tiles: List[Tuple[int, int]]
    #: (port name, bit) -> pad index
    port_pads: Dict[Tuple[str, int], int]
    #: flat cell name -> tile (x, y)  (derived convenience map)
    cell_tiles: Dict[str, Tuple[int, int]]
    #: total half-perimeter wirelength after placement
    wirelength: int = 0
    #: execution record of the annealing stage (mode, partitions, threads,
    #: fallback reason) — provenance only, never result-determining.
    anneal_info: Optional[Dict[str, object]] = None

    def tile_of_cell(self, cell_name: str) -> Tuple[int, int]:
        return self.cell_tiles[cell_name]

    def pad_of_port(self, port: str, bit: int) -> int:
        return self.port_pads[(port, bit)]


def _domain_of_slice(definition: Definition, pack_result: PackResult,
                     slice_index: int) -> Optional[int]:
    for cell_name in pack_result.slices[slice_index].cells.values():
        instance = definition.instances.get(cell_name)
        if instance is None:
            continue
        domain = instance.properties.get("domain")
        if domain is not None:
            return int(domain)
    return None


def _serpentine_tiles(device: Device, columns: Sequence[int]
                      ) -> List[Tuple[int, int]]:
    """Tiles of the selected columns in a serpentine (boustrophedon) order."""
    tiles: List[Tuple[int, int]] = []
    for position, x in enumerate(columns):
        rows = range(device.rows) if position % 2 == 0 \
            else range(device.rows - 1, -1, -1)
        for y in rows:
            tiles.append((x, y))
    return tiles


def _build_net_endpoints(definition: Definition, pack_result: PackResult
                         ) -> List[List[str]]:
    """Cells touched by each multi-terminal net (for wirelength estimation)."""
    endpoints: List[List[str]] = []
    for net in definition.nets.values():
        cells = []
        for pin in net.pins:
            if isinstance(pin, InstancePin) and \
                    pin.instance.name in pack_result.cell_site:
                cells.append(pin.instance.name)
        if len(cells) > 1:
            endpoints.append(cells)
    return endpoints


def _wirelength(endpoints: List[List[str]],
                cell_tiles: Dict[str, Tuple[int, int]]) -> int:
    total = 0
    for cells in endpoints:
        xs = [cell_tiles[c][0] for c in cells]
        ys = [cell_tiles[c][1] for c in cells]
        total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


def place(definition: Definition, pack_result: PackResult, device: Device,
          seed: int = 1, floorplan: Optional[Floorplan] = None,
          anneal_moves_per_slice: int = 0,
          target_utilization: float = 0.55,
          partitions: int = 1,
          threads: Optional[int] = None) -> Placement:
    """Place packed slices onto the device.

    *anneal_moves_per_slice* controls the optional simulated-annealing
    refinement (0 disables it; 10-50 gives a meaningful wirelength
    reduction at a modest runtime cost).  *target_utilization* spreads the
    design over a window larger than its slice count so the router has
    spare channel capacity — packing a region at 100% density is what makes
    island-style fabrics unroutable.

    *partitions* splits the annealing into that many disjoint slice
    regions swept independently per round (``1`` keeps the single-stream
    annealer, bit-identical to previous releases).  The partition count is
    a result-determining flow knob; *threads* only schedules the region
    sweeps and never changes the outcome — the placement is identical for
    any thread count at a fixed (seed, partitions).
    """
    num_slices = pack_result.num_slices
    if num_slices > device.spec.num_tiles:
        raise ValueError(
            f"design needs {num_slices} slices but {device.spec.name} has "
            f"only {device.spec.num_tiles}")

    rng = random.Random(seed)
    slice_tiles: List[Optional[Tuple[int, int]]] = [None] * num_slices

    if floorplan is None:
        spread_tiles = min(device.spec.num_tiles,
                           max(num_slices,
                               int(num_slices / max(target_utilization,
                                                    0.05))))
        columns_needed = min(device.columns,
                             max(1, -(-spread_tiles // device.rows)))
        first_column = max(0, (device.columns - columns_needed) // 2)
        ordered_tiles = _serpentine_tiles(
            device, range(first_column, first_column + columns_needed))
        # Distribute the slices evenly over the window instead of packing
        # the first tiles back to back.
        if num_slices > 0:
            stride = len(ordered_tiles) / num_slices
            used_positions = set()
            for index in range(num_slices):
                position = min(int(index * stride), len(ordered_tiles) - 1)
                while position in used_positions:
                    position += 1
                used_positions.add(position)
                slice_tiles[index] = ordered_tiles[position]
    else:
        # Group slices by domain and fill each domain's column band.
        by_domain: Dict[Optional[int], List[int]] = {}
        for index in range(num_slices):
            domain = _domain_of_slice(definition, pack_result, index)
            by_domain.setdefault(domain, []).append(index)
        shared = by_domain.pop(None, [])
        for domain, indices in sorted(by_domain.items()):
            low, high = floorplan.domain_columns.get(
                domain, (0, device.columns - 1))
            ordered_tiles = _serpentine_tiles(device, range(low, high + 1))
            if len(indices) > len(ordered_tiles):
                raise ValueError(
                    f"domain {domain} needs {len(indices)} tiles but its "
                    f"floorplan band holds only {len(ordered_tiles)}")
            for offset, slice_index in enumerate(indices):
                slice_tiles[slice_index] = ordered_tiles[offset]
        # Shared logic (output voters etc.) goes wherever tiles remain.
        used = {tile for tile in slice_tiles if tile is not None}
        free = [tile for tile in _serpentine_tiles(
            device, range(device.columns)) if tile not in used]
        for offset, slice_index in enumerate(shared):
            slice_tiles[slice_index] = free[offset]

    cell_tiles: Dict[str, Tuple[int, int]] = {}
    for slice_index, tile in enumerate(slice_tiles):
        for cell_name in pack_result.slices[slice_index].cells.values():
            cell_tiles[cell_name] = tile

    endpoints = _build_net_endpoints(definition, pack_result)
    wirelength = _wirelength(endpoints, cell_tiles)

    anneal_info: Optional[Dict[str, object]] = None
    if anneal_moves_per_slice > 0 and num_slices > 2 and floorplan is None:
        moves = anneal_moves_per_slice * num_slices
        if partitions <= 1:
            wirelength = _anneal(definition, pack_result, device,
                                 slice_tiles, endpoints, rng, moves)
            anneal_info = {"mode": "serial", "partitions": 1, "threads": 1}
        else:
            wirelength, anneal_info = _anneal_partitioned(
                pack_result, slice_tiles, endpoints, seed=seed,
                moves=moves, partitions=partitions,
                threads=resolve_flow_threads(threads))
        # The anneal moves slices, not cells: rebuild the derived map once
        # instead of patching it on every accepted swap.
        for slice_index, tile in enumerate(slice_tiles):
            for cell_name in pack_result.slices[slice_index].cells.values():
                cell_tiles[cell_name] = tile

    port_pads = _assign_pads(definition, device)

    return Placement(
        device=device,
        slice_tiles=[tile for tile in slice_tiles],
        port_pads=port_pads,
        cell_tiles=cell_tiles,
        wirelength=wirelength,
        anneal_info=anneal_info,
    )


def _anneal(definition: Definition, pack_result: PackResult, device: Device,
            slice_tiles: List[Tuple[int, int]],
            endpoints: List[List[str]], rng: random.Random,
            moves: int) -> int:
    """Pairwise-swap simulated annealing on slice locations.

    Cost evaluation is incremental: nets are reduced to slice-index lists
    once, per-net half-perimeter lengths are cached, and a proposed swap
    recomputes only the touched nets' bounding boxes — the same integers
    the seed annealer produced by swapping cell tiles and re-deriving, so
    the accept/reject sequence (and the RNG stream) is unchanged.
    """
    # Nets as slice-index lists, plus nets touching each slice.
    net_slices, nets_of_slice = _net_tables(pack_result, endpoints)

    def net_length(net_index: int) -> int:
        xs = [slice_tiles[s][0] for s in net_slices[net_index]]
        ys = [slice_tiles[s][1] for s in net_slices[net_index]]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    lengths = [net_length(i) for i in range(len(endpoints))]
    current = sum(lengths)
    num_slices = len(slice_tiles)
    temperature = max(2.0, current / max(1, len(endpoints)) * 0.5)

    for move in range(moves):
        a = rng.randrange(num_slices)
        b = rng.randrange(num_slices)
        if a == b:
            continue
        affected = set(nets_of_slice.get(a, ())) | set(nets_of_slice.get(b, ()))
        before = sum(lengths[i] for i in affected)
        slice_tiles[a], slice_tiles[b] = slice_tiles[b], slice_tiles[a]
        new_lengths = {i: net_length(i) for i in affected}
        after = sum(new_lengths.values())
        delta = after - before
        if delta <= 0 or rng.random() < pow(2.718281828, -delta / temperature):
            current += delta
            for net_index, length in new_lengths.items():
                lengths[net_index] = length
        else:
            slice_tiles[a], slice_tiles[b] = slice_tiles[b], slice_tiles[a]
        if move and move % max(1, moves // 10) == 0:
            temperature = max(temperature * 0.7, 0.05)
    return current


#: Synchronisation rounds of the partitioned anneal (one temperature step
#: per round, mirroring the serial annealer's ten-step cooling schedule).
_PARTITION_ROUNDS = 10


def _net_tables(pack_result: PackResult, endpoints: List[List[str]]
                ) -> Tuple[List[List[int]], Dict[int, List[int]]]:
    """Nets as slice-index lists plus the nets touching each slice."""
    cell_slice: Dict[str, int] = {}
    for slice_index, assignment in enumerate(pack_result.slices):
        for cell in assignment.cells.values():
            cell_slice[cell] = slice_index
    net_slices: List[List[int]] = []
    nets_of_slice: Dict[int, List[int]] = {}
    for net_index, cells in enumerate(endpoints):
        slices_of_net: List[int] = []
        seen_slices = set()
        for cell in cells:
            slice_index = cell_slice[cell]
            if slice_index not in seen_slices:
                seen_slices.add(slice_index)
                slices_of_net.append(slice_index)
                nets_of_slice.setdefault(slice_index, []).append(net_index)
        net_slices.append(slices_of_net)
    return net_slices, nets_of_slice


def _region_sweep(region: List[int], positions: List[Tuple[int, int]],
                  net_slices: List[List[int]],
                  nets_of_slice: Dict[int, List[int]],
                  lengths: List[int], rng: random.Random,
                  temperature: float, moves: int
                  ) -> List[Tuple[int, int]]:
    """One region's move sweep against a frozen snapshot of the others.

    *positions* and *lengths* are private copies: swaps touch only slices
    of *region*, net bounding boxes are evaluated with every non-region
    endpoint at its round-start position.  The sweep therefore depends
    only on (snapshot, rng, temperature) — never on scheduling — which is
    what makes the merged result thread-count independent.
    """
    span = len(region)
    for _move in range(moves):
        a = region[rng.randrange(span)]
        b = region[rng.randrange(span)]
        if a == b:
            continue
        affected = set(nets_of_slice.get(a, ())) \
            | set(nets_of_slice.get(b, ()))
        before = sum(lengths[i] for i in affected)
        positions[a], positions[b] = positions[b], positions[a]
        new_lengths = {}
        after = 0
        for net_index in affected:
            xs = [positions[s][0] for s in net_slices[net_index]]
            ys = [positions[s][1] for s in net_slices[net_index]]
            length = (max(xs) - min(xs)) + (max(ys) - min(ys))
            new_lengths[net_index] = length
            after += length
        delta = after - before
        if delta <= 0 or rng.random() < pow(2.718281828,
                                            -delta / temperature):
            for net_index, length in new_lengths.items():
                lengths[net_index] = length
        else:
            positions[a], positions[b] = positions[b], positions[a]
    return [positions[s] for s in region]


def _anneal_partitioned(pack_result: PackResult,
                        slice_tiles: List[Tuple[int, int]],
                        endpoints: List[List[str]], seed: int,
                        moves: int, partitions: int, threads: int
                        ) -> Tuple[int, Dict[str, object]]:
    """Partition-parallel pairwise-swap annealing.

    Slices are split into *partitions* disjoint regions by their
    constructive location (column-major, so regions are spatially
    coherent column bands).  Each synchronisation round sweeps every
    region independently — seeded per (seed, partitions, region, round) —
    against a shared snapshot, then merges the disjoint results in region
    order and recomputes the net lengths.  The accepted-move sequence is
    a pure function of (seed, partitions): thread count only changes which
    worker executes a sweep, never its outcome.
    """
    num_slices = len(slice_tiles)
    net_slices, nets_of_slice = _net_tables(pack_result, endpoints)

    order = sorted(range(num_slices),
                   key=lambda s: (slice_tiles[s], s))
    regions: List[List[int]] = []
    base, extra = divmod(num_slices, partitions)
    cursor = 0
    for index in range(partitions):
        size = base + (1 if index < extra else 0)
        regions.append(order[cursor:cursor + size])
        cursor += size

    def net_length(net_index: int) -> int:
        xs = [slice_tiles[s][0] for s in net_slices[net_index]]
        ys = [slice_tiles[s][1] for s in net_slices[net_index]]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    lengths = [net_length(i) for i in range(len(endpoints))]
    current = sum(lengths)
    temperature = max(2.0, current / max(1, len(endpoints)) * 0.5)
    round_moves = -(-moves // _PARTITION_ROUNDS)

    use_pool = (threads > 1
                and moves >= MIN_PARALLEL_MOVES
                and num_slices >= partitions * MIN_PARALLEL_SLICES_PER_REGION)
    fallback_reason = None
    if threads > 1 and not use_pool:
        fallback_reason = (
            f"serial fallback: {moves} moves / {num_slices} slices below "
            f"pool floor ({MIN_PARALLEL_MOVES} moves, "
            f"{MIN_PARALLEL_SLICES_PER_REGION}/region)")
        logger.info("%s", fallback_reason)

    def sweep_args(region_index: int, round_index: int):
        region = regions[region_index]
        region_moves = -(-round_moves * len(region) // max(1, num_slices))
        rng = random.Random(
            f"{seed}:{partitions}:{region_index}:{round_index}")
        return (region, list(slice_tiles), net_slices, nets_of_slice,
                list(lengths), rng, temperature, region_moves)

    pool = ThreadPoolExecutor(max_workers=threads) if use_pool else None
    try:
        for round_index in range(_PARTITION_ROUNDS):
            if pool is not None:
                futures = [
                    pool.submit(_region_sweep,
                                *sweep_args(region_index, round_index))
                    for region_index in range(partitions)]
                results = [future.result() for future in futures]
            else:
                results = [
                    _region_sweep(*sweep_args(region_index, round_index))
                    for region_index in range(partitions)]
            # Fixed merge order: regions are disjoint, so merging is a
            # plain scatter; doing it in region order keeps the accepted
            # placement history reproducible in logs and debuggers.
            for region, placed in zip(regions, results):
                for slice_index, tile in zip(region, placed):
                    slice_tiles[slice_index] = tile
            lengths = [net_length(i) for i in range(len(endpoints))]
            current = sum(lengths)
            temperature = max(temperature * 0.7, 0.05)
    finally:
        if pool is not None:
            pool.shutdown(wait=True)

    info: Dict[str, object] = {
        "mode": "partitioned-pool" if use_pool else "partitioned-serial",
        "partitions": partitions,
        "threads": threads if use_pool else 1,
        "region_sizes": [len(region) for region in regions],
        "rounds": _PARTITION_ROUNDS,
    }
    if fallback_reason is not None:
        info["fallback"] = fallback_reason
    return current, info


def _assign_pads(definition: Definition, device: Device
                 ) -> Dict[Tuple[str, int], int]:
    """Deterministic port-bit to pad assignment.

    Signals are spread evenly around the whole pad ring so that the routes
    into the placement window do not all squeeze through one corner of the
    array — the same reason board designers distribute a wide bus over
    several package banks.
    """
    signals: List[Tuple[str, int]] = []
    for port in definition.ports.values():
        for bit in port.bits():
            signals.append((port.name, bit))

    if len(signals) > device.num_pads:
        raise ValueError(
            f"design needs {len(signals)} pads but {device.spec.name} has "
            f"only {device.num_pads}")

    port_pads: Dict[Tuple[str, int], int] = {}
    if not signals:
        return port_pads
    stride = device.num_pads / len(signals)
    used: set = set()
    for index, key in enumerate(signals):
        pad = min(int(index * stride), device.num_pads - 1)
        while pad in used:
            pad = (pad + 1) % device.num_pads
        used.add(pad)
        port_pads[key] = pad
    return port_pads
