"""Tests for gate construction and LUT merging."""

import pytest

from repro.cells import INIT_AND2, logic
from repro.cells.evaluate import lut_init_of
from repro.netlist import Netlist, NetlistBuilder, validate_definition
from repro.sim import CompiledDesign, Simulator
from repro.techmap import GateBuilder, lut_histogram, merge_luts, \
    remove_buffer_luts


def _simulate_single_output(definition, inputs):
    compiled = CompiledDesign(definition)
    trace = Simulator(compiled).run([inputs])
    return trace.outputs[0]["Y"][0]


def _gate_module(netlist, cells, build):
    """Create a module with inputs A,B,C and output Y built by *build*."""
    builder = NetlistBuilder.new_module(netlist, "gates", "work", cells)
    gates = GateBuilder(builder)
    a = builder.input("A", 1)[0]
    b = builder.input("B", 1)[0]
    c = builder.input("C", 1)[0]
    y = builder.output("Y", 1)[0]
    build(gates, builder, a, b, c, y)
    return builder.finish()


class TestGateBuilder:
    @pytest.mark.parametrize("gate,function", [
        ("and2", lambda a, b: a & b),
        ("or2", lambda a, b: a | b),
        ("xor2", lambda a, b: a ^ b),
        ("nand2", lambda a, b: 1 - (a & b)),
        ("nor2", lambda a, b: 1 - (a | b)),
        ("xnor2", lambda a, b: 1 - (a ^ b)),
    ])
    def test_two_input_gates(self, netlist, cells, gate, function):
        module = _gate_module(
            netlist, cells,
            lambda gates, builder, a, b, c, y:
            getattr(gates, gate)(a, b, y))
        for a_value in (0, 1):
            for b_value in (0, 1):
                result = _simulate_single_output(
                    module, {"A": a_value, "B": b_value, "C": 0})
                assert result == function(a_value, b_value)

    def test_mux2(self, netlist, cells):
        module = _gate_module(
            netlist, cells,
            lambda gates, builder, a, b, c, y: gates.mux2(c, a, b, y))
        assert _simulate_single_output(module, {"A": 1, "B": 0, "C": 0}) == 1
        assert _simulate_single_output(module, {"A": 1, "B": 0, "C": 1}) == 0

    def test_majority3(self, netlist, cells):
        module = _gate_module(
            netlist, cells,
            lambda gates, builder, a, b, c, y: gates.majority3(a, b, c, y))
        for address in range(8):
            bits = {"A": address & 1, "B": (address >> 1) & 1,
                    "C": (address >> 2) & 1}
            expected = 1 if sum(bits.values()) >= 2 else 0
            assert _simulate_single_output(module, bits) == expected

    def test_full_adder(self, netlist, cells):
        builder = NetlistBuilder.new_module(netlist, "fa", "work", cells)
        gates = GateBuilder(builder)
        a = builder.input("A", 1)[0]
        b = builder.input("B", 1)[0]
        c = builder.input("C", 1)[0]
        s = builder.output("S", 1)[0]
        co = builder.output("CO", 1)[0]
        total, carry = gates.full_adder(a, b, c)
        gates.buf(total, s)
        gates.buf(carry, co)
        module = builder.finish()
        compiled = CompiledDesign(module)
        for address in range(8):
            bits = {"A": address & 1, "B": (address >> 1) & 1,
                    "C": (address >> 2) & 1}
            trace = Simulator(compiled).run([bits])
            value = trace.outputs[0]["S"][0] + 2 * trace.outputs[0]["CO"][0]
            assert value == sum(bits.values())

    def test_reduce_or_and_equal_const(self, netlist, cells):
        builder = NetlistBuilder.new_module(netlist, "cmp", "work", cells)
        gates = GateBuilder(builder)
        word = builder.input("A", 5)
        y = builder.output("Y", 1)[0]
        gates.buf(gates.equal_const(word, 19), y)
        module = builder.finish()
        compiled = CompiledDesign(module)
        assert Simulator(compiled).run([{"A": 19}]).outputs[0]["Y"][0] == 1
        assert Simulator(compiled).run([{"A": 18}]).outputs[0]["Y"][0] == 0

    def test_lut_rejects_bad_arity(self, netlist, cells):
        builder = NetlistBuilder.new_module(netlist, "bad", "work", cells)
        gates = GateBuilder(builder)
        nets = builder.bus("n", 5)
        with pytest.raises(Exception):
            gates.lut(0, nets)

    def test_invert_word(self, netlist, cells):
        builder = NetlistBuilder.new_module(netlist, "invw", "work", cells)
        gates = GateBuilder(builder)
        word = builder.input("A", 3)
        out = builder.output("Y", 3)
        for bit, net in enumerate(gates.invert_word(word)):
            gates.buf(net, out[bit])
        module = builder.finish()
        compiled = CompiledDesign(module)
        trace = Simulator(compiled).run([{"A": 0b101}])
        assert trace.outputs[0]["Y"] == [0, 1, 0]


class TestMapper:
    def test_merge_reduces_lut_count_preserving_function(self, netlist,
                                                         cells):
        module = _gate_module(
            netlist, cells,
            lambda gates, builder, a, b, c, y:
            gates.xor2(gates.and2(a, b), c, y))
        truth_before = {}
        for address in range(8):
            bits = {"A": address & 1, "B": (address >> 1) & 1,
                    "C": (address >> 2) & 1}
            truth_before[address] = _simulate_single_output(module, bits)

        report = merge_luts(module)
        assert report.merges >= 1
        assert report.luts_after < report.luts_before

        for address in range(8):
            bits = {"A": address & 1, "B": (address >> 1) & 1,
                    "C": (address >> 2) & 1}
            assert _simulate_single_output(module, bits) == \
                truth_before[address]

    def test_merge_respects_fanout(self, netlist, cells):
        # The AND output also feeds a second LUT: it must not be absorbed.
        def build(gates, builder, a, b, c, y):
            shared = gates.and2(a, b)
            gates.xor2(shared, c, y)
            z = builder.output("Z", 1)[0]
            gates.or2(shared, c, z)

        module = _gate_module(netlist, cells, build)
        before = sum(1 for i in module.instances.values()
                     if i.reference.name.startswith("LUT"))
        merge_luts(module)
        after = sum(1 for i in module.instances.values()
                    if i.reference.name.startswith("LUT"))
        # Only buffers disappear in the worst case; the shared AND survives.
        assert any(lut_init_of(i) == INIT_AND2
                   for i in module.instances.values()
                   if i.reference.name == "LUT2")
        assert after <= before

    def test_merge_does_not_cross_domains(self, netlist, cells):
        def build(gates, builder, a, b, c, y):
            first = gates.and2(a, b)
            second = gates.xor2(first, c, y)

        module = _gate_module(netlist, cells, build)
        for instance in module.instances.values():
            if lut_init_of(instance) == INIT_AND2:
                instance.properties["domain"] = 0
            else:
                instance.properties["domain"] = 1
        report = merge_luts(module)
        assert report.merges == 0

    def test_merge_keeps_voters(self, netlist, cells):
        def build(gates, builder, a, b, c, y):
            voter = gates.majority3(a, b, c)
            gates.inv(voter, y)

        module = _gate_module(netlist, cells, build)
        for instance in module.instances.values():
            if instance.reference.name == "LUT3":
                instance.properties["voter"] = "barrier"
        report = merge_luts(module)
        assert report.merges == 0

    def test_remove_buffer_luts(self, netlist, cells):
        def build(gates, builder, a, b, c, y):
            gates.buf(gates.and2(a, b), y)

        module = _gate_module(netlist, cells, build)
        removed = remove_buffer_luts(module)
        assert removed == 1
        assert validate_definition(module).ok
        assert _simulate_single_output(module, {"A": 1, "B": 1, "C": 0}) == 1

    def test_lut_histogram(self, tiny_fir_flat):
        histogram = lut_histogram(tiny_fir_flat)
        assert sum(histogram.values()) == len(tiny_fir_flat.instances)
        assert any(name.startswith("LUT") for name in histogram)
