"""Tests for fault models, fault lists, injection and campaigns."""

import pytest

from repro.faults import (CampaignConfig, FaultInjectionManager,
                          FaultListManager, FaultModeler, categories,
                          campaign_details, format_table, run_campaign,
                          table3_report, table4_report)
from repro.fpga import lut_bit, pip_resource, slice_cfg
from repro.sim import CompiledDesign, stimulus_from_samples, random_samples


@pytest.fixture(scope="module")
def implementation(tiny_fir_implementation):
    return tiny_fir_implementation


@pytest.fixture(scope="module")
def compiled(implementation):
    return CompiledDesign(implementation.design)


@pytest.fixture(scope="module")
def modeler(implementation, compiled):
    return FaultModeler(implementation, compiled)


@pytest.fixture(scope="module")
def fault_lists(implementation):
    manager = FaultListManager(implementation)
    return {mode: manager.build(mode)
            for mode in ("design", "extended", "programmed")}


class TestFaultList:
    def test_modes_are_nested_supersets(self, fault_lists):
        design = set(fault_lists["design"].bits)
        extended = set(fault_lists["extended"].bits)
        programmed = set(fault_lists["programmed"].bits)
        assert design <= extended
        assert len(programmed) < len(design)

    def test_no_duplicates(self, fault_lists):
        for fault_list in fault_lists.values():
            assert len(fault_list.bits) == len(set(fault_list.bits))

    def test_composition_accounts_for_all_bits(self, fault_lists):
        fault_list = fault_lists["design"]
        assert sum(fault_list.composition.values()) == len(fault_list)
        assert fault_list.composition["routing"] > \
            fault_list.composition["lut"]

    def test_design_list_matches_table2_accounting(self, implementation,
                                                   fault_lists):
        stats = implementation.resources.stats
        assert len(fault_lists["design"]) == stats.total

    def test_sampling_is_deterministic(self, fault_lists):
        fault_list = fault_lists["design"]
        assert fault_list.sample(50, seed=1) == fault_list.sample(50, seed=1)
        assert fault_list.sample(50, seed=1) != fault_list.sample(50, seed=2)
        assert fault_list.sample(len(fault_list)) == fault_list.bits
        # Monte-Carlo draws beyond the population cover every bit once and
        # extend with a reproducible with-replacement tail (huge scale).
        oversample = fault_list.sample(len(fault_list) + 20, seed=3)
        assert len(oversample) == len(fault_list) + 20
        assert oversample[:len(fault_list)] == fault_list.bits
        assert set(oversample[len(fault_list):]) <= set(fault_list.bits)
        assert oversample == fault_list.sample(len(fault_list) + 20, seed=3)

    def test_unknown_mode_rejected(self, implementation):
        with pytest.raises(ValueError):
            FaultListManager(implementation).build("bogus")


class TestFaultModels:
    def test_lut_bit_fault(self, implementation, modeler, compiled):
        site = implementation.resources.lut_sites[0]
        resource = lut_bit(site.x, site.y, site.slot, 0)
        bit = implementation.layout.bit_of(resource)
        effect = modeler.effect_of_bit(bit)
        assert effect.category == categories.LUT
        assert effect.has_effect
        gate_index = compiled.gate_index_by_name[site.cell]
        assert gate_index in effect.overlay.lut_init_overrides

    def test_lut_unused_region_has_no_effect(self, implementation, modeler):
        site = next(s for s in implementation.resources.lut_sites
                    if s.logical_inputs < 4)
        resource = lut_bit(site.x, site.y, site.slot, 15)
        effect = modeler.effect_of_bit(
            implementation.layout.bit_of(resource))
        assert effect.category == categories.LUT
        assert not effect.has_effect

    def test_unused_lut_site_has_no_effect(self, implementation, modeler):
        used = {(s.x, s.y, s.slot)
                for s in implementation.resources.lut_sites}
        device = implementation.device
        free = next((x, y, slot) for x in range(device.columns)
                    for y in range(device.rows) for slot in ("F", "G")
                    if (x, y, slot) not in used)
        effect = modeler.effect_of_bit(
            implementation.layout.bit_of(lut_bit(*free, 0)))
        assert not effect.has_effect

    def test_ff_init_fault(self, implementation, modeler):
        site = implementation.resources.ff_sites[0]
        suffix = "X" if site.slot == "FFX" else "Y"
        resource = slice_cfg(site.x, site.y, f"FF{suffix}_INIT")
        effect = modeler.effect_of_bit(
            implementation.layout.bit_of(resource))
        assert effect.category == categories.INITIALIZATION
        assert effect.has_effect
        assert effect.overlay.ff_init_overrides

    def test_open_fault_on_used_pip(self, implementation, modeler):
        pip = next(iter(implementation.resources.used_pips))
        effect = modeler.effect_of_bit(
            implementation.layout.bit_of(pip_resource(pip)))
        assert effect.category == categories.OPEN
        assert effect.has_effect

    def test_every_design_bit_classifies(self, implementation, modeler,
                                         fault_lists):
        sample = fault_lists["design"].sample(150, seed=7)
        for bit in sample:
            effect = modeler.effect_of_bit(bit)
            assert effect.category in categories.TABLE4_ORDER

    def test_routing_categories_present(self, implementation, modeler,
                                        fault_lists):
        sample = fault_lists["design"].sample(600, seed=3)
        seen = {modeler.effect_of_bit(bit).category for bit in sample}
        assert categories.OPEN in seen
        assert categories.BRIDGE in seen or categories.CONFLICT in seen


class TestInjector:
    def test_injection_produces_wrong_answers(self, implementation, compiled,
                                              fault_lists):
        samples = random_samples(10, 4, seed=11)
        manager = FaultInjectionManager(implementation, compiled,
                                        stimulus_from_samples(samples))
        wrong = 0
        for bit in fault_lists["programmed"].sample(60, seed=5):
            result = manager.inject(bit)
            wrong += result.wrong_answer
        assert wrong > 0

    def test_silent_fault_reports_no_mismatch(self, implementation, compiled):
        samples = random_samples(6, 4, seed=12)
        manager = FaultInjectionManager(implementation, compiled,
                                        stimulus_from_samples(samples))
        site = next(s for s in implementation.resources.lut_sites
                    if s.logical_inputs < 4)
        bit = implementation.layout.bit_of(
            lut_bit(site.x, site.y, site.slot, 15))
        result = manager.inject(bit)
        assert not result.has_effect and not result.wrong_answer


class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign(self, implementation):
        config = CampaignConfig(num_faults=150, workload_cycles=8, seed=3)
        return run_campaign(implementation, config)

    def test_campaign_counts_consistent(self, campaign):
        assert campaign.injected == 150
        assert campaign.wrong_answers == sum(
            1 for r in campaign.results if r.wrong_answer)
        assert 0 <= campaign.wrong_answer_percent <= 100
        by_category_total = sum(c.injected
                                for c in campaign.by_category.values())
        assert by_category_total == campaign.injected

    def test_unprotected_filter_is_vulnerable(self, campaign):
        assert campaign.wrong_answer_percent > 10

    def test_effect_table_only_counts_wrong(self, campaign):
        table = campaign.effect_table()
        assert sum(table.values()) == campaign.wrong_answers

    def test_reports_render(self, campaign):
        results = {"standard": campaign}
        assert "standard" in table3_report(results)
        assert "Open" in table4_report(results)
        assert campaign.design in campaign_details(campaign)
        assert format_table(["a"], [[1]])

    def test_campaign_reproducible(self, implementation):
        config = CampaignConfig(num_faults=40, workload_cycles=6, seed=9)
        first = run_campaign(implementation, config)
        second = run_campaign(implementation, config)
        assert first.wrong_answers == second.wrong_answers
        assert [r.bit for r in first.results] == \
            [r.bit for r in second.results]
