"""Drive the checkers over a file tree and render findings.

The runner is itself held to the invariants it checks: files are
enumerated in sorted order, findings are sorted by a total key, and the
JSON report is deterministic byte-for-byte for a given tree.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

from .api import check_api
from .atomicity import check_atomicity
from .baseline import Waiver, apply_baseline, load_baseline
from .concurrency import check_concurrency
from .context import ModuleContext
from .determinism import check_determinism
from .model import Finding, LintConfig, RULES

_CHECKERS = (check_determinism, check_concurrency,
             check_atomicity, check_api)

#: Directories never worth walking into.
_SKIP_DIRS = {"__pycache__", ".git", ".bench-out", ".pytest_cache"}


@dataclasses.dataclass(frozen=True, slots=True)
class LintReport:
    """Everything one run produced, pre-baseline and post-baseline."""

    findings: tuple  # unwaived Finding objects, sorted
    waived: tuple    # Finding objects suppressed by the baseline
    errors: tuple    # (path, message) for files that failed to parse
    files_checked: int

    @property
    def exit_code(self) -> int:
        return 1 if (self.findings or self.errors) else 0

    def as_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "findings": [finding.as_dict() for finding in self.findings],
            "waived": [finding.as_dict() for finding in self.waived],
            "errors": [{"path": path, "message": message}
                       for path, message in self.errors],
        }


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if not _SKIP_DIRS.intersection(candidate.parts):
                yield candidate


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(path: Path, rel_path: str,
              config: LintConfig) -> List[Finding]:
    source = path.read_text(encoding="utf-8")
    ctx = ModuleContext(path=path, rel_path=rel_path, source=source)
    findings: List[Finding] = []
    for checker in _CHECKERS:
        findings.extend(checker(ctx, config))
    return findings


def run_lint(paths: Sequence[Path],
             config: Optional[LintConfig] = None,
             baseline: Optional[Path] = None,
             root: Optional[Path] = None) -> LintReport:
    config = config or LintConfig()
    root = root or Path.cwd()
    findings: List[Finding] = []
    errors: List[tuple] = []
    files_checked = 0
    for path in iter_python_files(paths):
        rel = _rel_path(path, root)
        files_checked += 1
        try:
            findings.extend(lint_file(path, rel, config))
        except SyntaxError as error:
            errors.append((rel, f"syntax error: {error.msg} "
                           f"(line {error.lineno})"))
    waivers: List[Waiver] = []
    if baseline is not None and baseline.is_file():
        waivers = load_baseline(baseline)
    unwaived, waived = apply_baseline(
        findings, waivers, _rel_path(baseline, root)
        if baseline is not None else "lint-baseline.toml")
    unwaived.sort(key=Finding.sort_key)
    waived.sort(key=Finding.sort_key)
    return LintReport(findings=tuple(unwaived), waived=tuple(waived),
                      errors=tuple(sorted(errors)),
                      files_checked=files_checked)


def render_text(report: LintReport) -> str:
    lines: List[str] = []
    for path, message in report.errors:
        lines.append(f"{path}: ERROR: {message}")
    for finding in report.findings:
        lines.append(f"{finding.path}:{finding.line}:{finding.col}: "
                     f"{finding.rule} [{finding.scope}] "
                     f"{finding.message}")
        lines.append(f"    hint: {finding.hint}")
    summary = (f"{len(report.findings)} finding(s), "
               f"{len(report.waived)} waived, "
               f"{len(report.errors)} error(s) in "
               f"{report.files_checked} file(s)")
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)


def render_rules() -> str:
    lines: List[str] = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"{rule_id}  {rule.title}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


__all__ = ["LintReport", "iter_python_files", "lint_file", "run_lint",
           "render_text", "render_json", "render_rules"]
