"""repro — reproduction of "On the Optimal Design of Triple Modular
Redundancy Logic for SRAM-based FPGAs" (Kastensmidt, Sterpone, Carro,
Sonza Reorda — DATE 2005).

The package provides, bottom-up:

* :mod:`repro.netlist` — a SpyDrNet-style netlist IR with hierarchy,
  traversal and flattening;
* :mod:`repro.cells` — the FPGA primitive cell library (LUTs, flip-flops,
  I/O) with behavioural models;
* :mod:`repro.techmap` — gate-to-LUT lowering and LUT packing;
* :mod:`repro.rtl` — structural generators including the paper's 11-tap FIR
  filter case study;
* :mod:`repro.core` — the paper's contribution: TMR insertion with
  configurable voter partitioning;
* :mod:`repro.fpga` — an island-style FPGA device model with a
  frame-addressed configuration memory and bitstream generation;
* :mod:`repro.pnr` — packing, placement and routing onto the device model;
* :mod:`repro.sim` — a three-valued levelized simulator;
* :mod:`repro.faults` — bitstream fault injection, effect classification and
  campaign management;
* :mod:`repro.analysis` — resource/robustness reports (paper Tables 2-4);
* :mod:`repro.experiments` — drivers that regenerate every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
