"""Tests for the pipeline engine, the scenario registry and the CLI."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import (SCENARIOS, Scenario, register_scenario, run_scenario,
                   scenario_by_name, stable_report)
from repro.__main__ import main as cli_main
from repro.pipeline import (REPORT_SCHEMA, PipelineContext, pipeline_for,
                            render_markdown)

#: The tiny scale keeps every end-to-end test at seconds per run.
TINY = dict(scale="tiny", num_faults=24)


@pytest.fixture(scope="module")
def flow_store(tmp_path_factory):
    """One persistent flow store for the module: P&R runs once per design."""
    return str(tmp_path_factory.mktemp("pipeline-flow"))


class TestRegistry:
    def test_builtin_catalog(self):
        expected = {"table2-fir", "table3-fir", "table4-fir", "huge-fir",
                    "figures-fir",
                    "ablation-sweep", "floorplan-fir", "mbu-fir",
                    "accumulate-fir", "upset-matrix", "backend-matrix",
                    "partition-shortlist"}
        assert expected <= set(SCENARIOS)

    def test_unknown_scenario_message(self):
        with pytest.raises(KeyError, match="unknown scenario 'tablefive'"):
            scenario_by_name("tablefive")

    def test_register_rejects_duplicates(self):
        scenario = SCENARIOS["table3-fir"]
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(scenario)
        assert register_scenario(scenario, replace=True) is scenario

    def test_axes_expand_to_variants(self):
        scenario = scenario_by_name("upset-matrix")
        variants = dict(scenario.variants())
        assert set(variants) == {"upset_model=single", "upset_model=mbu:2",
                                 "upset_model=accumulate:4"}
        assert variants["upset_model=mbu:2"].upset_model == "mbu:2"
        assert variants["upset_model=mbu:2"].axes == ()

    def test_override_collapses_axis(self):
        report = run_scenario("backend-matrix", backend="vector",
                              designs=("standard",), **TINY)
        assert "runs" not in report
        assert report["backend"] == "vector"

    def test_unknown_stage_and_analysis(self):
        with pytest.raises(KeyError, match="unknown pipeline stage"):
            pipeline_for(("build", "deploy"))
        ctx = PipelineContext(scale="tiny", designs=("standard",),
                              analyses=("tableau",))
        with pytest.raises(KeyError, match="unknown analysis"):
            pipeline_for(("build", "analyze")).run(ctx)


class TestPipelineRuns:
    def test_table3_scenario_matches_direct_campaign_loop(self, flow_store):
        """The pipeline path reproduces the plain run_campaign loop."""
        from repro.experiments import (DESIGN_ORDER, build_design_suite,
                                       implement_design_suite)
        from repro.experiments.table3 import campaign_config_for
        from repro.faults import run_campaign

        suite = build_design_suite("tiny")
        implementations = implement_design_suite(suite,
                                                 artifact_store=flow_store)
        config = campaign_config_for(suite, num_faults=TINY["num_faults"])
        expected = {
            name: run_campaign(implementations[name], config).summary_row()
            for name in DESIGN_ORDER}

        report = run_scenario("table3-fir", flow_cache=flow_store, **TINY)
        for name in DESIGN_ORDER:
            campaign = report["designs"][name]["campaign"]
            assert campaign["injected"] == expected[name]["injected"]
            assert campaign["wrong"] == expected[name]["wrong"]
            assert campaign["wrong_percent"] == \
                expected[name]["wrong_percent"]

    def test_report_schema_and_provenance(self, flow_store):
        report = run_scenario("table3-fir", flow_cache=flow_store, **TINY)
        assert report["schema"] == REPORT_SCHEMA
        assert report["scenario"] == "table3-fir"
        assert report["seed"] == 2005
        assert report["backend"] == "serial"
        assert report["upset_model"] == "single"
        assert set(report["tool_version"]) == {"repro", "flow", "python"}
        assert [stage["name"] for stage in report["stages"]] == \
            ["build", "implement", "campaign", "analyze"]
        for stage in report["stages"]:
            int(stage["fingerprint"], 16)  # hex chain key
            assert stage["seconds"] >= 0
        campaign = report["designs"]["TMR_p2"]["campaign"]
        # one uniform snake_case schema with full provenance everywhere
        assert {"injected", "wrong", "wrong_percent", "backend", "seed",
                "upset_model", "fault_list_mode", "effects"} <= set(campaign)
        derived = report["derived"]["table3"]
        assert "paper_wrong_percent" in derived

    def test_reports_are_deterministic(self, flow_store):
        first = stable_report(run_scenario("mbu-fir", flow_cache=flow_store,
                                           **TINY))
        second = stable_report(run_scenario("mbu-fir", flow_cache=flow_store,
                                            **TINY))
        assert json.dumps(first, sort_keys=True, default=str) == \
            json.dumps(second, sort_keys=True, default=str)

    def test_stage_fingerprints_shift_with_inputs(self, flow_store):
        base = run_scenario("table3-fir", flow_cache=flow_store, **TINY)
        reseeded = run_scenario("table3-fir", scale="tiny", num_faults=24,
                                seed=7, flow_cache=flow_store)
        stages = {s["name"]: s["fingerprint"] for s in base["stages"]}
        reseeded_stages = {s["name"]: s["fingerprint"]
                           for s in reseeded["stages"]}
        assert stages["build"] == reseeded_stages["build"]
        assert stages["implement"] == reseeded_stages["implement"]
        assert stages["campaign"] != reseeded_stages["campaign"]

    def test_flow_cache_reuse_across_repeats(self, tmp_path):
        report = run_scenario("table3-fir", flow_cache=tmp_path / "flow",
                              repeat=2, **TINY)
        assert report["repeat"] == 2
        stages = {stage["name"]: stage for stage in report["stages"]}
        implement = stages["implement"]["cache"]
        assert implement["hits"] == len(report["designs"])
        assert implement["misses"] == 0
        campaign = stages["campaign"]["cache"]
        assert campaign["golden_hits"] > 0
        assert campaign["effect_hits"] > 0

    def test_matrix_scenario_reports_per_variant(self, flow_store):
        report = run_scenario("upset-matrix", flow_cache=flow_store, **TINY)
        assert set(report["runs"]) == {
            "upset_model=single", "upset_model=mbu:2",
            "upset_model=accumulate:4"}
        for variant, sub in report["runs"].items():
            assert sub["schema"] == REPORT_SCHEMA
            assert set(sub["designs"]) == {"standard", "TMR_p2"}
            for entry in sub["designs"].values():
                assert entry["campaign"]["upset_model"] == \
                    variant.split("=", 1)[1]

    def test_backend_matrix_variants_agree(self, flow_store):
        report = run_scenario("backend-matrix", designs=("standard",),
                              flow_cache=flow_store, **TINY)
        rows = [sub["designs"]["standard"]["campaign"]
                for sub in report["runs"].values()]
        reference = {key: rows[0][key]
                     for key in ("injected", "wrong", "wrong_percent")}
        for row in rows[1:]:
            assert {key: row[key] for key in reference} == reference

    def test_partition_shortlist_derives_designs(self):
        report = run_scenario("partition-shortlist", **TINY)
        names = set(report["designs"])
        assert "standard" in names
        shortlisted = [name for name in names
                       if name.startswith("TMR_shortlist")]
        assert shortlisted
        for name in shortlisted:
            assert "campaign" in report["designs"][name]
        # stable across runs (memoized suite keeps generated names fixed)
        again = run_scenario("partition-shortlist", **TINY)
        assert set(again["designs"]) == names

    def test_partition_shortlist_honours_design_restriction(self):
        report = run_scenario("partition-shortlist",
                              designs=("standard",), **TINY)
        assert set(report["designs"]) == {"standard"}

    def test_markdown_rendering(self, flow_store):
        report = run_scenario("table3-fir", flow_cache=flow_store, **TINY)
        text = render_markdown(report)
        assert "# Scenario `table3-fir`" in text
        assert "| design |" in text
        assert "### stages" in text
        matrix = render_markdown(run_scenario("upset-matrix",
                                              flow_cache=flow_store, **TINY))
        assert "## Variant `upset_model=mbu:2`" in matrix


class TestDriverParity:
    def test_run_table3_equals_scenario(self, flow_store):
        from repro.experiments import DESIGN_ORDER, run_table3

        results = run_table3(scale="tiny", num_faults=TINY["num_faults"],
                             flow_cache=flow_store)
        report = run_scenario("table3-fir", flow_cache=flow_store, **TINY)
        for name in DESIGN_ORDER:
            row = results[name].summary_row()
            campaign = report["designs"][name]["campaign"]
            assert (campaign["injected"], campaign["wrong"]) == \
                (row["injected"], row["wrong"])

    def test_run_table2_matches_resources_analysis(self, flow_store):
        from repro.experiments import run_table2

        table = run_table2(scale="tiny", flow_cache=flow_store)
        report = run_scenario("table2-fir", scale="tiny",
                              flow_cache=flow_store)
        assert set(table) == set(report["derived"]["resources"])
        for name, entry in table.items():
            assert entry == report["derived"]["resources"][name]


class TestCommandLine:
    def test_run_json(self, capsys, flow_store):
        assert cli_main(["run", "table3-fir", "--scale", "tiny", "--faults",
                         "10", "--json", "--flow-cache", flow_store]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == REPORT_SCHEMA
        assert report["num_faults"] == 10
        assert report["scale"] == "tiny"

    def test_run_markdown_and_output(self, tmp_path, capsys, flow_store):
        output = tmp_path / "report.json"
        assert cli_main(["run", "mbu-fir", "--scale", "tiny", "--faults",
                         "10", "--design", "standard", "--output",
                         str(output), "--flow-cache", flow_store]) == 0
        text = capsys.readouterr().out
        assert "# Scenario `mbu-fir`" in text
        written = json.loads(output.read_text())
        assert written["upset_model"] == "mbu:2"
        assert set(written["designs"]) == {"standard"}

    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3-fir" in out and "upset-matrix" in out
        assert cli_main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["id"] for entry in payload} >= {"table3-fir",
                                                      "mbu-fir"}


class TestCustomScenario:
    def test_register_and_run_custom_scenario(self):
        scenario = Scenario(
            id="test-custom",
            title="custom",
            scale="tiny",
            designs=("standard",),
            backend="vector",
            upset_model="accumulate:3",
            num_faults=12,
            analyses=("table3",),
        )
        try:
            register_scenario(scenario)
            report = run_scenario("test-custom")
            campaign = report["designs"]["standard"]["campaign"]
            assert campaign["injected"] == 4  # ceil(12 / 3)
            assert campaign["upset_model"] == "accumulate:3"
        finally:
            SCENARIOS.pop("test-custom", None)

    def test_dataclass_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SCENARIOS["table3-fir"].scale = "paper"
