"""Levelized three-valued simulation of flat primitive netlists."""

from .bitparallel import (LaneOutcome, VectorProgram, VectorResult,
                          broadcast_inputs, broadcast_trace,
                          compile_vector_program, simulate_lanes)
from .compile import CompiledDesign, FaultCone, FlipFlop, Gate, PortBinding
from .npkernel import (NumpyProgram, broadcast_inputs_numpy,
                       broadcast_trace_numpy, compile_numpy_program,
                       have_numpy, simulate_lanes_numpy)
from .golden import (ComparisonResult, compare_traces, outputs_as_ints,
                     trace_matches_reference)
from .overlay import (BLEND_AND_NOT, BLEND_SHORT, BLEND_UNKNOWN,
                      BLEND_WIRED_AND, BLEND_WIRED_OR, SOURCE_BLEND,
                      SOURCE_CONST, SOURCE_NET, FaultOverlay, SourceOverride)
from .simulator import SimulationTrace, Simulator, simulate
from .vectors import (alternating, campaign_workload, impulse, random_samples,
                      signed_range, step, stimulus_from_samples,
                      tmr_stimulus_from_samples)

__all__ = [
    "LaneOutcome", "VectorProgram", "VectorResult", "broadcast_inputs",
    "broadcast_trace", "compile_vector_program", "simulate_lanes",
    "NumpyProgram", "broadcast_inputs_numpy", "broadcast_trace_numpy",
    "compile_numpy_program", "have_numpy", "simulate_lanes_numpy",
    "CompiledDesign", "FaultCone", "FlipFlop", "Gate", "PortBinding",
    "ComparisonResult", "compare_traces", "outputs_as_ints",
    "trace_matches_reference", "BLEND_AND_NOT", "BLEND_SHORT",
    "BLEND_UNKNOWN", "BLEND_WIRED_AND",
    "BLEND_WIRED_OR", "SOURCE_BLEND", "SOURCE_CONST", "SOURCE_NET",
    "FaultOverlay", "SourceOverride", "SimulationTrace", "Simulator",
    "simulate", "alternating", "campaign_workload", "impulse",
    "random_samples", "signed_range", "step", "stimulus_from_samples",
    "tmr_stimulus_from_samples",
]
