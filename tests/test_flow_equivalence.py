"""The fast implementation flow is bit-identical to the seed flow.

The router, annealer and bit-statistics pass were rewritten for speed
(integer-indexed routing graph, incremental move deltas, memoized PIP
fan-in tables).  These tests pin the rewrite to the seed algorithms kept
in :mod:`repro.pnr.reference`: same placements, same route trees, same
Table 2 bit accounting — so every table and campaign number of the paper
reproduction is unchanged by the optimization.
"""

import pytest

from repro.fpga import device_by_name
from repro.fpga.routing import (clear_routing_graph_cache, downhill,
                                routing_graph)
from repro.netlist import flatten
from repro.pnr import netlist_fingerprint, pack, place, route_design
from repro.pnr.reference import (reference_bit_stats, reference_place,
                                 reference_route_design)


@pytest.fixture(scope="module")
def tmr_flat(tiny_fir, tiny_tmr_suite):
    netlist, _spec, _top, _components = tiny_fir
    return flatten(netlist, tiny_tmr_suite["p2"].definition,
                   flat_name="fir_tiny_p2_equiv")


@pytest.fixture(scope="module")
def suite_flats(tiny_fir, tiny_tmr_suite):
    """All five design versions of the tiny filter, flattened."""
    netlist, _spec, top, _components = tiny_fir
    flats = {"standard": flatten(netlist, top, flat_name="fir_tiny_std_eq")}
    for name, result in tiny_tmr_suite.items():
        flats[name] = flatten(netlist, result.definition,
                              flat_name=f"fir_tiny_{name}_eq")
    return flats


class TestRoutingGraph:
    def test_ids_follow_sorted_tuple_order(self, small_device):
        graph = routing_graph(small_device)
        assert graph.nodes == sorted(graph.nodes)
        assert all(graph.node_id[node] == index
                   for index, node in enumerate(graph.nodes))

    def test_adjacency_preserves_downhill_order(self, small_device):
        graph = routing_graph(small_device)
        for node in (("opin", 1, 1, "X"), ("wire", 1, 1, "N", 0),
                     ("pad_o", 0)):
            expected = [graph.node_id[neighbor]
                        for neighbor in downhill(small_device, node)]
            assert graph.downhill_ids(graph.node_id[node]) == expected

    def test_graph_memoized_per_spec(self, small_device):
        assert routing_graph(small_device) is routing_graph(small_device)
        other = device_by_name("XC2S15E")
        assert routing_graph(other) is routing_graph(small_device)
        clear_routing_graph_cache()
        assert routing_graph(small_device) is not None


class TestPlacementEquivalence:
    @pytest.mark.parametrize("moves", [0, 10, 40])
    def test_place_matches_reference(self, tiny_fir_flat, small_device,
                                     moves):
        packed = pack(tiny_fir_flat)
        fast = place(tiny_fir_flat, packed, small_device, seed=3,
                     anneal_moves_per_slice=moves)
        seed = reference_place(tiny_fir_flat, packed, small_device, seed=3,
                               anneal_moves_per_slice=moves)
        assert fast.slice_tiles == seed.slice_tiles
        assert fast.port_pads == seed.port_pads
        assert fast.cell_tiles == seed.cell_tiles
        assert fast.wirelength == seed.wirelength

    def test_tmr_place_matches_reference(self, tmr_flat):
        device = device_by_name("XC2S50E")
        packed = pack(tmr_flat)
        fast = place(tmr_flat, packed, device, seed=1,
                     anneal_moves_per_slice=6)
        seed = reference_place(tmr_flat, packed, device, seed=1,
                               anneal_moves_per_slice=6)
        assert fast.slice_tiles == seed.slice_tiles
        assert fast.wirelength == seed.wirelength


class TestPartitionedPlacement:
    """Determinism contract of the partition-parallel annealer.

    *partitions* is a result-determining flow knob; *threads* only
    schedules the region sweeps.  ``partitions=1`` must stay
    bit-identical to the single-stream annealer, and any thread count
    must reproduce the same placement at a fixed (seed, partitions).
    """

    def _fingerprint(self, placement):
        return (placement.slice_tiles, placement.port_pads,
                placement.cell_tiles, placement.wirelength)

    def test_partitions_one_matches_single_stream(self, tmr_flat):
        device = device_by_name("XC2S50E")
        packed = pack(tmr_flat)
        base = place(tmr_flat, packed, device, seed=5,
                     anneal_moves_per_slice=6)
        for threads in (1, 4):
            partitioned = place(tmr_flat, packed, device, seed=5,
                                anneal_moves_per_slice=6, partitions=1,
                                threads=threads)
            assert self._fingerprint(partitioned) == \
                self._fingerprint(base)

    @pytest.mark.parametrize("seed", [1, 9])
    @pytest.mark.parametrize("partitions", [2, 4])
    def test_identical_across_thread_counts(self, tmr_flat, seed,
                                            partitions):
        device = device_by_name("XC2S50E")
        packed = pack(tmr_flat)
        fingerprints = []
        for threads in (1, 2, 4):
            placement = place(tmr_flat, packed, device, seed=seed,
                              anneal_moves_per_slice=6,
                              partitions=partitions, threads=threads)
            fingerprints.append(self._fingerprint(placement))
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    def test_anneal_info_records_mode(self, tiny_fir_flat, small_device):
        packed = pack(tiny_fir_flat)
        placement = place(tiny_fir_flat, packed, small_device, seed=2,
                          anneal_moves_per_slice=3)
        assert placement.anneal_info.get("mode") == "serial"
        partitioned = place(tiny_fir_flat, packed, small_device, seed=2,
                            anneal_moves_per_slice=3, partitions=2,
                            threads=2)
        # The tiny design sits under the pool floor, so the guard must
        # have routed it through the serial partition sweep.
        assert partitioned.anneal_info.get("mode") == \
            "partitioned-serial"


class TestRoutingEquivalence:
    def _assert_same_routing(self, fast, seed):
        assert fast.routes.keys() == seed.routes.keys()
        for name, tree in fast.routes.items():
            reference_tree = seed.routes[name]
            assert tree.source == reference_tree.source
            assert tree.parent == reference_tree.parent
            assert tree.sinks == reference_tree.sinks
        assert fast.node_owner == seed.node_owner
        assert fast.pip_owner == seed.pip_owner
        assert fast.iterations == seed.iterations
        assert fast.total_wirelength == seed.total_wirelength
        assert [s.name for s in fast.skipped] == \
            [s.name for s in seed.skipped]

    def test_route_matches_reference(self, tiny_fir_flat, small_device):
        packed = pack(tiny_fir_flat)
        placement = place(tiny_fir_flat, packed, small_device, seed=1,
                          anneal_moves_per_slice=2)
        fast = route_design(tiny_fir_flat, packed, placement, small_device,
                            max_iterations=20)
        seed = reference_route_design(tiny_fir_flat, packed, placement,
                                      small_device, max_iterations=20)
        self._assert_same_routing(fast, seed)

    def test_tmr_route_matches_reference(self, tmr_flat):
        # The TMR netlist congests the fabric enough to exercise several
        # negotiation iterations (rip-up, history costs, wider windows).
        device = device_by_name("XC2S50E")
        packed = pack(tmr_flat)
        placement = place(tmr_flat, packed, device, seed=1,
                          anneal_moves_per_slice=2)
        fast = route_design(tmr_flat, packed, placement, device,
                            max_iterations=20)
        seed = reference_route_design(tmr_flat, packed, placement, device,
                                      max_iterations=20)
        self._assert_same_routing(fast, seed)

    @pytest.mark.parametrize("name", ["standard", "p1", "p2", "p3",
                                      "p3_nv"])
    def test_batched_route_matches_reference_all_designs(self, suite_flats,
                                                         name):
        # Every design version of the suite — the unprotected filter and
        # all four TMR partitions — routes bit-identically through the
        # batched wavefront router and the seed single-net router.
        flat = suite_flats[name]
        device = device_by_name("XC2S50E")
        packed = pack(flat)
        placement = place(flat, packed, device, seed=1,
                          anneal_moves_per_slice=2)
        fast = route_design(flat, packed, placement, device,
                            max_iterations=20)
        seed = reference_route_design(flat, packed, placement, device,
                                      max_iterations=20)
        self._assert_same_routing(fast, seed)


class TestBitStatsEquivalence:
    def test_stats_match_reference(self, tiny_fir_implementation):
        implementation = tiny_fir_implementation
        seed = reference_bit_stats(
            implementation.device, implementation.layout,
            implementation.resources.lut_sites,
            implementation.resources.ff_sites,
            implementation.resources.used_slices,
            implementation.routing)
        assert implementation.resources.stats == seed


class TestDeterminism:
    def test_identical_rebuild_identical_fingerprint_and_routes(self):
        from repro.netlist import Netlist
        from repro.pnr import implement
        from repro.rtl import FirSpec, build_fir

        def build():
            netlist = Netlist("determinism")
            spec = FirSpec.scaled(3, 4, name="fir_det")
            top, _components = build_fir(netlist, spec)
            return flatten(netlist, top, flat_name="fir_det_flat")

        first, second = build(), build()
        assert netlist_fingerprint(first) == netlist_fingerprint(second)

        device = device_by_name("XC2S15E")
        impl_a = implement(first, device, seed=7, anneal_moves_per_slice=3)
        impl_b = implement(second, device, seed=7, anneal_moves_per_slice=3)
        assert impl_a.placement.slice_tiles == impl_b.placement.slice_tiles
        assert {n: t.parent for n, t in impl_a.routing.routes.items()} == \
            {n: t.parent for n, t in impl_b.routing.routes.items()}
        assert bytes(impl_a.bitstream.bits) == bytes(impl_b.bitstream.bits)

    def test_seed_changes_routes(self):
        from repro.netlist import Netlist
        from repro.pnr import flow_fingerprint, implement
        from repro.rtl import FirSpec, build_fir

        netlist = Netlist("determinism2")
        spec = FirSpec.scaled(3, 4, name="fir_det2")
        top, _components = build_fir(netlist, spec)
        flat = flatten(netlist, top, flat_name="fir_det2_flat")
        device = device_by_name("XC2S15E")
        assert flow_fingerprint(flat, device, seed=1) != \
            flow_fingerprint(flat, device, seed=2)
