"""Construction of the five filter versions evaluated in the paper.

``build_design_suite`` produces, for a chosen scale, the unprotected filter
and the four TMR versions (maximum / medium / minimum partition and minimum
partition without voted registers), optimizes and flattens them, and
``implement_design_suite`` places and routes each one on an appropriate
device profile.  Every experiment driver (Tables 2-4, figures, ablations)
starts from these two functions so that all results refer to the same
implementations.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..core import (AllComponents, ByComponentType, NoPartition, TMRConfig,
                    TMRResult, apply_tmr)
from ..fpga import Device, device_by_name
from ..netlist import Definition, Netlist, flatten
from ..pnr import Floorplan, Implementation, implement
from ..pnr.artifacts import StoreLike, flow_fingerprint, resolve_store
from ..rtl import FirComponents, FirSpec, build_fir
from ..techmap import merge_luts, remove_buffer_luts

#: Canonical design names, in the paper's presentation order.
DESIGN_ORDER = ("standard", "TMR_p1", "TMR_p2", "TMR_p3", "TMR_p3_nv")

#: Wrong-answer percentages reported by the paper (Table 3), for reference
#: columns in reports and for shape checks in the benchmarks.
PAPER_TABLE3_PERCENT = {
    "standard": 97.10,
    "TMR_p1": 4.03,
    "TMR_p2": 0.98,
    "TMR_p3": 1.56,
    "TMR_p3_nv": 12.60,
}

#: Slice counts reported by the paper (Table 2).
PAPER_TABLE2_SLICES = {
    "standard": 150,
    "TMR_p1": 560,
    "TMR_p2": 504,
    "TMR_p3": 498,
    "TMR_p3_nv": 476,
}

#: Estimated performance reported by the paper (Table 2), in MHz.
PAPER_TABLE2_FMAX = {
    "standard": 154.0,
    "TMR_p1": 123.0,
    "TMR_p2": 137.0,
    "TMR_p3": 153.0,
    "TMR_p3_nv": 154.0,
}

#: Error-causing effect counts from the paper's Table 4 (for reference).
PAPER_TABLE4 = {
    "standard": {"LUT": 852, "MUX": 123, "Initialization": 174, "Open": 1321,
                 "Bridge": 427, "Input-Antenna": 76, "Conflict": 1342,
                 "Others": 1006},
    "TMR_p1": {"LUT": 0, "MUX": 16, "Initialization": 13, "Open": 276,
               "Bridge": 62, "Input-Antenna": 33, "Conflict": 26,
               "Others": 301},
    "TMR_p2": {"LUT": 0, "MUX": 1, "Initialization": 0, "Open": 82,
               "Bridge": 41, "Input-Antenna": 7, "Conflict": 13,
               "Others": 66},
    "TMR_p3": {"LUT": 0, "MUX": 15, "Initialization": 11, "Open": 126,
               "Bridge": 42, "Input-Antenna": 14, "Conflict": 6,
               "Others": 128},
    "TMR_p3_nv": {"LUT": 0, "MUX": 367, "Initialization": 400, "Open": 1672,
                  "Bridge": 403, "Input-Antenna": 73, "Conflict": 185,
                  "Others": 756},
}


@dataclasses.dataclass(frozen=True)
class Scale:
    """One experiment scale: filter size plus device profiles."""

    name: str
    taps: int
    data_width: int
    standard_device: str
    tmr_device: str
    #: default number of injected faults per campaign at this scale
    campaign_faults: int
    #: default workload length
    workload_cycles: int
    #: simulated-annealing effort during placement
    anneal_moves_per_slice: int = 2


SCALES: Dict[str, Scale] = {
    # The paper's filter: 11 taps, 9-bit samples.  TMR versions of our
    # LUT-only mapping (no carry chains) exceed the XC2S200E array, so they
    # are implemented on the larger family member; Table 2 therefore
    # over-estimates absolute areas while preserving relative overheads.
    "paper": Scale("paper", taps=11, data_width=9,
                   standard_device="XC2S200E", tmr_device="XC2S600E",
                   campaign_faults=6000, workload_cycles=16,
                   anneal_moves_per_slice=2),
    # The TMR versions of the 6-tap filter (TMR_p1: ~600 slices) route
    # reliably only on the larger family member — on the XC2S200E the
    # maximum partition exhausts the w=8 routing channels and the router
    # cannot resolve congestion at any utilization.
    "fast": Scale("fast", taps=6, data_width=6,
                  standard_device="XC2S50E", tmr_device="XC2S600E",
                  campaign_faults=2500, workload_cycles=12),
    "smoke": Scale("smoke", taps=4, data_width=5,
                   standard_device="XC2S15E", tmr_device="XC2S50E",
                   campaign_faults=400, workload_cycles=10),
    # Monte-Carlo scale: the smoke designs with a 10^6-injection draw.
    # The draw exceeds the programmable-bit population, so it covers
    # every bit once plus a reproducible with-replacement tail; duplicate
    # injections collapse onto shared lanes in the batched backends, which
    # is what makes a million injections tractable (numpy backend).
    "huge": Scale("huge", taps=4, data_width=5,
                  standard_device="XC2S15E", tmr_device="XC2S50E",
                  campaign_faults=1_000_000, workload_cycles=10),
    # Minimal configuration for unit tests and pipeline smoke matrices:
    # seconds per design end to end.
    "tiny": Scale("tiny", taps=3, data_width=4,
                  standard_device="XC2S15E", tmr_device="XC2S50E",
                  campaign_faults=80, workload_cycles=8),
}


def scale_by_name(name: str) -> Scale:
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(f"unknown scale {name!r}; available: "
                       + ", ".join(sorted(SCALES))) from None


def fir_spec_for(scale: Scale) -> FirSpec:
    """The FIR specification evaluated at a given scale."""
    if scale.name == "paper":
        return FirSpec.paper()
    return FirSpec.scaled(scale.taps, scale.data_width,
                          name=f"fir_{scale.name}")


@dataclasses.dataclass
class DesignSuite:
    """The five filter versions as flattened netlists."""

    scale: Scale
    spec: FirSpec
    netlist: Netlist
    source: Definition
    components: FirComponents
    #: design name -> flat definition ready for implementation
    flat: Dict[str, Definition]
    #: design name -> TMR transformation record (absent for "standard")
    tmr: Dict[str, TMRResult]
    #: whether :func:`build_design_suite` ran the netlist optimizer
    #: (recorded so parallel P&R workers can rebuild the same suite)
    optimized: bool = True


def tmr_configs() -> Dict[str, TMRConfig]:
    """The four TMR configurations evaluated in the paper (Figure 4)."""
    return {
        "TMR_p1": TMRConfig(partition=AllComponents(),
                            name_suffix="_tmr_p1"),
        "TMR_p2": TMRConfig(partition=ByComponentType(("adder",)),
                            name_suffix="_tmr_p2"),
        "TMR_p3": TMRConfig(partition=NoPartition(), name_suffix="_tmr_p3"),
        "TMR_p3_nv": TMRConfig(partition=NoPartition(), vote_registers=False,
                               name_suffix="_tmr_p3_nv"),
    }


def _optimize(flat: Definition, optimize: bool) -> Definition:
    if optimize:
        remove_buffer_luts(flat)
        merge_luts(flat, max_passes=4)
    return flat


def build_design_suite(scale: str = "fast", optimize: bool = True
                       ) -> DesignSuite:
    """Build and flatten the five filter versions at the requested scale."""
    scale_obj = scale_by_name(scale)
    spec = fir_spec_for(scale_obj)
    netlist = Netlist(f"fir_suite_{scale_obj.name}")
    source, components = build_fir(netlist, spec)

    flat: Dict[str, Definition] = {}
    tmr_results: Dict[str, TMRResult] = {}

    flat["standard"] = _optimize(
        flatten(netlist, source, flat_name=f"standard_{scale_obj.name}"),
        optimize)

    for name, config in tmr_configs().items():
        result = apply_tmr(netlist, source, config)
        tmr_results[name] = result
        flat[name] = _optimize(
            flatten(netlist, result.definition,
                    flat_name=f"{name}_{scale_obj.name}"), optimize)

    return DesignSuite(
        scale=scale_obj,
        spec=spec,
        netlist=netlist,
        source=source,
        components=components,
        flat=flat,
        tmr=tmr_results,
        optimized=optimize,
    )


def device_for(suite: DesignSuite, design_name: str) -> Device:
    profile = suite.scale.standard_device if design_name == "standard" \
        else suite.scale.tmr_device
    return device_by_name(profile)


def _suite_floorplan(device: Device, name: str,
                     floorplan_domains: bool) -> Optional[Floorplan]:
    if floorplan_domains and name != "standard":
        return Floorplan.vertical_thirds(device)
    return None


def _implement_suite_worker(scale: str, optimize: bool, name: str,
                            floorplan_domains: bool, seed: int,
                            expected_fingerprint: str,
                            partitions: int = 1,
                            threads: Optional[int] = None,
                            ) -> Tuple[str, Optional[Implementation]]:
    """Implement one suite design in a worker process.

    The flat netlist graph is deeply recursive and does not pickle, so the
    worker rebuilds the suite from its (scale, optimize) recipe instead of
    receiving the definition.  The rebuilt netlist must fingerprint to the
    value the parent computed — a mismatch (a nondeterministic build, or a
    caller-constructed suite the recipe cannot reproduce) returns ``None``
    and the parent falls back to implementing that design in-process.  The
    returned implementation travels without its netlist; the parent
    re-attaches its own definition.
    """
    suite = build_design_suite(scale, optimize=optimize)
    definition = suite.flat[name]
    device = device_for(suite, name)
    floorplan = _suite_floorplan(device, name, floorplan_domains)
    fingerprint = flow_fingerprint(
        definition, device, seed=seed, floorplan=floorplan,
        anneal_moves_per_slice=suite.scale.anneal_moves_per_slice,
        partitions=partitions)
    if fingerprint != expected_fingerprint:
        return name, None
    implementation = implement(
        definition, device, seed=seed, floorplan=floorplan,
        anneal_moves_per_slice=suite.scale.anneal_moves_per_slice,
        partitions=partitions, threads=threads)
    return name, dataclasses.replace(implementation, design=None)


def implement_design_suite(suite: DesignSuite,
                           designs: Optional[List[str]] = None,
                           floorplan_domains: bool = False,
                           seed: int = 1,
                           jobs: int = 1,
                           artifact_store: StoreLike = None,
                           partitions: int = 1,
                           threads: Optional[int] = None,
                           ) -> Dict[str, Implementation]:
    """Place and route the selected design versions.

    *artifact_store* (a directory path or
    :class:`~repro.pnr.FlowArtifactStore`) consults the persistent flow
    cache first and stores fresh implementations back, so a second run of
    any experiment CLI skips place-and-route entirely.  *jobs* implements
    cache-missing designs in that many parallel worker processes (the five
    suite designs are independent); results are bit-identical to the
    serial flow in either case.  *partitions*/*threads* select and
    schedule the partition-parallel annealer exactly as in
    :func:`repro.pnr.flow.implement` (partitions is fingerprinted,
    threads is not).
    """
    names = list(designs) if designs is not None else list(DESIGN_ORDER)
    store = resolve_store(artifact_store)

    fingerprints: Dict[str, str] = {}
    implementations: Dict[str, Optional[Implementation]] = {}
    pending: List[str] = []
    for name in names:
        definition = suite.flat[name]
        device = device_for(suite, name)
        floorplan = _suite_floorplan(device, name, floorplan_domains)
        fingerprints[name] = flow_fingerprint(
            definition, device, seed=seed, floorplan=floorplan,
            anneal_moves_per_slice=suite.scale.anneal_moves_per_slice,
            partitions=partitions)
        cached = store.load(fingerprints[name], definition) \
            if store is not None else None
        implementations[name] = cached
        if cached is None:
            pending.append(name)

    if len(pending) > 1 and jobs > 1:
        implementations.update(
            _implement_parallel(suite, pending, floorplan_domains, seed,
                                jobs, fingerprints, partitions, threads))

    for name in pending:
        if implementations[name] is not None:
            continue
        definition = suite.flat[name]
        device = device_for(suite, name)
        floorplan = _suite_floorplan(device, name, floorplan_domains)
        implementations[name] = implement(
            definition, device, seed=seed, floorplan=floorplan,
            anneal_moves_per_slice=suite.scale.anneal_moves_per_slice,
            partitions=partitions, threads=threads)

    if store is not None:
        for name in pending:
            if implementations[name] is not None:
                store.store(fingerprints[name], implementations[name])

    return {name: implementations[name] for name in names}


def _implement_parallel(suite: DesignSuite, pending: List[str],
                        floorplan_domains: bool, seed: int, jobs: int,
                        fingerprints: Dict[str, str],
                        partitions: int = 1,
                        threads: Optional[int] = None,
                        ) -> Dict[str, Implementation]:
    """Fan the cache-missing designs out over worker processes.

    Any worker failure (pickling quirks on an exotic start method, a
    fingerprint mismatch, a crashed interpreter) leaves the affected
    design unimplemented; the caller's serial pass picks it up, so
    parallelism is purely an accelerator and never a correctness risk.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:
        mp_context = multiprocessing.get_context()

    results: Dict[str, Implementation] = {}
    max_workers = max(1, min(jobs, len(pending)))
    try:
        with ProcessPoolExecutor(max_workers=max_workers,
                                 mp_context=mp_context) as pool:
            futures = [
                pool.submit(_implement_suite_worker, suite.scale.name,
                            suite.optimized, name, floorplan_domains, seed,
                            fingerprints[name], partitions, threads)
                for name in pending]
            for future in futures:
                name, implementation = future.result()
                if implementation is not None:
                    implementation.design = suite.flat[name]
                    results[name] = implementation
    except Exception:
        # Fall back to the serial path for everything not yet produced.
        pass
    return results
