"""State-machine-logic components: counters and accumulators.

The paper (Section 2) distinguishes *Throughput Logic* (the FIR filter) from
*State-machine Logic*, "any structure where a registered output ... is fed
back into any prior stage", for which voters in the feedback path are
mandatory so the system can recover by itself.  These generators provide the
state-machine examples used by the documentation and the extra experiments.
"""

from __future__ import annotations

from typing import Optional

from ..cells.library import shared_cell_library
from ..netlist.builder import NetlistBuilder
from ..netlist.ir import Definition, Library, Netlist, NetlistError
from ..techmap.gates import GateBuilder
from .arith import ripple_carry_adder


def up_counter(netlist: Netlist, width: int, name: Optional[str] = None,
               with_enable: bool = True,
               cell_library: Optional[Library] = None) -> Definition:
    """Build a wrap-around up counter with synchronous reset.

    Ports: ``C``, ``R`` (synchronous reset), optional ``CE``, output
    ``Q[width]``.  The increment is a half-adder chain; the register feedback
    loop makes this the canonical state-machine-logic example.
    """
    if width < 1:
        raise NetlistError("counter width must be >= 1")
    module_name = name if name is not None else f"counter{width}"
    existing = netlist.find_definition(module_name)
    if existing is not None:
        return existing
    cells = cell_library if cell_library is not None else shared_cell_library()
    builder = NetlistBuilder.new_module(netlist, module_name, "work", cells)
    gates = GateBuilder(builder)

    clock = builder.input("C", 1)[0]
    reset = builder.input("R", 1)[0]
    enable = builder.input("CE", 1)[0] if with_enable else None
    q = builder.output("Q", width)

    # next = q + 1 (half-adder chain)
    carry = builder.power()
    next_bits = []
    for bit in range(width):
        if bit < width - 1:
            total, carry = gates.half_adder(q[bit], carry)
        else:
            total = gates.xor2(q[bit], carry)
        next_bits.append(total)

    for bit in range(width):
        connections = {"C": clock, "D": next_bits[bit], "R": reset,
                       "Q": q[bit]}
        if with_enable:
            builder.instantiate("FDRE", f"ff_{bit}", CE=enable, **connections)
        else:
            builder.instantiate("FDR", f"ff_{bit}", **connections)
    return builder.finish()


def accumulator(netlist: Netlist, data_width: int, acc_width: int,
                name: Optional[str] = None,
                cell_library: Optional[Library] = None) -> Definition:
    """Build an accumulator ``acc <= acc + DIN`` with synchronous reset.

    Ports: ``C``, ``R``, ``DIN[data_width]``, ``Q[acc_width]``.  The adder is
    instantiated as a separate component so TMR partitioning can place a
    voter between the adder and the state register.
    """
    if acc_width < data_width:
        raise NetlistError("accumulator width must be >= data width")
    module_name = name if name is not None else f"acc{data_width}_{acc_width}"
    existing = netlist.find_definition(module_name)
    if existing is not None:
        return existing
    cells = cell_library if cell_library is not None else shared_cell_library()
    builder = NetlistBuilder.new_module(netlist, module_name, "work", cells)

    clock = builder.input("C", 1)[0]
    reset = builder.input("R", 1)[0]
    din = builder.input("DIN", data_width)
    q = builder.output("Q", acc_width)

    # Sign-extend DIN to the accumulator width (pure wiring).
    extended = list(din) + [din[data_width - 1]] * (acc_width - data_width)

    adder_def = ripple_carry_adder(netlist, acc_width, cell_library=cells)
    total = builder.bus("sum", acc_width)
    adder = builder.submodule(adder_def, "acc_adder", A=list(q), B=extended,
                              S=total)
    adder.properties["component"] = "adder"

    for bit in range(acc_width):
        builder.instantiate("FDR", f"ff_{bit}", C=clock, R=reset,
                            D=total[bit], Q=q[bit])
    return builder.finish()


def counter_reference(width: int, cycles: int, enable_pattern=None,
                      reset_pattern=None) -> list:
    """Behavioural model of :func:`up_counter` for test comparison.

    Returns the Q value visible *during* each cycle (before that cycle's
    clock edge).
    """
    mask = (1 << width) - 1
    state = 0
    outputs = []
    for cycle in range(cycles):
        outputs.append(state)
        enable = 1 if enable_pattern is None else enable_pattern[cycle]
        reset = 0 if reset_pattern is None else reset_pattern[cycle]
        if reset:
            state = 0
        elif enable:
            state = (state + 1) & mask
    return outputs
