"""repro.devtools.lint — AST-based invariant analyzer.

Four checker families guard the invariants the campaign service is
built on:

* **D** (determinism) — unsorted filesystem iteration, set-order
  leakage, salted ``hash()``, wall-clock reads, global random.
* **C** (concurrency) — unlocked shared-state mutation (the PR-7
  ``TierStats`` lost-update class), blocking calls in ``async def``.
* **A** (atomicity) — raw writes bypassing the temp-file +
  ``os.replace`` durability pattern.
* **P** (picklability/API) — backend payload dataclasses that are not
  frozen+slots; ``_PUBLIC_API`` lazy-export drift.

Intentional exceptions live in ``lint-baseline.toml`` and must carry a
justification; unused or unjustified waivers are findings themselves.

Run it with ``python -m repro.devtools.lint src/``.
"""

from .baseline import BaselineError, Waiver, apply_baseline, load_baseline
from .cli import main
from .model import FAMILIES, Finding, LintConfig, RULES, Rule
from .runner import (LintReport, iter_python_files, lint_file,
                     render_json, render_rules, render_text, run_lint)

__all__ = [
    "BaselineError", "FAMILIES", "Finding", "LintConfig", "LintReport",
    "RULES", "Rule", "Waiver", "apply_baseline", "iter_python_files",
    "lint_file", "load_baseline", "main", "render_json", "render_rules",
    "render_text", "run_lint",
]
