"""Quickstart: build a design, triplicate it, and watch a voter mask a fault.

This example walks the core API end to end on a small accumulator:

1. generate a structural netlist (``repro.rtl``);
2. apply TMR with a medium voter partition (``repro.core``);
3. flatten and simulate both versions (``repro.sim``);
4. corrupt one redundant domain and confirm the voters mask the error.

Run with ``python examples/quickstart.py``.
"""

from repro.core import ByComponentType, TMRConfig, apply_tmr, voter_instances
from repro.netlist import Netlist, flatten
from repro.rtl import accumulator
from repro.sim import (CompiledDesign, FaultOverlay, Simulator,
                       random_samples)


def main() -> None:
    # 1. Build an 8-bit accumulator with a 4-bit input.
    netlist = Netlist("quickstart")
    design = accumulator(netlist, data_width=4, acc_width=8)
    netlist.set_top(design)
    print(f"built {design.name}: {sum(design.count_primitives().values())} "
          f"primitive cells")

    # 2. Triplicate it; vote the adder outputs and the state registers.
    config = TMRConfig(partition=ByComponentType(("adder",)))
    tmr = apply_tmr(netlist, design, config)
    print(f"TMR version: {tmr.voter_count} voter LUTs "
          f"({tmr.voters_by_role})")

    # 3. Flatten and simulate both versions with the same input stream.
    flat_plain = flatten(netlist, design, flat_name="acc_flat")
    flat_tmr = flatten(netlist, tmr.definition, flat_name="acc_tmr_flat")
    samples = random_samples(8, 4, seed=1)
    plain_stimulus = [{"DIN": sample, "R": 0} for sample in samples]
    tmr_stimulus = [{f"DIN_tr{d}": sample for d in range(3)}
                    | {f"R_tr{d}": 0 for d in range(3)}
                    for sample in samples]

    plain = Simulator(CompiledDesign(flat_plain)).run(plain_stimulus)
    compiled_tmr = CompiledDesign(flat_tmr)
    golden = Simulator(compiled_tmr).run(tmr_stimulus)
    print("accumulator output:", plain.output_ints("Q"))
    assert golden.output_ints("Q") == plain.output_ints("Q")

    # 4. Corrupt a LUT in redundant domain 0: the voters mask it.
    victim = next(gate for gate in compiled_tmr.gates
                  if gate.instance.properties.get("domain") == 0
                  and not gate.instance.properties.get("voter")
                  and gate.num_inputs >= 2)
    overlay = FaultOverlay(
        description=f"SEU in {victim.name}",
        lut_init_overrides={victim.index: victim.init ^ 0xFFFF})
    faulty = Simulator(compiled_tmr, overlay).run(tmr_stimulus)
    masked = faulty.output_ints("Q") == golden.output_ints("Q")
    print(f"fault injected in domain 0 ({victim.name}); "
          f"masked by the voters: {masked}")
    assert masked

    print(f"voters present: {len(voter_instances(tmr.definition))}")
    print("quickstart complete")


if __name__ == "__main__":
    main()
