"""The paper's contribution: TMR insertion with optimal voter partitioning."""

from .analysis import (DomainIsolationReport, RobustnessEstimate,
                       VoterRegionReport, check_domain_isolation,
                       compute_voter_regions, cross_domain_signal_pairs,
                       domain_of_instance, domain_of_net, estimate_robustness)
from .optimizer import (CandidateEvaluation, SweepResult, default_candidates,
                        pareto_front, sweep_partitions)
from .partition import (AllComponents, ByComponentType, EveryKth,
                        ExplicitPartition, NoPartition, PartitionStrategy,
                        combinational_components, component_topological_order,
                        is_register_component, register_components,
                        strategy_from_name)
from .tmr import (DEFAULT_CLOCK_PORTS, DOMAIN_SUFFIXES, NUM_DOMAINS,
                  TMRConfig, TMRResult, apply_tmr, domain_of)
from .voters import (DOMAIN_PROPERTY, VOTED_NET_PROPERTY, VOTER_PROPERTY,
                     build_voted_register, count_voters,
                     insert_majority_voter, is_voter, majority_vote_values,
                     voter_instances)

__all__ = [
    "DomainIsolationReport", "RobustnessEstimate", "VoterRegionReport",
    "check_domain_isolation", "compute_voter_regions",
    "cross_domain_signal_pairs", "domain_of_instance", "domain_of_net",
    "estimate_robustness", "CandidateEvaluation", "SweepResult",
    "default_candidates", "pareto_front", "sweep_partitions",
    "AllComponents", "ByComponentType", "EveryKth", "ExplicitPartition",
    "NoPartition", "PartitionStrategy", "combinational_components",
    "component_topological_order", "is_register_component",
    "register_components", "strategy_from_name", "DEFAULT_CLOCK_PORTS",
    "DOMAIN_SUFFIXES", "NUM_DOMAINS", "TMRConfig", "TMRResult", "apply_tmr",
    "domain_of", "DOMAIN_PROPERTY", "VOTED_NET_PROPERTY", "VOTER_PROPERTY",
    "build_voted_register", "count_voters", "insert_majority_voter",
    "is_voter", "majority_vote_values", "voter_instances",
]
