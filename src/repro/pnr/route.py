"""Negotiated-congestion routing over the device's PIP graph.

The router follows the PathFinder recipe: every net is routed with an A*
search over the routing-resource graph, sharing of a wire by several nets is
initially tolerated but progressively penalized (present congestion cost) and
remembered (history cost), and offending nets are ripped up and rerouted
until no wire is overused.  The result records, per net, the route tree
(parent pointers, used PIPs and the path serving every sink), which is what
bitstream generation and the routing-fault models consume.
"""

from __future__ import annotations

import dataclasses
import heapq
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..cells.library import FF_CELLS, LUT_CELLS
from ..fpga.device import (FF_DATA_PIN, FF_OUTPUT_PIN, FF_PAIRED_LUT,
                           LUT_INPUT_PIN, LUT_OUTPUT_PIN, Device)
from ..fpga.routing import (Node, Pip, RoutingGraph, pad_input, pad_output,
                            ipin, opin, routing_graph)
from ..netlist.ir import Definition, InstancePin, Net, TopPin
from .pack import PackResult, VIRTUAL_CELLS
from .place import Placement


class RoutingError(Exception):
    """Raised when the router cannot legally route the design."""


@dataclasses.dataclass
class SinkSpec:
    """One routable sink of a net."""

    node: Node
    cell: Optional[str]          # flat cell name (None for top-level ports)
    port: Optional[str]          # cell port (e.g. "I2", "D") or port name
    bit: int = 0


@dataclasses.dataclass
class NetRequest:
    """A net the router must realise."""

    name: str
    source: Node
    sinks: List[SinkSpec]


@dataclasses.dataclass
class RouteTree:
    """The routed tree of one net."""

    net: str
    source: Node
    #: node -> parent node (source has no entry)
    parent: Dict[Node, Node]
    #: sink node -> SinkSpec
    sinks: Dict[Node, SinkSpec]

    def pips(self) -> Set[Pip]:
        return {(parent, node) for node, parent in self.parent.items()}

    def nodes(self) -> Set[Node]:
        # Memoized like children(): the routing-fault models probe node
        # membership once per candidate bridge/conflict bit, and trees
        # are immutable once the router returns them.  Callers must not
        # mutate the returned set.
        result = self.__dict__.get("_nodes")
        if result is None:
            result = set(self.parent)
            result.add(self.source)
            self._nodes = result
        return result

    def path_to(self, sink: Node) -> List[Node]:
        """Nodes from the source to *sink* (inclusive)."""
        path = [sink]
        current = sink
        while current in self.parent:
            current = self.parent[current]
            path.append(current)
        path.reverse()
        return path

    def children(self) -> Dict[Node, List[Node]]:
        """Child adjacency of the tree (node -> direct children).

        Built once per tree and memoized: the routing-fault models query
        :meth:`sinks_through` for every open/bridge/conflict upset of a
        net, and walking each sink's parent chain per query is quadratic
        on high-fanout nets.  The memo never goes stale because route
        trees are immutable once the router returns them.
        """
        children = self.__dict__.get("_children")
        if children is None:
            children = {}
            for node, parent in self.parent.items():
                children.setdefault(parent, []).append(node)
            self._children = children
        return children

    def sinks_through(self, node: Node) -> List[SinkSpec]:
        """Sinks whose path from the source passes through *node*.

        Memoized per node: the fault models ask the same question for
        every candidate PIP bit landing on a node, which on dense tiles
        repeats the subtree walk hundreds of times.  Callers must not
        mutate the returned list.
        """
        memo = self.__dict__.get("_sinks_through")
        if memo is None:
            memo = {}
            self._sinks_through = memo
        cached = memo.get(node)
        if cached is not None:
            return cached
        if node != self.source and node not in self.parent:
            memo[node] = []
            return memo[node]
        children = self.children()
        subtree = {node}
        stack = [node]
        while stack:
            for child in children.get(stack.pop(), ()):
                subtree.add(child)
                stack.append(child)
        result = [spec for sink_node, spec in self.sinks.items()
                  if sink_node in subtree]
        memo[node] = result
        return result

    def __getstate__(self) -> Dict[str, object]:
        # Keep pickled artifacts (the flow cache) free of the lazily
        # built child/membership/subtree indexes; they are rebuilt on
        # demand after loading.
        state = self.__dict__.copy()
        state.pop("_children", None)
        state.pop("_nodes", None)
        state.pop("_sinks_through", None)
        return state


@dataclasses.dataclass
class SkippedNet:
    name: str
    reason: str


@dataclasses.dataclass
class DirectConnection:
    """A sink served by a dedicated intra-slice path (no routing)."""

    net: str
    cell: str
    port: str


@dataclasses.dataclass
class RoutingResult:
    """Complete routing of a design."""

    routes: Dict[str, RouteTree]
    skipped: List[SkippedNet]
    direct: List[DirectConnection]
    #: wire/pin node -> owning net name
    node_owner: Dict[Node, str]
    #: PIP -> owning net name
    pip_owner: Dict[Pip, str]
    iterations: int = 0
    total_wirelength: int = 0

    def used_pips(self) -> Set[Pip]:
        return set(self.pip_owner)


# ----------------------------------------------------------------------
# Routing-problem extraction
# ----------------------------------------------------------------------
def _site_of(cell: str, pack_result: PackResult, placement: Placement
             ) -> Tuple[int, int, str]:
    slice_index, slot = pack_result.cell_site[cell]
    x, y = placement.slice_tiles[slice_index]
    return x, y, slot


def _driver_node(net: Net, definition: Definition, pack_result: PackResult,
                 placement: Placement) -> Tuple[Optional[Node], Optional[str]]:
    """Return (source node, skip reason)."""
    drivers = net.drivers()
    if not drivers:
        return None, "undriven"
    if len(drivers) > 1:
        return None, "multiple-drivers"
    driver = drivers[0]
    if isinstance(driver, TopPin):
        pad = placement.port_pads.get((driver.port_name, driver.index))
        if pad is None:
            return None, "unplaced-port"
        return pad_output(pad), None
    assert isinstance(driver, InstancePin)
    cell = driver.instance
    cell_type = cell.reference.name
    if cell_type in ("GND", "VCC"):
        return None, "constant"
    if cell_type in VIRTUAL_CELLS:
        return None, "virtual-driver"
    x, y, slot = _site_of(cell.name, pack_result, placement)
    if cell_type in LUT_CELLS:
        return opin(x, y, LUT_OUTPUT_PIN[slot]), None
    if cell_type in FF_CELLS:
        return opin(x, y, FF_OUTPUT_PIN[slot]), None
    return None, f"unhandled-driver-{cell_type}"


def _sink_specs(net: Net, definition: Definition, pack_result: PackResult,
                placement: Placement, driver_cell: Optional[str]
                ) -> Tuple[List[SinkSpec], List[DirectConnection], int]:
    """Return (routable sinks, direct connections, clock sink count)."""
    sinks: List[SinkSpec] = []
    direct: List[DirectConnection] = []
    clock_sinks = 0
    for pin in net.sinks():
        if isinstance(pin, TopPin):
            pad = placement.port_pads.get((pin.port_name, pin.index))
            if pad is None:
                continue
            sinks.append(SinkSpec(pad_input(pad), None, pin.port_name,
                                  pin.index))
            continue
        assert isinstance(pin, InstancePin)
        cell = pin.instance
        cell_type = cell.reference.name
        if cell_type in VIRTUAL_CELLS:
            continue
        if cell_type in FF_CELLS and pin.port_name == "C":
            clock_sinks += 1
            continue
        x, y, slot = _site_of(cell.name, pack_result, placement)
        if cell_type in LUT_CELLS:
            index = int(pin.port_name[1:])
            pin_name = LUT_INPUT_PIN[(slot, index)]
            sinks.append(SinkSpec(ipin(x, y, pin_name), cell.name,
                                  pin.port_name))
            continue
        if cell_type in FF_CELLS:
            if pin.port_name == "D":
                slice_index, _ = pack_result.cell_site[cell.name]
                assignment = pack_result.slices[slice_index]
                paired_lut = assignment.cells.get(FF_PAIRED_LUT[slot])
                if slot in assignment.direct_ff_data and \
                        paired_lut is not None and paired_lut == driver_cell:
                    direct.append(DirectConnection(net.name, cell.name, "D"))
                    continue
                sinks.append(SinkSpec(ipin(x, y, FF_DATA_PIN[slot]),
                                      cell.name, "D"))
            elif pin.port_name == "CE":
                sinks.append(SinkSpec(ipin(x, y, "CE"), cell.name, "CE"))
            elif pin.port_name in ("R", "CLR"):
                sinks.append(SinkSpec(ipin(x, y, "SR"), cell.name,
                                      pin.port_name))
            continue
    return sinks, direct, clock_sinks


def extract_routing_problem(definition: Definition, pack_result: PackResult,
                            placement: Placement
                            ) -> Tuple[List[NetRequest], List[SkippedNet],
                                       List[DirectConnection]]:
    """Turn the flat netlist + placement into routing requests."""
    requests: List[NetRequest] = []
    skipped: List[SkippedNet] = []
    direct_connections: List[DirectConnection] = []

    for net in definition.nets.values():
        source, reason = _driver_node(net, definition, pack_result, placement)
        if source is None:
            skipped.append(SkippedNet(net.name, reason or "unroutable"))
            continue
        driver_cell = None
        drivers = net.drivers()
        if drivers and isinstance(drivers[0], InstancePin):
            driver_cell = drivers[0].instance.name
        sinks, direct, clock_sinks = _sink_specs(
            net, definition, pack_result, placement, driver_cell)
        direct_connections.extend(direct)
        if not sinks:
            if clock_sinks:
                skipped.append(SkippedNet(net.name, "global-clock"))
            elif direct:
                skipped.append(SkippedNet(net.name, "intra-slice"))
            else:
                skipped.append(SkippedNet(net.name, "no-sinks"))
            continue
        requests.append(NetRequest(net.name, source, sinks))
    return requests, skipped, direct_connections


# ----------------------------------------------------------------------
# PathFinder-style router
# ----------------------------------------------------------------------
class _SearchState:
    """Flat, epoch-stamped A* tables reused across searches.

    Replacing the per-search cost/parent dictionaries with preallocated
    lists removes the hash of every visited node id; bumping *epoch*
    invalidates the whole table in O(1) instead of clearing it.
    """

    __slots__ = ("best", "came", "mark", "epoch")

    def __init__(self, count: int) -> None:
        self.best = [0.0] * count
        self.came = [-1] * count
        self.mark = [0] * count
        self.epoch = 0


class Router:
    """Negotiated-congestion router over the flat indexed routing graph.

    The search itself is the seed PathFinder recipe, executed on integer
    node ids from the device's memoized :class:`RoutingGraph` instead of
    node tuples: cost, occupancy and history tables hash small ints, the
    neighbour lists come precomputed in :func:`downhill` order, and tile
    coordinates are array lookups.  Because ids are assigned in sorted
    tuple order and neighbours keep their emission order, every heap
    tie-break — and therefore every route tree — is bit-identical to the
    seed tuple router (asserted against
    :mod:`repro.pnr.reference` by the equivalence tests).
    """

    def __init__(self, device: Device, max_iterations: int = 12,
                 present_factor: float = 0.5,
                 present_growth: float = 1.8,
                 history_increment: float = 1.0,
                 allow_overuse: bool = False,
                 heuristic_weight: float = 1.3,
                 bounding_box_margin: int = 3,
                 threads: int = 1) -> None:
        self.device = device
        self.max_iterations = max_iterations
        self.present_factor = present_factor
        self.present_growth = present_growth
        self.history_increment = history_increment
        self.allow_overuse = allow_overuse
        #: weighted-A* factor (>1 trades a little wirelength for speed)
        self.heuristic_weight = heuristic_weight
        #: exploration is confined to the net's bounding box plus this margin
        #: (the margin grows on later negotiation iterations)
        self.bounding_box_margin = bounding_box_margin
        #: workers for routing independent nets of one rip-up wave
        #: together (execution-only: the routed result is identical for
        #: any value — see :meth:`_route_wave`)
        self.threads = max(1, threads)
        self.graph: RoutingGraph = routing_graph(device)
        # Pay the whole adjacency table up front in one bulk pass: it is
        # several times cheaper than faulting it in node by node during
        # the first nets' searches.
        self.graph.build_adjacency()
        #: numpy per-id tables for vectorized candidate masks (None
        #: without numpy; the search then keeps its inline checks)
        self._tables = self.graph.np_tables()
        self._search_local = threading.local()
        self._extra_margin = 0

    def _search_state(self) -> "_SearchState":
        """Per-thread reusable A* tables (epoch-stamped, never cleared)."""
        state = getattr(self._search_local, "state", None)
        if state is None:
            state = _SearchState(len(self.graph))
            self._search_local.state = state
        return state

    # --------------------------------------------------------------
    def route(self, requests: Sequence[NetRequest]) -> Tuple[
            Dict[str, RouteTree], int]:
        """Route all requests; returns (trees, iterations used)."""
        graph = self.graph
        is_wire = graph.is_wire
        #: flat per-id claim counts (dense: the scan for overused wires is
        #: cheap next to one net's search)
        occupancy: List[int] = [0] * len(graph)
        history: Dict[int, float] = {}
        #: per-id ``1.0 + history`` — the step cost every unoccupied node
        #: charges; updated only when history changes so the hot loop
        #: reads one list element instead of hashing into a dict
        base_cost: List[float] = [1.0] * len(graph)
        trees: Dict[str, RouteTree] = {}
        #: per-net id set mirroring ``trees[name].nodes()``
        tree_ids: Dict[str, Set[int]] = {}
        present_factor = self.present_factor

        order = sorted(requests, key=lambda r: (len(r.sinks), r.name))
        to_route = list(order)
        iteration = 0
        while iteration < self.max_iterations:
            iteration += 1
            # Congested designs get a progressively wider search window.
            self._extra_margin = 2 * (iteration - 1)
            self._route_wave(to_route, trees, tree_ids, occupancy,
                             base_cost, present_factor)

            overused = {node_id for node_id, count in enumerate(occupancy)
                        if count > 1 and is_wire[node_id]}
            if not overused:
                return trees, iteration
            for node_id in overused:
                history[node_id] = history.get(node_id, 0.0) + \
                    self.history_increment
                base_cost[node_id] = 1.0 + history[node_id]
            present_factor *= self.present_growth
            # Rip up and reroute only the nets that touch an overused
            # wire; everybody else keeps their tree and its claims.
            to_route = [request for request in order
                        if tree_ids[request.name] & overused]

        if not self.allow_overuse:
            overused = {node_id for node_id, count in enumerate(occupancy)
                        if count > 1 and is_wire[node_id]}
            raise RoutingError(
                f"router failed to resolve congestion after "
                f"{self.max_iterations} iterations; {len(overused)} wires "
                f"remain overused")
        return trees, iteration

    # --------------------------------------------------------------
    def _route_wave(self, to_route: List[NetRequest],
                    trees: Dict[str, RouteTree],
                    tree_ids: Dict[str, Set[int]],
                    occupancy: List[int], base_cost: List[float],
                    present_factor: float) -> None:
        """Route one rip-up wave, batching independent nets.

        The serial recipe releases and reroutes the wave's nets one at a
        time.  A net's search only ever reads nodes inside its inflated
        bounding box, so nets whose regions (box plus any pre-existing
        tree extent) are pairwise disjoint cannot observe each other's
        claims: expanding their frontiers concurrently and merging the
        claims in wave order produces exactly the serial result.  Any net
        that escalates to an unrestricted search (or fails) invalidates
        that reasoning, so its group is rolled back to a snapshot and
        replayed serially — correctness never rests on the grouping.
        """
        serial = self.threads <= 1 or len(to_route) < 2
        index = 0
        while index < len(to_route):
            group = [to_route[index]] if serial else \
                self._independent_group(to_route, index, tree_ids)
            if len(group) < 2:
                request = group[0]
                self._reroute_serial(request, trees, tree_ids, occupancy,
                                     base_cost, present_factor)
                index += 1
                continue
            self._route_group(group, trees, tree_ids, occupancy,
                              base_cost, present_factor)
            index += len(group)

    def _reroute_serial(self, request: NetRequest,
                        trees: Dict[str, RouteTree],
                        tree_ids: Dict[str, Set[int]],
                        occupancy: List[int], base_cost: List[float],
                        present_factor: float) -> None:
        existing = tree_ids.pop(request.name, None)
        if existing is not None:
            trees.pop(request.name)
            self._release(existing, occupancy)
        tree, ids, _ = self._route_net(request, occupancy, base_cost,
                                       present_factor)
        trees[request.name] = tree
        tree_ids[request.name] = ids
        self._claim(ids, occupancy)

    def _independent_group(self, to_route: List[NetRequest], start: int,
                           tree_ids: Dict[str, Set[int]]
                           ) -> List[NetRequest]:
        """The longest prefix of mutually disjoint nets from *start*.

        Disjointness is judged on conservative rectangles: the net's
        inflated search box united with the tile extent of its existing
        tree (whose release a concurrent peer must not be able to see).
        """
        graph = self.graph
        tile_x = graph.tile_x
        tile_y = graph.tile_y

        def region(request: NetRequest) -> Tuple[int, int, int, int]:
            min_x, min_y, max_x, max_y = self._net_bounding_box(request)
            existing = tree_ids.get(request.name)
            if existing:
                for node_id in existing:
                    x = tile_x[node_id]
                    y = tile_y[node_id]
                    min_x = x if x < min_x else min_x
                    max_x = x if x > max_x else max_x
                    min_y = y if y < min_y else min_y
                    max_y = y if y > max_y else max_y
            # Inflate by one tile: a search may touch pins of the tile
            # just past a boundary wire.
            return (min_x - 1, min_y - 1, max_x + 1, max_y + 1)

        group = [to_route[start]]
        regions = [region(to_route[start])]
        limit = min(len(to_route), start + 4 * self.threads)
        for request in to_route[start + 1:limit]:
            candidate = region(request)
            if any(not (candidate[2] < other[0] or other[2] < candidate[0]
                        or candidate[3] < other[1]
                        or other[3] < candidate[1])
                   for other in regions):
                break
            group.append(request)
            regions.append(candidate)
        return group

    def _route_group(self, group: List[NetRequest],
                     trees: Dict[str, RouteTree],
                     tree_ids: Dict[str, Set[int]],
                     occupancy: List[int], base_cost: List[float],
                     present_factor: float) -> None:
        """Route a disjoint group concurrently, or replay it serially."""
        snapshot = list(occupancy)
        saved = {request.name: (tree_ids.get(request.name),
                                trees.get(request.name))
                 for request in group}
        for request in group:
            existing = tree_ids.pop(request.name, None)
            if existing is not None:
                trees.pop(request.name)
                self._release(existing, occupancy)
        results = None
        try:
            with ThreadPoolExecutor(max_workers=min(self.threads,
                                                    len(group))) as pool:
                futures = [pool.submit(self._route_net, request, occupancy,
                                       base_cost, present_factor,
                                       bounded_only=True)
                           for request in group]
                results = [future.result() for future in futures]
        except RoutingError:
            results = None
        if results is not None and all(not escaped
                                       for _, _, escaped in results):
            # Fixed merge order (wave order) — claims are disjoint, so
            # this matches the serial claim sequence exactly.
            for request, (tree, ids, _) in zip(group, results):
                trees[request.name] = tree
                tree_ids[request.name] = ids
                self._claim(ids, occupancy)
            return
        # A net needed the unrestricted fallback (or failed): restore the
        # pre-group state and take the serial path, which reproduces the
        # plain single-threaded semantics including error reporting.
        occupancy[:] = snapshot
        for request in group:
            tree_ids.pop(request.name, None)
            trees.pop(request.name, None)
            existing_ids, existing_tree = saved[request.name]
            if existing_ids is not None:
                tree_ids[request.name] = existing_ids
                trees[request.name] = existing_tree
        for request in group:
            self._reroute_serial(request, trees, tree_ids, occupancy,
                                 base_cost, present_factor)

    # --------------------------------------------------------------
    def _claim(self, ids: Set[int], occupancy: List[int]) -> None:
        for node_id in ids:
            occupancy[node_id] += 1

    def _release(self, ids: Set[int], occupancy: List[int]) -> None:
        for node_id in ids:
            if occupancy[node_id] > 0:
                occupancy[node_id] -= 1

    def _route_net(self, request: NetRequest, occupancy: List[int],
                   base_cost: List[float], present_factor: float,
                   bounded_only: bool = False
                   ) -> Tuple[RouteTree, Set[int], bool]:
        """Route one net; returns (tree, claimed ids, escaped-box flag).

        With *bounded_only* the unrestricted fallback search is reported
        (``escaped=True`` on a bounded miss) instead of executed — the
        group router uses this to detect when its disjointness argument
        no longer holds.
        """
        graph = self.graph
        id_of = graph.node_id
        nodes = graph.nodes
        source_id = id_of[request.source]
        parent: Dict[Node, Node] = {}
        tree_ids: Set[int] = {source_id}
        sink_map: Dict[Node, SinkSpec] = {}

        # Grow the tree outwards: route near sinks first so that far sinks
        # can attach to an already-extended tree instead of searching from
        # the source every time.
        tile_x = graph.tile_x
        tile_y = graph.tile_y
        source_x = tile_x[source_id]
        source_y = tile_y[source_id]
        ordered_sinks = sorted(
            request.sinks,
            key=lambda spec: abs(tile_x[id_of[spec.node]] - source_x)
            + abs(tile_y[id_of[spec.node]] - source_y))

        bounding_box = self._net_bounding_box(request)
        # Vectorized candidate mask of the box (None without numpy): one
        # byte per node, nonzero when the node may not be expanded.
        blocked = self._blocked_mask(bounding_box)
        for spec in ordered_sinks:
            target_id = id_of[spec.node]
            if target_id in tree_ids:
                sink_map[spec.node] = spec
                continue
            path = self._find_path(tree_ids, target_id, occupancy,
                                   base_cost, present_factor,
                                   bounding_box, blocked)
            if path is None:
                if bounded_only:
                    return (RouteTree(request.name, request.source, parent,
                                      sink_map), tree_ids, True)
                # Retry once without the bounding-box restriction before
                # declaring the sink unroutable.
                path = self._find_path(
                    tree_ids, target_id, occupancy, base_cost,
                    present_factor, None,
                    self._tables["sink_blocked"] if self._tables else None)
            if path is None:
                raise RoutingError(
                    f"no path from {request.source} to {spec.node} "
                    f"for net {request.name!r}")
            previous = path[0]
            for node_id in path[1:]:
                node = nodes[node_id]
                if node not in parent:
                    parent[node] = nodes[previous]
                previous = node_id
                tree_ids.add(node_id)
            sink_map[spec.node] = spec

        return RouteTree(request.name, request.source, parent,
                         sink_map), tree_ids, False

    def _blocked_mask(self, bounding_box: Tuple[int, int, int, int]
                      ) -> Optional[bytes]:
        """Per-node expansion blocks of one net, as a flat byte mask.

        A node is blocked when it is a sink (the search special-cases its
        own target) or a wire outside the net's box.  Computing this once
        per net with numpy replaces two predicate checks per visited edge
        in the hot loop; without numpy the loop keeps its inline checks.
        """
        tables = self._tables
        if tables is None:
            return None
        min_x, min_y, max_x, max_y = bounding_box
        tile_x = tables["tile_x"]
        tile_y = tables["tile_y"]
        outside = (tile_x < min_x) | (tile_x > max_x) \
            | (tile_y < min_y) | (tile_y > max_y)
        return ((tables["is_wire"] & outside)
                | tables["is_sink"]).tobytes()

    def _net_bounding_box(self, request: NetRequest
                          ) -> Tuple[int, int, int, int]:
        """Bounding box (min x, min y, max x, max y) of the net's terminals,
        expanded by the configured margin."""
        graph = self.graph
        id_of = graph.node_id
        tile_x = graph.tile_x
        tile_y = graph.tile_y
        terminal_ids = [id_of[request.source]]
        terminal_ids.extend(id_of[spec.node] for spec in request.sinks)
        xs = [tile_x[node_id] for node_id in terminal_ids]
        ys = [tile_y[node_id] for node_id in terminal_ids]
        margin = self.bounding_box_margin + self._extra_margin
        device = self.device
        min_x = max(0, min(xs) - margin)
        min_y = max(0, min(ys) - margin)
        max_x = min(device.columns - 1, max(xs) + margin)
        max_y = min(device.rows - 1, max(ys) + margin)
        return (min_x, min_y, max_x, max_y)

    def _find_path(self, tree_ids: Set[int], target: int,
                   occupancy: List[int], base_cost: List[float],
                   present_factor: float,
                   bounding_box: Optional[Tuple[int, int, int, int]],
                   blocked: Optional[bytes]) -> Optional[List[int]]:
        """A* from the existing tree to *target*.

        The cost arithmetic, push order and tie-breaks are exactly the
        seed recipe's (``base_cost[n]`` is the precomputed ``1.0 +
        history``), so the returned path is bit-identical whether the
        candidate test runs on the vectorized *blocked* mask or on the
        inline predicate fallback below.
        """
        graph = self.graph
        tile_x = graph.tile_x
        tile_y = graph.tile_y
        is_wire = graph.is_wire
        is_pad_in = graph.is_pad_in
        adjacency = graph._adjacency
        weight = self.heuristic_weight
        target_x = tile_x[target]
        target_y = tile_y[target]

        state = self._search_state()
        state.epoch += 1
        epoch = state.epoch
        best = state.best
        came = state.came
        mark = state.mark

        frontier: List[Tuple[float, float, int, int]] = []
        counter = 0
        # Seed in sorted id order; ids are assigned in sorted node-tuple
        # order, so equal-cost heap pops match the seed router exactly and
        # never depend on the per-process hash seed.
        for node_id in sorted(tree_ids):
            mark[node_id] = epoch
            came[node_id] = -1
            best[node_id] = 0.0
            estimate = weight * (abs(tile_x[node_id] - target_x)
                                 + abs(tile_y[node_id] - target_y))
            heapq.heappush(frontier, (estimate, 0.0, counter, node_id))
            counter += 1

        # Hot loop: the helpers are inlined because this search dominates the
        # implementation runtime of large TMR designs.
        heappush = heapq.heappush
        heappop = heapq.heappop

        if blocked is not None:
            while frontier:
                _, cost_so_far, _, node_id = heappop(frontier)
                if cost_so_far > best[node_id]:
                    continue
                if node_id == target:
                    path = [node_id]
                    current = node_id
                    while came[current] >= 0:
                        current = came[current]
                        path.append(current)
                    path.reverse()
                    return path
                for neighbor in adjacency[node_id]:
                    if blocked[neighbor] and neighbor != target:
                        continue
                    step = base_cost[neighbor]
                    usage = occupancy[neighbor]
                    if usage:
                        if is_wire[neighbor]:
                            step += present_factor * usage
                        else:
                            step += 1000.0
                    new_cost = cost_so_far + step
                    if mark[neighbor] != epoch or new_cost < best[neighbor]:
                        mark[neighbor] = epoch
                        best[neighbor] = new_cost
                        came[neighbor] = node_id
                        counter += 1
                        if is_pad_in[neighbor]:
                            estimate = 0.0
                        else:
                            estimate = weight * (
                                abs(tile_x[neighbor] - target_x)
                                + abs(tile_y[neighbor] - target_y))
                        heappush(frontier, (new_cost + estimate, new_cost,
                                            counter, neighbor))
            return None

        # Pure-python fallback (no numpy): identical search with the two
        # candidate predicates evaluated inline.
        is_sink = graph.is_sink
        if bounding_box is not None:
            box_min_x, box_min_y, box_max_x, box_max_y = bounding_box

        while frontier:
            _, cost_so_far, _, node_id = heappop(frontier)
            if cost_so_far > best[node_id]:
                continue
            if node_id == target:
                path = [node_id]
                current = node_id
                while came[current] >= 0:
                    current = came[current]
                    path.append(current)
                path.reverse()
                return path
            for neighbor in adjacency[node_id]:
                if is_sink[neighbor] and neighbor != target:
                    continue  # foreign sinks are not through-routing resources
                if bounding_box is not None and is_wire[neighbor]:
                    if not (box_min_x <= tile_x[neighbor] <= box_max_x
                            and box_min_y <= tile_y[neighbor]
                            <= box_max_y):
                        continue
                step = base_cost[neighbor]
                usage = occupancy[neighbor]
                if usage:
                    if is_wire[neighbor]:
                        step += present_factor * usage
                    else:
                        step += 1000.0
                new_cost = cost_so_far + step
                if mark[neighbor] != epoch or new_cost < best[neighbor]:
                    mark[neighbor] = epoch
                    best[neighbor] = new_cost
                    came[neighbor] = node_id
                    counter += 1
                    if is_pad_in[neighbor]:
                        estimate = 0.0
                    else:
                        estimate = weight * (abs(tile_x[neighbor] - target_x)
                                             + abs(tile_y[neighbor]
                                                   - target_y))
                    heappush(frontier, (new_cost + estimate, new_cost,
                                        counter, neighbor))
        return None


def route_design(definition: Definition, pack_result: PackResult,
                 placement: Placement, device: Device,
                 max_iterations: int = 12,
                 allow_overuse: bool = False,
                 threads: Optional[int] = None) -> RoutingResult:
    """Extract the routing problem and run the negotiated-congestion router.

    *threads* (default: the ``REPRO_FLOW_THREADS`` knob) routes
    independent nets of one rip-up wave concurrently; the routed result
    is bit-identical for any value.
    """
    from .place import resolve_flow_threads

    requests, skipped, direct = extract_routing_problem(
        definition, pack_result, placement)
    router = Router(device, max_iterations=max_iterations,
                    allow_overuse=allow_overuse,
                    threads=resolve_flow_threads(threads))
    trees, iterations = router.route(requests)

    node_owner: Dict[Node, str] = {}
    pip_owner: Dict[Pip, str] = {}
    wirelength = 0
    for name, tree in trees.items():
        # nodes()/pips() are sets of string-bearing tuples; sort so the
        # ownership dictionaries (and everything downstream of their
        # iteration order, e.g. fault-list construction) never depend on
        # the per-process hash seed.
        for node in sorted(tree.nodes()):
            node_owner[node] = name
            if node[0] == "wire":
                wirelength += 1
        for pip in sorted(tree.pips()):
            pip_owner[pip] = name

    return RoutingResult(
        routes=trees,
        skipped=skipped,
        direct=direct,
        node_owner=node_owner,
        pip_owner=pip_owner,
        iterations=iterations,
        total_wirelength=wirelength,
    )
