"""Plain-text reports for fault-injection campaigns (paper-style tables)."""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from . import categories
from .campaign import CampaignResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render a simple fixed-width text table."""
    columns = [list(map(str, column)) for column in
               zip(*([headers] + [list(map(str, row)) for row in rows]))] \
        if rows else [[str(h)] for h in headers]
    widths = [max(len(value) for value in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(value).ljust(width)
                                for value, width in zip(row, widths)))
    return "\n".join(lines)


def table3_report(results: Mapping[str, CampaignResult],
                  order: Optional[Sequence[str]] = None,
                  paper_reference: Optional[Mapping[str, float]] = None
                  ) -> str:
    """Render the Table 3 analogue: wrong answers per design."""
    names = list(order) if order is not None else list(results)
    rows: List[List[object]] = []
    headers = ["Design", "Injected Faults", "Wrong Answer [#]",
               "Wrong Answer [%]"]
    if paper_reference:
        headers.append("Paper [%]")
    for name in names:
        result = results[name]
        row: List[object] = [name, result.injected, result.wrong_answers,
                             f"{result.wrong_answer_percent:.2f}"]
        if paper_reference:
            reference = paper_reference.get(name)
            row.append(f"{reference:.2f}" if reference is not None else "-")
        rows.append(row)
    return format_table(headers, rows,
                        "Table 3 — Fault injection campaign results")


def table4_report(results: Mapping[str, CampaignResult],
                  order: Optional[Sequence[str]] = None) -> str:
    """Render the Table 4 analogue: error-causing effects per category."""
    names = list(order) if order is not None else list(results)
    headers = ["Effect"] + [f"{name} [#]" for name in names]
    rows: List[List[object]] = []
    for category in categories.TABLE4_ORDER:
        row: List[object] = [category]
        for name in names:
            counts = results[name].by_category.get(category)
            row.append(counts.wrong if counts is not None else 0)
        rows.append(row)
    totals: List[object] = ["Total"]
    for name in names:
        totals.append(sum(count.wrong
                          for count in results[name].by_category.values()))
    rows.append(totals)
    return format_table(headers, rows,
                        "Table 4 — Effects induced by the injected upsets "
                        "(error-causing upsets only)")


def campaign_details(result: CampaignResult) -> str:
    """Per-category breakdown of one campaign (injected vs wrong)."""
    rows = []
    for category in categories.TABLE4_ORDER:
        counts = result.by_category.get(category)
        if counts is None or counts.injected == 0:
            continue
        share = 100.0 * counts.wrong / counts.injected
        rows.append([category, counts.injected, counts.wrong,
                     f"{share:.1f}"])
    return format_table(
        ["Effect", "Injected", "Wrong", "Wrong within category [%]"], rows,
        f"Campaign breakdown — {result.design} "
        f"({result.wrong_answer_percent:.2f}% wrong answers)")
