"""Device profiles.

``XC2S200E`` approximates the paper's Spartan-IIE part: the paper describes
its configuration memory as 1,442,016 bits in 2,501 frames of 576 bits
controlling an array of 28 x 42 slices.  Our fabric model is not
bit-compatible with the proprietary Xilinx format, so the profile reproduces
the array geometry and frame length; the absolute bit count differs while the
routing-versus-logic composition stays in the same ~80-90% range.

The TMR versions of the paper's filter need roughly 3-4x the unprotected
area; profiles with larger arrays (and wider channels) are provided so that
every variant places and routes, along with reduced profiles for fast tests
and campaigns.
"""

from __future__ import annotations

from typing import Dict

from .device import Device, DeviceSpec

#: The paper's device: 28 x 42 slice array, 576-bit frames.
XC2S200E = DeviceSpec(name="XC2S200E", columns=42, rows=28,
                      wires_per_direction=8, pads_per_tile=2, frame_bits=576)

#: A larger profile in the same family, used when a TMR variant of the
#: full-size filter does not fit the XC2S200E-sized array.
XC2S600E = DeviceSpec(name="XC2S600E", columns=72, rows=48,
                      wires_per_direction=10, pads_per_tile=2, frame_bits=576)

#: Reduced profiles for fast fault-injection campaigns and unit tests.
XC2S50E = DeviceSpec(name="XC2S50E", columns=28, rows=16,
                     wires_per_direction=8, pads_per_tile=2, frame_bits=576)
XC2S15E = DeviceSpec(name="XC2S15E", columns=16, rows=10,
                     wires_per_direction=8, pads_per_tile=2, frame_bits=576)
#: Tiny device for unit tests of the fabric itself.
TINY = DeviceSpec(name="TINY", columns=6, rows=5, wires_per_direction=8,
                  pads_per_tile=2, frame_bits=64)

PROFILES: Dict[str, DeviceSpec] = {
    spec.name: spec
    for spec in (XC2S200E, XC2S600E, XC2S50E, XC2S15E, TINY)
}


def device_by_name(name: str) -> Device:
    """Instantiate a device from a profile name."""
    try:
        return Device(PROFILES[name])
    except KeyError:
        raise KeyError(
            f"unknown device profile {name!r}; available: "
            + ", ".join(sorted(PROFILES))) from None


def smallest_device_for(num_luts: int, num_ffs: int,
                        utilization: float = 0.7) -> Device:
    """Pick the smallest profile able to hold the given logic.

    Each tile provides two LUTs and two flip-flops; *utilization* caps the
    fraction of the array the packer may fill so the placer and router have
    slack, as a real flow would.
    """
    needed_tiles = max(
        (num_luts + 1) // 2, (num_ffs + 1) // 2, 1) / max(utilization, 0.01)
    for spec in sorted(PROFILES.values(), key=lambda s: s.num_tiles):
        if spec.name == "TINY":
            continue
        if spec.num_tiles >= needed_tiles:
            return Device(spec)
    return Device(XC2S600E)
