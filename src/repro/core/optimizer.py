"""Voter-partition design-space exploration.

The paper demonstrates experimentally that an intermediate partition
(TMR_p2) beats both extremes; this module automates that search.  For a
component-level design it sweeps candidate partition strategies, estimates
robustness with the analytical model of :mod:`repro.core.analysis` and a
simple area/performance model, and reports the Pareto-optimal choices.  The
full fault-injection campaign can then be reserved for the few shortlisted
candidates (this is the workflow the paper's conclusions recommend).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..netlist.ir import Definition, Netlist
from ..netlist.traversal import combinational_predecessors
from .analysis import RobustnessEstimate, estimate_robustness
from .partition import (AllComponents, ByComponentType, EveryKth, NoPartition,
                        PartitionStrategy, combinational_components,
                        component_topological_order, is_register_component)
from .tmr import TMRConfig, TMRResult, apply_tmr
from .voters import is_voter


@dataclasses.dataclass
class CandidateEvaluation:
    """Metrics for one candidate partition strategy."""

    strategy: PartitionStrategy
    config: TMRConfig
    result: TMRResult
    robustness: RobustnessEstimate
    #: LUT-equivalent area estimate of the TMR overhead (voters only)
    voter_area_luts: int
    #: additional logic levels introduced on the longest path
    extra_logic_levels: int

    @property
    def defeat_probability(self) -> float:
        return self.robustness.cross_domain_defeat_probability

    def summary_row(self) -> Dict[str, object]:
        return {
            "partition": self.strategy.describe(),
            "voters": self.result.voter_count,
            "regions": self.robustness.num_regions,
            "defeat_probability": round(self.defeat_probability, 5),
            "voter_area_luts": self.voter_area_luts,
            "extra_logic_levels": self.extra_logic_levels,
        }


@dataclasses.dataclass
class SweepResult:
    """All candidate evaluations plus the selected optimum."""

    candidates: List[CandidateEvaluation]
    best: CandidateEvaluation

    def table(self) -> List[Dict[str, object]]:
        return [candidate.summary_row() for candidate in self.candidates]


def default_candidates(definition: Definition) -> List[PartitionStrategy]:
    """The candidate set swept by default: both extremes, the component-type
    partitions present in the design, and a few granularities."""
    strategies: List[PartitionStrategy] = [NoPartition(), AllComponents()]
    component_types = sorted({
        str(inst.properties.get("component"))
        for inst in combinational_components(definition)
        if inst.properties.get("component") is not None})
    for component_type in component_types:
        strategies.append(ByComponentType((component_type,)))
    num_components = len(combinational_components(definition))
    for k in (2, 3, 4):
        if 1 < k < max(2, num_components):
            strategies.append(EveryKth(k))
    return strategies


def _estimate_extra_levels(result: TMRResult) -> int:
    """Voter LUT levels added on the longest register-to-register path.

    Walks the TMR'd component netlist in topological order (register
    stages cut the graph, exactly as they cut timing paths) and counts,
    per instance, the maximum number of voter LUTs on any combinational
    path ending there.  The result is the voter depth of the critical
    path — the quantity the paper's Table 2 performance column reacts to —
    rather than the design-wide voted-block count, which overcounts
    barriers that sit on parallel (non-critical) paths.
    """
    definition = result.definition
    voters_on_path: Dict[str, int] = {}
    deepest = 0
    for instance in component_topological_order(definition):
        if is_register_component(instance) and not is_voter(instance):
            # Register outputs start a fresh timing path.
            voters_on_path[instance.name] = 0
            continue
        depth = 0
        for predecessor in combinational_predecessors(instance):
            if predecessor.parent is not definition or \
                    predecessor.name == instance.name:
                continue
            if is_register_component(predecessor) and \
                    not is_voter(predecessor):
                continue
            depth = max(depth, voters_on_path.get(predecessor.name, 0))
        if is_voter(instance):
            depth += 1
        voters_on_path[instance.name] = depth
        deepest = max(deepest, depth)
    # Every TMR version ends in at least the final output voter.
    return max(deepest, 1)


def sweep_partitions(netlist: Netlist, top: Definition,
                     strategies: Optional[Sequence[PartitionStrategy]] = None,
                     vote_registers: bool = True,
                     voter_cost_weight: float = 0.0,
                     objective: Optional[Callable[[CandidateEvaluation],
                                                  float]] = None,
                     ) -> SweepResult:
    """Evaluate candidate partitions and pick the best one.

    *objective* maps a candidate to a scalar cost (lower is better); the
    default is the analytical defeat probability with an optional voter-area
    penalty, mirroring the paper's "robustness at acceptable cost" criterion.
    """
    strategies = list(strategies) if strategies is not None \
        else default_candidates(top)
    if not strategies:
        raise ValueError("no partition strategies to sweep")

    def default_objective(candidate: CandidateEvaluation) -> float:
        return candidate.robustness.score(voter_cost_weight)

    scoring = objective if objective is not None else default_objective

    candidates: List[CandidateEvaluation] = []
    tmr_library = netlist.get_library("tmr")
    for index, strategy in enumerate(strategies):
        # Pick a suffix that does not collide with earlier sweeps over the
        # same netlist.
        suffix_index = index
        while f"{top.name}_tmr_sweep{suffix_index}" in tmr_library:
            suffix_index += len(strategies)
        config = TMRConfig(partition=strategy, vote_registers=vote_registers,
                           name_suffix=f"_tmr_sweep{suffix_index}")
        result = apply_tmr(netlist, top, config)
        robustness = estimate_robustness(result.definition)
        candidates.append(CandidateEvaluation(
            strategy=strategy,
            config=config,
            result=result,
            robustness=robustness,
            voter_area_luts=result.voter_count,
            extra_logic_levels=_estimate_extra_levels(result),
        ))

    best = min(candidates, key=scoring)
    return SweepResult(candidates, best)


def pareto_front(candidates: Iterable[CandidateEvaluation]
                 ) -> List[CandidateEvaluation]:
    """Candidates not dominated in (defeat probability, voter area)."""
    candidate_list = list(candidates)
    front: List[CandidateEvaluation] = []
    for candidate in candidate_list:
        dominated = False
        for other in candidate_list:
            if other is candidate:
                continue
            if (other.defeat_probability <= candidate.defeat_probability and
                    other.voter_area_luts <= candidate.voter_area_luts and
                    (other.defeat_probability < candidate.defeat_probability
                     or other.voter_area_luts < candidate.voter_area_luts)):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    front.sort(key=lambda c: (c.defeat_probability, c.voter_area_luts))
    return front
