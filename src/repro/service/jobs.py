"""Job queue for the campaign service: submissions, states, coalescing.

A *job* is one scenario run — a :class:`JobSpec` naming a registered
scenario plus the same keyword overrides :func:`repro.scenarios.run_scenario`
accepts.  The queue assigns ids, tracks lifecycle state
(``pending → running → done | failed``), and **coalesces** concurrent
identical submissions: the spec is resolved against the scenario's
defaults into a content fingerprint, and while a job for that
fingerprint is in flight any further submission joins it instead of
spawning a second compute.  All joiners observe the one result — the
acceptance criterion is one compute, N bit-identical reports.

Coalescing is in-flight only.  A *finished* job does not absorb new
submissions (a client may legitimately want a fresh run, e.g. after
changing code); re-running a warm spec is cheap anyway because the
shared cache tier hands back the expensive artefacts.

Everything is thread-safe under one lock; the queue itself never runs
jobs — that is the orchestrator's business.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..scenarios import Scenario, scenario_by_name


class JobState:
    """Lifecycle states of a job (plain strings: JSON-friendly)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: states in which a job can still absorb identical submissions
    IN_FLIGHT = (PENDING, RUNNING)
    ALL = (PENDING, RUNNING, DONE, FAILED, CANCELLED)


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One campaign submission: a scenario plus optional overrides.

    ``None`` means "the scenario's default"; the fingerprint is computed
    from the *resolved* values, so ``JobSpec("table3-fir")`` and
    ``JobSpec("table3-fir", scale="fast")`` coalesce when ``fast`` is
    already the scenario's default scale.
    """

    scenario: str
    scale: Optional[str] = None
    backend: Optional[str] = None
    upset_model: Optional[str] = None
    num_faults: Optional[int] = None
    prefilter: Optional[str] = None
    seed: Optional[int] = None
    fault_list_mode: Optional[str] = None
    designs: Optional[Tuple[str, ...]] = None
    #: wall-clock budget for the whole job (queue wait included); ``None``
    #: means unbounded.  A *delivery* knob, not a compute knob: it is
    #: excluded from the fingerprint, so coalesced joiners share the
    #: first submission's deadline.
    timeout_s: Optional[float] = None

    #: fields that shape *how* the job is delivered rather than *what* it
    #: computes — excluded from overrides(), resolve() and the fingerprint
    DELIVERY_FIELDS = ("timeout_s",)

    def __post_init__(self) -> None:
        if self.designs is not None and not isinstance(self.designs, tuple):
            object.__setattr__(self, "designs", tuple(self.designs))

    # ------------------------------------------------------------------
    def overrides(self) -> Dict[str, object]:
        """The non-default fields, as ``run_scenario`` keyword arguments."""
        out: Dict[str, object] = {}
        for field in dataclasses.fields(self):
            if field.name == "scenario" or field.name in self.DELIVERY_FIELDS:
                continue
            value = getattr(self, field.name)
            if value is not None:
                out[field.name] = value
        return out

    def resolve(self) -> Scenario:
        """The concrete scenario this spec runs (defaults applied).

        Raises :class:`KeyError` for an unknown scenario name — callers
        surface that at submission time, not inside a worker.
        """
        scenario = scenario_by_name(self.scenario)
        overrides = self.overrides()
        if overrides:
            # Overriding a field that is also a matrix axis collapses the
            # axis — same rule as run_scenario, so fingerprints agree
            # with what actually executes.
            axes = tuple(axis for axis in scenario.axes
                         if axis[0] not in overrides)
            scenario = dataclasses.replace(scenario, axes=axes, **overrides)
        return scenario

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"scenario": self.scenario}
        for key, value in self.overrides().items():
            out[key] = list(value) if isinstance(value, tuple) else value
        if self.timeout_s is not None:
            out["timeout_s"] = self.timeout_s
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobSpec":
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown job spec fields: {', '.join(unknown)}")
        if "scenario" not in data:
            raise ValueError("job spec needs a 'scenario' field")
        kwargs = dict(data)
        if kwargs.get("designs") is not None:
            kwargs["designs"] = tuple(kwargs["designs"])
        return cls(**kwargs)


def job_fingerprint(spec: JobSpec) -> str:
    """Content fingerprint of the work *spec* resolves to.

    Two specs with the same fingerprint run the exact same pipeline over
    the exact same inputs and produce bit-identical stable reports, so
    the queue may serve both from one compute.  The digest covers every
    field of the resolved scenario (axes included).
    """
    resolved = dataclasses.asdict(spec.resolve())
    material = repr(sorted(resolved.items()))
    return hashlib.sha1(material.encode()).hexdigest()


@dataclasses.dataclass
class Job:
    """One queued campaign and everything observers may poll."""

    id: str
    spec: JobSpec
    fingerprint: str
    state: str = JobState.PENDING
    #: total submissions served by this job (1 + coalesced joiners)
    submissions: int = 1
    report: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    #: live progress from the pipeline: {"done": int, "total": int, ...}
    progress: Dict[str, object] = dataclasses.field(default_factory=dict)
    submitted_at: float = dataclasses.field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: resubmitted from the journal after a restart (provenance only)
    recovered: bool = False
    #: absolute ``time.monotonic()`` deadline derived from the spec's
    #: ``timeout_s`` at submission; ``None`` means unbounded
    deadline: Optional[float] = None
    done_event: threading.Event = dataclasses.field(
        default_factory=threading.Event, repr=False, compare=False)
    #: set by :meth:`JobQueue.cancel` / the orchestrator's deadline watch;
    #: the running worker polls it and tears down cooperatively
    cancel_event: threading.Event = dataclasses.field(
        default_factory=threading.Event, repr=False, compare=False)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job settles (done, failed or cancelled)."""
        return self.done_event.wait(timeout)

    def deadline_remaining(self) -> Optional[float]:
        """Seconds left before the deadline, or ``None`` when unbounded."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def elapsed(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return (self.finished_at or time.time()) - self.started_at

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe status view (report served separately)."""
        return {
            "id": self.id,
            "spec": self.spec.as_dict(),
            "fingerprint": self.fingerprint,
            "state": self.state,
            "submissions": self.submissions,
            "progress": dict(self.progress),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_seconds": self.elapsed(),
            "error": self.error,
            "recovered": self.recovered,
        }


class JobQueue:
    """Thread-safe job registry with in-flight request coalescing."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._in_flight: Dict[str, str] = {}  # fingerprint -> job id
        self._counter = itertools.count(1)
        self.coalesced = 0  # joiners served without a compute

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> Tuple[Job, bool]:
        """Register *spec*; returns ``(job, created)``.

        ``created`` is False when the submission coalesced onto an
        in-flight job with the same fingerprint — the caller must only
        schedule execution when it is True.
        """
        fingerprint = job_fingerprint(spec)  # raises on unknown scenario
        with self._lock:
            existing_id = self._in_flight.get(fingerprint)
            if existing_id is not None:
                job = self._jobs[existing_id]
                if job.state in JobState.IN_FLIGHT:
                    job.submissions += 1
                    self.coalesced += 1
                    return job, False
            job = Job(id=f"job-{next(self._counter):04d}", spec=spec,
                      fingerprint=fingerprint)
            if spec.timeout_s is not None:
                job.deadline = time.monotonic() + spec.timeout_s
            self._jobs[job.id] = job
            self._in_flight[fingerprint] = job.id
            return job, True

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    # ------------------------------------------------------------------
    def mark_running(self, job: Job) -> None:
        with self._lock:
            job.state = JobState.RUNNING
            job.started_at = time.time()

    def finish(self, job: Job, report: Dict[str, object]) -> None:
        self._settle(job, JobState.DONE, report=report)

    def fail(self, job: Job, error: str) -> None:
        self._settle(job, JobState.FAILED, error=error)

    def cancel(self, job: Job, reason: str) -> None:
        """Settle *job* as cancelled (deadline exceeded or client ask).

        Also sets the job's ``cancel_event`` so a running worker tears
        down at its next progress tick instead of computing to the end.
        """
        job.cancel_event.set()
        self._settle(job, JobState.CANCELLED, error=reason)

    def _settle(self, job: Job, state: str, *,
                report: Optional[Dict[str, object]] = None,
                error: Optional[str] = None) -> None:
        with self._lock:
            if job.state not in JobState.IN_FLIGHT:
                # Already settled — a late deadline/cancel must not
                # clobber a delivered report (or vice versa).
                return
            job.state = state
            job.report = report
            job.error = error
            job.finished_at = time.time()
            if self._in_flight.get(job.fingerprint) == job.id:
                del self._in_flight[job.fingerprint]
        job.done_event.set()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            by_state = {state: 0 for state in JobState.ALL}
            submissions = 0
            for job in self._jobs.values():
                by_state[job.state] += 1
                submissions += job.submissions
            return {
                "jobs": len(self._jobs),
                "submissions": submissions,
                "coalesced": self.coalesced,
                "by_state": by_state,
            }
