"""Bitstream fault injection: fault lists, models, injection and campaigns."""

from . import categories
from .cache import (CampaignCache, CampaignCacheEntry, cache_stats,
                    clear_cache, configure_cache, get_cache,
                    implementation_fingerprint)
from .campaign import (PREFILTER_CHOICES, CampaignConfig, CampaignResult,
                       CategoryCount, default_stimulus, run_campaign,
                       run_campaigns)
from .engine import (BACKEND_CHOICES, BACKENDS, BackendUnavailableError,
                     BatchBackend, CampaignContext, CampaignWorkerError,
                     ExecutionBackend, FaultTask, FaultVerdict, NumpyBackend,
                     ProcessPoolBackend, ProgressCallback, SerialBackend,
                     ShardedBackend, VectorBackend, program_signature,
                     resolve_backend)
from .fault_list import FAULT_LIST_MODES, FaultList, FaultListManager
from .injector import FaultInjectionManager, FaultResult
from .models import FaultEffect, FaultModeler
from .report import (campaign_details, format_table, table3_report,
                     table4_report)
from .seeds import derive_seed, split_shards, substream
from .upsets import (UPSET_MODEL_CHOICES, UPSET_MODELS, AccumulatedUpset,
                     MultiBitUpset, SingleUpset, UpsetModel, merged_effect,
                     resolve_upset_model)

__all__ = [
    "categories", "PREFILTER_CHOICES", "CampaignConfig", "CampaignResult",
    "CategoryCount",
    "default_stimulus", "run_campaign", "run_campaigns", "FAULT_LIST_MODES",
    "FaultList", "FaultListManager", "FaultInjectionManager", "FaultResult",
    "FaultEffect", "FaultModeler", "campaign_details", "format_table",
    "table3_report", "table4_report",
    # execution engine
    "BACKEND_CHOICES", "BACKENDS", "BackendUnavailableError",
    "BatchBackend", "CampaignContext", "CampaignWorkerError",
    "ExecutionBackend", "FaultTask", "FaultVerdict", "NumpyBackend",
    "ProcessPoolBackend", "ProgressCallback", "SerialBackend",
    "ShardedBackend", "VectorBackend", "derive_seed", "program_signature",
    "resolve_backend", "split_shards", "substream",
    # cache layer
    "CampaignCache", "CampaignCacheEntry", "cache_stats", "clear_cache",
    "configure_cache", "get_cache", "implementation_fingerprint",
    # upset-model axis
    "UPSET_MODEL_CHOICES", "UPSET_MODELS", "AccumulatedUpset",
    "MultiBitUpset", "SingleUpset", "UpsetModel", "merged_effect",
    "resolve_upset_model",
]
