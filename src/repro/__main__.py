"""``python -m repro`` — the scenario pipeline command line.

.. code-block:: console

    $ python -m repro list
    $ python -m repro run table3-fir --scale fast
    $ python -m repro run upset-matrix --scale smoke --backend vector \\
          --flow-cache .flow-cache --jobs 4 --json --output report.json

``run`` executes one registered scenario through the pipeline engine and
prints its report as Markdown (default) or JSON (``--json``); ``--output``
additionally writes the JSON report to a file, so CI can both gate on it
and archive it.  Every knob falls back to the scenario's own default.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .experiments.cli import (add_backend_argument, add_faults_argument,
                              add_flow_arguments, add_json_argument,
                              add_prefilter_argument, add_scale_argument,
                              add_upset_model_argument)
from .pipeline import render_markdown
from .scenarios import list_scenarios, run_scenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    commands = parser.add_subparsers(dest="command", required=True)

    runner = commands.add_parser(
        "run", help="run a registered scenario through the pipeline",
        description="Run one scenario; every omitted knob uses the "
                    "scenario's default.")
    runner.add_argument("scenario", help="scenario id (see 'repro list')")
    add_scale_argument(runner, default=None)
    add_backend_argument(runner, default=None)
    add_upset_model_argument(runner, default=None)
    add_prefilter_argument(runner, default=None)
    add_faults_argument(runner)
    runner.add_argument("--seed", type=int, default=None,
                        help="fault-sampling seed (default: the "
                             "scenario's)")
    runner.add_argument("--design", action="append", dest="designs",
                        metavar="NAME", default=None,
                        help="restrict to one design version (repeatable)")
    runner.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run the scenario N times in-process and "
                             "report the last (warm-cache) run "
                             "(default: 1)")
    add_flow_arguments(runner)
    runner.add_argument("--progress", action="store_true",
                        help="print per-design campaign progress to stderr")
    add_json_argument(runner)
    runner.add_argument("--output", metavar="FILE", default=None,
                        help="also write the JSON report to FILE")

    lister = commands.add_parser(
        "list", help="list the registered scenarios")
    add_json_argument(lister)
    return parser


def _run(arguments: argparse.Namespace) -> int:
    report = run_scenario(
        arguments.scenario,
        scale=arguments.scale,
        backend=arguments.backend,
        upset_model=arguments.upset_model,
        num_faults=arguments.faults,
        prefilter=arguments.prefilter,
        seed=arguments.seed,
        designs=arguments.designs,
        jobs=arguments.jobs,
        flow_cache=arguments.flow_cache,
        progress=arguments.progress,
        repeat=arguments.repeat,
    )
    payload = json.dumps(report, indent=2, default=str, sort_keys=True)
    if arguments.output:
        with open(arguments.output, "w") as handle:
            handle.write(payload + "\n")
        print(f"report written to {arguments.output}", file=sys.stderr)
    if arguments.json:
        print(payload)
    else:
        print(render_markdown(report))
    return 0


def _list(arguments: argparse.Namespace) -> int:
    scenarios = list_scenarios()
    if arguments.json:
        print(json.dumps([
            {
                "id": scenario.id,
                "title": scenario.title,
                "description": scenario.description,
                "scale": scenario.scale,
                "designs": list(scenario.designs),
                "backend": scenario.backend,
                "upset_model": scenario.upset_model,
                "stages": list(scenario.stages),
                "axes": [{"field": field, "values": list(values)}
                         for field, values in scenario.axes],
            }
            for scenario in scenarios], indent=2))
        return 0
    width = max(len(scenario.id) for scenario in scenarios)
    for scenario in scenarios:
        axes = "".join(
            f" [{field}: {', '.join(map(str, values))}]"
            for field, values in scenario.axes)
        print(f"{scenario.id.ljust(width)}  {scenario.title}{axes}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = _build_parser().parse_args(argv)
    if arguments.command == "run":
        return _run(arguments)
    return _list(arguments)


if __name__ == "__main__":
    raise SystemExit(main())
