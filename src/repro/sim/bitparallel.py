"""Bit-parallel (PPSFP-style) fault simulation kernel.

The scalar :class:`~repro.sim.simulator.Simulator` evaluates one fault at a
time, one gate at a time.  This module evaluates an entire *shard* of faults
in one sweep by packing them into the bit lanes of Python big integers:
lane *i* of every word is fault *i* of the shard, so one ``&``/``|``/``^``
over two words simulates one gate for every fault in the shard at once —
the classic parallel-fault / parallel-pattern single-fault technique of
hardware fault simulators, applied to the paper's exhaustive bitstream
fault-injection campaigns.

Two-mask ``(v, k)`` encoding
----------------------------

Simulation is three-valued ({0, 1, X}), so one bit per lane is not enough.
Every net carries **two** lane words:

* ``v`` — the *value* word: lane bit set iff the lane's value is known 1;
* ``k`` — the *known* word: lane bit set iff the lane's value is 0 or 1.

giving the encoding ``0 -> (0, 1)``, ``1 -> (1, 1)``, ``X -> (0, 0)`` per
lane (the fourth combination ``(1, 0)`` is never produced; all operators
below keep the representation canonical, i.e. ``v & ~k == 0``).  The
three-valued connectives then become two or three word operations each::

    NOT(a)    v' = k_a & ~v_a                 k' = k_a
    AND(a,b)  v' = v_a & v_b                  k' = (k_a & k_b) | (k_a & ~v_a) | (k_b & ~v_b)
    OR(a,b)   v' = v_a | v_b                  k' = (k_a & k_b) | v_a | v_b
    XOR(a,b)  k' = k_a & k_b                  v' = (v_a ^ v_b) & k'

LUTs are compiled once per design by Shannon-expanding their INIT table
into a mux tree whose constant branches are folded away (``mux(x, 0, 1)``
is ``x``, ``mux(x, e, ~e)`` is ``x ^ e``, ...), which reduces typical
mapped logic (adder XOR chains, AND/OR gating, TMR majority voters) to a
handful of word operations.  The mux-tree semantics are *exactly* those of
:func:`repro.cells.logic.lut_eval`: an unknown input yields a known output
iff every truth-table entry reachable through the unknown address bits
agrees.

Fault overlays become *lane-select masks*: a LUT INIT override turns the
affected truth-table entries into per-lane constant words, a pin/net/FF
override is blended into only the lanes whose fault carries it.  Lanes
beyond the shard population simply re-simulate the golden circuit and are
ignored at verdict demux.  The kernel supports the same two execution
modes as the scalar simulator: *full* (every gate, state persists across
cycles) and *cone* (only the union fan-out cone of the shard's faults is
re-evaluated; everything else is re-seeded from the recorded golden trace
every cycle, matching ``Simulator.run(golden=..., cone=...)`` lane by
lane).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..cells import logic
from .compile import (KIND_BUF, KIND_CONST0, KIND_CONST1, KIND_LUT,
                      CompiledDesign, FaultCone)
from .overlay import (BLEND_AND_NOT, BLEND_SHORT, BLEND_WIRED_AND,
                      BLEND_WIRED_OR, SOURCE_CONST, SOURCE_NET,
                      FaultOverlay, SourceOverride)
from .simulator import SimulationTrace

# ----------------------------------------------------------------------
# Expression trees (compile time only)
# ----------------------------------------------------------------------
_T_CMASK = 0   # (tag, value_word) — per-lane known constant
_T_X = 1       # (tag,) — unknown in every lane
_T_VAR = 2     # (tag, ref) — a LUT input (pin position, later net slot)
_T_NOT = 3     # (tag, sub)
_T_AND = 4     # (tag, a, b)
_T_OR = 5      # (tag, a, b)
_T_XOR = 6     # (tag, a, b)
_T_MUX = 7     # (tag, ref, if0, if1) — select is a LUT input
_T_MUXX = 8    # (tag, if0, if1) — select is unknown in every lane


def _neg(node: Tuple, all_mask: int) -> Tuple:
    """NOT with double-negation and constant folding.

    Mixed per-lane constants appear when a shard patches the same LUT
    differently across lanes (e.g. two faults flipping adjacent INIT
    bits); negating one is a plain complement under the lane mask.
    """
    if node[0] == _T_NOT:
        return node[1]
    if node[0] == _T_CMASK:
        return (_T_CMASK, node[1] ^ all_mask)
    return (_T_NOT, node)


def _fold_xor(var: Tuple, other: Tuple, all_mask: int) -> Tuple:
    """``var ^ other`` with the NOT pulled out of *other* when present."""
    if other[0] == _T_NOT:
        return _neg((_T_XOR, var, other[1]), all_mask)
    return (_T_XOR, var, other)


def _fold_mux(position: int, if0: Tuple, if1: Tuple, all_mask: int) -> Tuple:
    """One Shannon step ``mux(input[position], if0, if1)``, folded.

    Every rewrite below is exact in three-valued semantics (checked by the
    exhaustive kernel tests against :func:`logic.lut_eval`): e.g.
    ``mux(x, 0, e)`` equals ``x AND e`` including the unknown-select case,
    because both yield X unless ``e`` resolves the ambiguity to 0.
    """
    if if0 == if1:
        return if0
    var = (_T_VAR, position)
    zero = (_T_CMASK, 0)
    one = (_T_CMASK, all_mask)
    if if0 == zero and if1 == one:
        return var
    if if0 == one and if1 == zero:
        return (_T_NOT, var)
    if if0 == zero:
        return (_T_AND, var, if1)
    if if1 == zero:
        return (_T_AND, (_T_NOT, var), if0)
    if if0 == one:
        return (_T_OR, (_T_NOT, var), if1)
    if if1 == one:
        return (_T_OR, var, if0)
    if if1 == _neg(if0, all_mask) or if0 == _neg(if1, all_mask):
        # mux(x, e, ~e) == x ^ e and mux(x, ~e, e) == x ^ ~e.
        return _fold_xor(var, if0, all_mask)
    if if0[0] == _T_NOT and if1[0] == _T_NOT:
        # mux(x, ~a, ~b) == ~mux(x, a, b) — exposes XOR chains above.
        return _neg(_fold_mux(position, if0[1], if1[1], all_mask), all_mask)
    return (_T_MUX, position, if0, if1)


def _lut_tree(entry_words: Sequence[int], num_inputs: int,
              all_mask: int) -> Tuple:
    """Shannon-fold a truth table (one lane word per entry) into a tree."""
    nodes: List[Tuple] = [(_T_CMASK, word) for word in entry_words]
    for position in range(num_inputs):
        nodes = [_fold_mux(position, nodes[j], nodes[j + 1], all_mask)
                 for j in range(0, len(nodes), 2)]
    return nodes[0]


def _remap_leaves(node: Tuple, net_of_position: Sequence[int]) -> Tuple:
    """Replace positional VAR/MUX refs with net slots (X for unconnected)."""
    tag = node[0]
    if tag in (_T_CMASK, _T_X):
        return node
    if tag == _T_VAR:
        net = net_of_position[node[1]]
        return (_T_VAR, net) if net >= 0 else (_T_X,)
    if tag == _T_NOT:
        return (_T_NOT, _remap_leaves(node[1], net_of_position))
    if tag == _T_MUX:
        if0 = _remap_leaves(node[2], net_of_position)
        if1 = _remap_leaves(node[3], net_of_position)
        net = net_of_position[node[1]]
        if net < 0:
            return (_T_MUXX, if0, if1)
        return (_T_MUX, net, if0, if1)
    return (tag, _remap_leaves(node[1], net_of_position),
            _remap_leaves(node[2], net_of_position))


# ----------------------------------------------------------------------
# Postfix programs (run time)
# ----------------------------------------------------------------------
_OP_CONST = 0   # push (arg, all)
_OP_X = 1       # push (0, 0)
_OP_VAR = 2     # push net / pin slot `arg`
_OP_NOT = 3
_OP_AND = 4
_OP_OR = 5
_OP_XOR = 6
_OP_MUX = 7     # select from net / pin slot `arg`, pops if1 then if0
_OP_MUXX = 8    # select unknown, pops if1 then if0


def _flatten(node: Tuple, ops: List[Tuple[int, int]]) -> None:
    tag = node[0]
    if tag == _T_CMASK:
        ops.append((_OP_CONST, node[1]))
    elif tag == _T_X:
        ops.append((_OP_X, 0))
    elif tag == _T_VAR:
        ops.append((_OP_VAR, node[1]))
    elif tag == _T_NOT:
        _flatten(node[1], ops)
        ops.append((_OP_NOT, 0))
    elif tag == _T_MUX:
        _flatten(node[2], ops)
        _flatten(node[3], ops)
        ops.append((_OP_MUX, node[1]))
    elif tag == _T_MUXX:
        _flatten(node[1], ops)
        _flatten(node[2], ops)
        ops.append((_OP_MUXX, 0))
    else:
        _flatten(node[1], ops)
        _flatten(node[2], ops)
        ops.append(({_T_AND: _OP_AND, _T_OR: _OP_OR, _T_XOR: _OP_XOR}[tag],
                    0))


# Entry kinds of the per-gate evaluation program.  The two-operand shapes
# cover the vast majority of mapped logic and dodge the postfix machine.
_E_CONST0 = 0    # out := 0 in every lane
_E_CONST1 = 1    # out := 1 in every lane
_E_COPY = 2      # out := net a (BUF and LUT pass-through)
_E_NOT = 3       # out := ~net a
_E_AND2 = 4      # out := net a & net b
_E_OR2 = 5       # out := net a | net b
_E_XOR2 = 6      # out := net a ^ net b
_E_XNOR2 = 7     # out := ~(net a ^ net b)
_E_X = 8         # out := X in every lane (unconnected input)
_E_TREE = 9      # out := postfix program over net slots
_E_PINS = 10     # out := postfix program over per-pin override slots
_E_CONSTM = 11   # out := known per-lane constant word `a`


@dataclasses.dataclass(frozen=True)
class _Entry:
    """One gate of the lane program, in evaluation order."""

    kind: int
    out_net: int
    a: int = -1
    b: int = -1
    ops: Optional[Tuple[Tuple[int, int], ...]] = None
    #: pin slots for _E_PINS: ((net, ((lane_mask, override), ...)), ...)
    pins: Optional[Tuple] = None
    #: lane-masked net overrides applied right after this gate writes
    post: Optional[Tuple] = None
    gate_index: int = -1


def _specialize(tree: Tuple, out_net: int, gate_index: int) -> _Entry:
    """Collapse a remapped tree into the cheapest entry shape."""
    tag = tree[0]
    if tag == _T_CMASK:
        if tree[1] == 0:
            return _Entry(_E_CONST0, out_net, gate_index=gate_index)
        if tree[1] == -1:
            # The base program folds with a nominal all-ones mask.
            return _Entry(_E_CONST1, out_net, gate_index=gate_index)
        # A shard-patched LUT can collapse to a per-lane constant word.
        return _Entry(_E_CONSTM, out_net, a=tree[1], gate_index=gate_index)
    if tag == _T_X:
        return _Entry(_E_X, out_net, gate_index=gate_index)
    if tag == _T_VAR:
        return _Entry(_E_COPY, out_net, a=tree[1], gate_index=gate_index)
    if tag == _T_NOT and tree[1][0] == _T_VAR:
        return _Entry(_E_NOT, out_net, a=tree[1][1], gate_index=gate_index)
    two_op = {_T_AND: _E_AND2, _T_OR: _E_OR2, _T_XOR: _E_XOR2}
    if tag in two_op and tree[1][0] == _T_VAR and tree[2][0] == _T_VAR:
        return _Entry(two_op[tag], out_net, a=tree[1][1], b=tree[2][1],
                      gate_index=gate_index)
    if tag == _T_NOT and tree[1][0] == _T_XOR and \
            tree[1][1][0] == _T_VAR and tree[1][2][0] == _T_VAR:
        return _Entry(_E_XNOR2, out_net, a=tree[1][1][1], b=tree[1][2][1],
                      gate_index=gate_index)
    ops: List[Tuple[int, int]] = []
    _flatten(tree, ops)
    return _Entry(_E_TREE, out_net, ops=tuple(ops), gate_index=gate_index)


class VectorProgram:
    """The base (fault-free) lane program of one compiled design.

    Built once per design — campaigns memoize it per implementation
    fingerprint (see :meth:`repro.faults.cache.CampaignCacheEntry
    .vector_program`) — then patched per fault shard with lane-select
    masks by :func:`patch_program`.
    """

    def __init__(self, design: CompiledDesign) -> None:
        self.design = design
        self.num_nets = design.num_nets
        self.entries: List[_Entry] = []
        # A nominal mask wide enough for constant folding; folding only
        # distinguishes all-zeros from all-ones, so any width works and
        # the runtime rescales constants to the shard's lane width.
        for gate in design.gates:
            if gate.kind == KIND_CONST0:
                self.entries.append(_Entry(_E_CONST0, gate.output_net,
                                           gate_index=gate.index))
            elif gate.kind == KIND_CONST1:
                self.entries.append(_Entry(_E_CONST1, gate.output_net,
                                           gate_index=gate.index))
            elif gate.kind == KIND_BUF:
                net = gate.input_nets[0]
                kind = _E_COPY if net >= 0 else _E_X
                self.entries.append(_Entry(kind, gate.output_net, a=net,
                                           gate_index=gate.index))
            else:
                self.entries.append(self._compile_lut(gate))

    def _compile_lut(self, gate, init: Optional[int] = None) -> _Entry:
        table = gate.init if init is None else init
        words = [-1 if (table >> address) & 1 else 0
                 for address in range(1 << gate.num_inputs)]
        tree = _lut_tree(words, gate.num_inputs, -1)
        tree = _remap_leaves(tree, gate.input_nets)
        return _specialize(tree, gate.output_net, gate.index)


def compile_vector_program(design: CompiledDesign) -> VectorProgram:
    """Compile *design* into a reusable lane program."""
    return VectorProgram(design)


# ----------------------------------------------------------------------
# Shard patching
# ----------------------------------------------------------------------
def patch_program(program: VectorProgram, overlays: Sequence[FaultOverlay],
                  all_mask: int):
    """Apply a shard of overlays (lane *i* = overlay *i*) to the program.

    Returns ``(entries, pre_net_overrides)``: the patched entry list and the
    lane-masked net overrides the sweep applies before/after every settle
    pass (mirroring the scalar simulator's application points).
    """
    design = program.design
    init_masks: Dict[int, List[Tuple[int, int]]] = {}
    pin_masks: Dict[int, Dict[int, List[Tuple[int, SourceOverride]]]] = {}
    net_masks: Dict[int, List[Tuple[int, SourceOverride]]] = {}
    for lane, overlay in enumerate(overlays):
        mask = 1 << lane
        for gate_index, new_init in overlay.lut_init_overrides.items():
            init_masks.setdefault(gate_index, []).append((mask, new_init))
        for (gate_index, position), override in \
                overlay.gate_pin_overrides.items():
            pin_masks.setdefault(gate_index, {}).setdefault(
                position, []).append((mask, override))
        for net, override in overlay.net_overrides.items():
            net_masks.setdefault(net, []).append((mask, override))

    entries = list(program.entries)
    position_of_gate = {entry.gate_index: index
                        for index, entry in enumerate(entries)}
    for gate_index in sorted(set(init_masks) | set(pin_masks)):
        gate = design.gates[gate_index]
        if gate.kind == KIND_BUF:
            # A buffer carries no truth table; only its pin can be patched.
            overridden = pin_masks[gate_index]
            pins = ((gate.input_nets[0], tuple(overridden.get(0, ()))),)
            entries[position_of_gate[gate_index]] = _Entry(
                _E_PINS, gate.output_net, ops=((_OP_VAR, 0),), pins=pins,
                gate_index=gate_index)
            continue
        if gate.kind != KIND_LUT:
            continue
        lanes_init = init_masks.get(gate_index, ())
        words = []
        for address in range(1 << gate.num_inputs):
            word = all_mask if (gate.init >> address) & 1 else 0
            for mask, new_init in lanes_init:
                if (new_init >> address) & 1:
                    word |= mask
                else:
                    word &= ~mask
            words.append(word)
        tree = _lut_tree(words, gate.num_inputs, all_mask)
        overridden = pin_masks.get(gate_index)
        if overridden is None:
            tree = _remap_leaves(tree, gate.input_nets)
            entry = _specialize(tree, gate.output_net, gate_index)
        else:
            ops: List[Tuple[int, int]] = []
            _flatten(tree, ops)
            pins = tuple(
                (net, tuple(overridden.get(position, ())))
                for position, net in enumerate(gate.input_nets))
            entry = _Entry(_E_PINS, gate.output_net, ops=tuple(ops),
                           pins=pins, gate_index=gate_index)
        entries[position_of_gate[gate_index]] = entry

    # Attach net overrides to their driver entries (applied the moment the
    # driver writes, so later gates in the same pass observe the fault)
    # and collect them for the pre-pass / post-pass application loops.
    pre_net_overrides = [(net, tuple(lane_overrides))
                         for net, lane_overrides in net_masks.items()]
    driver_of_net = {entry.out_net: index
                     for index, entry in enumerate(entries)}
    for net, lane_overrides in net_masks.items():
        index = driver_of_net.get(net)
        if index is not None:
            entries[index] = dataclasses.replace(
                entries[index], post=tuple(lane_overrides))
    return entries, pre_net_overrides


# ----------------------------------------------------------------------
# Lane-wise primitives
# ----------------------------------------------------------------------
def _resolve_lanes(override: SourceOverride, net_v: List[int],
                   net_k: List[int], all_mask: int) -> Tuple[int, int]:
    """Lane-wise :meth:`SourceOverride.resolve`."""
    kind = override.kind
    if kind == SOURCE_CONST:
        value = override.value
        if value == logic.ONE:
            return all_mask, all_mask
        if value == logic.ZERO:
            return 0, all_mask
        return 0, 0
    if kind == SOURCE_NET:
        net = override.net_a
        if net < 0:
            return 0, 0
        return net_v[net], net_k[net]
    net_a, net_b = override.net_a, override.net_b
    va, ka = (net_v[net_a], net_k[net_a]) if net_a >= 0 else (0, 0)
    vb, kb = (net_v[net_b], net_k[net_b]) if net_b >= 0 else (0, 0)
    blend = override.blend
    if blend == BLEND_SHORT:
        same = ((va ^ vb) ^ all_mask) & ((ka ^ kb) ^ all_mask)
        return va & same, ka & same
    if blend == BLEND_WIRED_AND:
        return (va & vb,
                (ka & kb) | (ka & (va ^ all_mask)) | (kb & (vb ^ all_mask)))
    if blend == BLEND_WIRED_OR:
        return va | vb, (ka & kb) | va | vb
    if blend == BLEND_AND_NOT:
        nv, nk = kb & (vb ^ all_mask), kb
        return (va & nv,
                (ka & nk) | (ka & (va ^ all_mask)) | (nk & (nv ^ all_mask)))
    return 0, 0


def _blend_lanes(base: Tuple[int, int], lane_overrides,
                 net_v: List[int], net_k: List[int],
                 all_mask: int) -> Tuple[int, int]:
    """Replace the lanes selected by each (mask, override) pair."""
    v, k = base
    for mask, override in lane_overrides:
        ov, ok = _resolve_lanes(override, net_v, net_k, all_mask)
        keep = mask ^ all_mask
        v = (v & keep) | (ov & mask)
        k = (k & keep) | (ok & mask)
    return v, k


def _run_ops(ops, pins_v, pins_k, all_mask: int) -> Tuple[int, int]:
    """Execute one postfix program against per-slot (v, k) arrays."""
    stack: List[Tuple[int, int]] = []
    push = stack.append
    pop = stack.pop
    for code, arg in ops:
        if code == _OP_VAR:
            push((pins_v[arg], pins_k[arg]))
        elif code == _OP_AND:
            vb, kb = pop()
            va, ka = pop()
            push((va & vb, (ka & kb) | (ka & (va ^ all_mask)) |
                  (kb & (vb ^ all_mask))))
        elif code == _OP_OR:
            vb, kb = pop()
            va, ka = pop()
            push((va | vb, (ka & kb) | va | vb))
        elif code == _OP_XOR:
            vb, kb = pop()
            va, ka = pop()
            k = ka & kb
            push(((va ^ vb) & k, k))
        elif code == _OP_NOT:
            va, ka = pop()
            push((ka & (va ^ all_mask), ka))
        elif code == _OP_MUX:
            v1, k1 = pop()
            v0, k0 = pop()
            vs, ks = pins_v[arg], pins_k[arg]
            sel1 = ks & vs
            sel0 = ks & (vs ^ all_mask)
            unk = ks ^ all_mask
            agree = k0 & k1 & ((v0 ^ v1) ^ all_mask)
            push(((sel1 & v1) | (sel0 & v0) | (unk & agree & v0),
                  (sel1 & k1) | (sel0 & k0) | (unk & agree)))
        elif code == _OP_MUXX:
            v1, k1 = pop()
            v0, k0 = pop()
            agree = k0 & k1 & ((v0 ^ v1) ^ all_mask)
            push((agree & v0, agree))
        elif code == _OP_CONST:
            push((arg, all_mask))
        else:  # _OP_X
            push((0, 0))
    return stack[-1]


def _evaluate_pass(entries, net_v: List[int], net_k: List[int],
                   all_mask: int) -> None:
    """One settle pass: evaluate every entry in levelized order."""
    for entry in entries:
        out = entry.out_net
        if out < 0:
            continue
        kind = entry.kind
        if kind == _E_AND2:
            va, ka = net_v[entry.a], net_k[entry.a]
            vb, kb = net_v[entry.b], net_k[entry.b]
            net_v[out] = va & vb
            net_k[out] = (ka & kb) | (ka & (va ^ all_mask)) | \
                (kb & (vb ^ all_mask))
        elif kind == _E_XOR2:
            k = net_k[entry.a] & net_k[entry.b]
            net_v[out] = (net_v[entry.a] ^ net_v[entry.b]) & k
            net_k[out] = k
        elif kind == _E_XNOR2:
            k = net_k[entry.a] & net_k[entry.b]
            net_v[out] = ((net_v[entry.a] ^ net_v[entry.b]) ^ all_mask) & k
            net_k[out] = k
        elif kind == _E_OR2:
            va, vb = net_v[entry.a], net_v[entry.b]
            net_v[out] = va | vb
            net_k[out] = (net_k[entry.a] & net_k[entry.b]) | va | vb
        elif kind == _E_COPY:
            net_v[out] = net_v[entry.a]
            net_k[out] = net_k[entry.a]
        elif kind == _E_NOT:
            k = net_k[entry.a]
            net_v[out] = k & (net_v[entry.a] ^ all_mask)
            net_k[out] = k
        elif kind == _E_TREE:
            net_v[out], net_k[out] = _run_ops(entry.ops, net_v, net_k,
                                              all_mask)
        elif kind == _E_PINS:
            pins_v: List[int] = []
            pins_k: List[int] = []
            for net, lane_overrides in entry.pins:
                base = (net_v[net], net_k[net]) if net >= 0 else (0, 0)
                if lane_overrides:
                    base = _blend_lanes(base, lane_overrides, net_v, net_k,
                                        all_mask)
                pins_v.append(base[0])
                pins_k.append(base[1])
            net_v[out], net_k[out] = _run_ops(entry.ops, pins_v, pins_k,
                                              all_mask)
        elif kind == _E_CONST0:
            net_v[out] = 0
            net_k[out] = all_mask
        elif kind == _E_CONST1:
            net_v[out] = all_mask
            net_k[out] = all_mask
        elif kind == _E_CONSTM:
            net_v[out] = entry.a
            net_k[out] = all_mask
        else:  # _E_X
            net_v[out] = 0
            net_k[out] = 0
        if entry.post is not None:
            v, k = _blend_lanes((net_v[out], net_k[out]), entry.post,
                                net_v, net_k, all_mask)
            net_v[out] = v
            net_k[out] = k


# ----------------------------------------------------------------------
# Flip-flop lane records
# ----------------------------------------------------------------------
@dataclasses.dataclass
class _LaneFlipFlop:
    """Per-shard flip-flop record with lane-masked overrides."""

    d_net: int
    ce_net: int
    r_net: int
    q_net: int
    d_overrides: Tuple = ()
    ce_overrides: Tuple = ()
    r_overrides: Tuple = ()
    state_v: int = 0
    state_k: int = 0


def _build_flip_flops(design: CompiledDesign,
                      overlays: Sequence[FaultOverlay],
                      active_indices: Optional[Sequence[int]],
                      all_mask: int) -> List[_LaneFlipFlop]:
    pin_masks: Dict[Tuple[int, str], List[Tuple[int, SourceOverride]]] = {}
    init_masks: Dict[int, Tuple[int, int]] = {}
    for lane, overlay in enumerate(overlays):
        mask = 1 << lane
        for (ff_index, port), override in overlay.ff_pin_overrides.items():
            pin_masks.setdefault((ff_index, port), []).append((mask,
                                                               override))
        for ff_index, value in overlay.ff_init_overrides.items():
            set_mask, clear_mask = init_masks.get(ff_index, (0, 0))
            if value:
                set_mask |= mask
            else:
                clear_mask |= mask
            init_masks[ff_index] = (set_mask, clear_mask)

    indices = active_indices if active_indices is not None else \
        range(len(design.flip_flops))
    records = []
    for index in indices:
        flip_flop = design.flip_flops[index]
        state_v = all_mask if flip_flop.init_value else 0
        set_mask, clear_mask = init_masks.get(index, (0, 0))
        state_v = (state_v | set_mask) & ~clear_mask
        records.append(_LaneFlipFlop(
            d_net=flip_flop.d_net, ce_net=flip_flop.ce_net,
            r_net=flip_flop.reset_net, q_net=flip_flop.q_net,
            d_overrides=tuple(pin_masks.get((index, "D"), ())),
            ce_overrides=tuple(pin_masks.get((index, "CE"), ())),
            r_overrides=tuple(pin_masks.get((index, "R"), ())),
            state_v=state_v, state_k=all_mask))
    return records


def _ff_next(record: _LaneFlipFlop, net_v: List[int], net_k: List[int],
             all_mask: int) -> Tuple[int, int]:
    """Lane-wise replica of :meth:`Simulator._ff_next`."""
    d_net = record.d_net
    data = (net_v[d_net], net_k[d_net]) if d_net >= 0 else (0, 0)
    if record.d_overrides:
        data = _blend_lanes(data, record.d_overrides, net_v, net_k, all_mask)
    ce_net = record.ce_net
    enable = (net_v[ce_net], net_k[ce_net]) if ce_net >= 0 \
        else (all_mask, all_mask)
    if record.ce_overrides:
        enable = _blend_lanes(enable, record.ce_overrides, net_v, net_k,
                              all_mask)
    r_net = record.r_net
    reset = (net_v[r_net], net_k[r_net]) if r_net >= 0 else (0, all_mask)
    if record.r_overrides:
        reset = _blend_lanes(reset, record.r_overrides, net_v, net_k,
                             all_mask)

    # mux(enable, current, data); a lane without clock enable reads the
    # known-1 default and the mux degenerates to `data`, like the scalar.
    vs, ks = enable
    sel1 = ks & vs
    sel0 = ks & (vs ^ all_mask)
    unk = ks ^ all_mask
    v0, k0 = record.state_v, record.state_k
    v1, k1 = data
    agree = k0 & k1 & ((v0 ^ v1) ^ all_mask)
    next_v = (sel1 & v1) | (sel0 & v0) | (unk & agree & v0)
    next_k = (sel1 & k1) | (sel0 & k0) | (unk & agree)

    # Reset wins: known-1 forces 0, unknown forces X, known-0 keeps.
    rv, rk = reset
    keep = rk & (rv ^ all_mask)
    return next_v & keep, (next_k & keep) | (rk & rv)


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
@dataclasses.dataclass
class LaneOutcome:
    """Verdict-relevant result of one lane."""

    wrong_answer: bool
    first_mismatch_cycle: Optional[int]


@dataclasses.dataclass
class VectorResult:
    """Result of one shard sweep."""

    outcomes: List[LaneOutcome]
    cycles_simulated: int
    #: per cycle {port: [(v, k) per bit]} — only with record_lane_outputs
    lane_outputs: Optional[List[Dict[str, List[Tuple[int, int]]]]] = None


def broadcast_trace(golden: SimulationTrace,
                    all_mask: int) -> List[Tuple[List[int], List[int]]]:
    """Broadcast a recorded golden trace into per-cycle lane words.

    Shareable across every shard of a campaign (build once, pass as the
    *reseed* argument of :func:`simulate_lanes`).
    """
    if golden.net_values is None:
        raise ValueError("cone-mode lane simulation requires a golden "
                         "trace recorded with record_nets=True")
    reseed = []
    one = logic.ONE
    unknown = logic.UNKNOWN
    for values in golden.net_values:
        v_row = [all_mask if value == one else 0 for value in values]
        k_row = [0 if value == unknown else all_mask for value in values]
        reseed.append((v_row, k_row))
    return reseed


def broadcast_inputs(design: CompiledDesign, stimulus, all_mask: int):
    """Per-cycle broadcast (net, v, k) triples for the applied inputs.

    Like :func:`broadcast_trace`, the result only depends on the stimulus
    and lane width — build it once per campaign and pass it as the
    *inputs* argument of :func:`simulate_lanes` instead of re-decoding
    the stimulus for every shard.
    """
    per_cycle = []
    for input_values in stimulus:
        triples = []
        for port_name, binding in design.inputs.items():
            if port_name not in input_values:
                continue
            value = input_values[port_name]
            if isinstance(value, (list, tuple)):
                bits = list(value)
            else:
                bits = logic.int_to_bits(int(value), binding.width)
            for position, net in enumerate(binding.net_indices):
                if net < 0:
                    continue
                bit = bits[position]
                triples.append((net,
                                all_mask if bit == logic.ONE else 0,
                                0 if bit == logic.UNKNOWN else all_mask))
        per_cycle.append(triples)
    return per_cycle


def simulate_lanes(program: VectorProgram,
                   overlays: Sequence[FaultOverlay],
                   stimulus,
                   golden: SimulationTrace,
                   passes: Optional[int] = None,
                   skip_cycles: int = 0,
                   ports: Optional[Sequence[str]] = None,
                   cone: Optional[FaultCone] = None,
                   width: Optional[int] = None,
                   reseed: Optional[List[Tuple[List[int],
                                               List[int]]]] = None,
                   inputs: Optional[List[List[Tuple[int, int,
                                                    int]]]] = None,
                   record_lane_outputs: bool = False) -> VectorResult:
    """Simulate every overlay of a shard in one bit-parallel sweep.

    Lane *i* carries ``overlays[i]``; lanes up to *width* beyond the shard
    population re-simulate the golden circuit and are ignored.  With
    *cone* (the union fan-out cone of the shard) only cone gates and
    flip-flops are evaluated and everything else is re-seeded from the
    golden trace each cycle — the lane-wise equivalent of the scalar
    simulator's cone mode.  All overlays of a shard must agree on
    ``required_passes()`` (pass the common value as *passes*) for
    bit-identical results versus the scalar simulator.
    """
    lanes = len(overlays)
    lane_width = width if width is not None else lanes
    if lane_width < lanes:
        raise ValueError(f"width {lane_width} cannot hold {lanes} lanes")
    all_mask = (1 << lane_width) - 1 if lane_width else 0
    used_mask = (1 << lanes) - 1
    if passes is None:
        passes = max((overlay.required_passes() for overlay in overlays),
                     default=1)

    design = program.design
    entries, pre_net_overrides = patch_program(program, overlays, all_mask)
    if cone is not None:
        active_gates = cone.gate_set
        entries = [entry for entry in entries
                   if entry.gate_index in active_gates]
        flip_flops = _build_flip_flops(design, overlays, cone.ff_indices,
                                       all_mask)
        if reseed is None:
            reseed = broadcast_trace(golden, all_mask)
    else:
        flip_flops = _build_flip_flops(design, overlays, None, all_mask)

    output_masks: Dict[Tuple[str, int], Tuple] = {}
    for lane, overlay in enumerate(overlays):
        for key, override in overlay.output_pin_overrides.items():
            output_masks.setdefault(key, []).append((1 << lane, override))
    output_masks = {key: tuple(value) for key, value in
                    output_masks.items()}

    inputs_per_cycle = inputs if inputs is not None else \
        broadcast_inputs(design, stimulus, all_mask)
    port_names = list(ports) if ports is not None else \
        list(design.outputs)
    # (port, bit, net, golden bit per cycle) for the comparison loop
    compare_plan = []
    for port_name in port_names:
        binding = design.outputs[port_name]
        for position, net in enumerate(binding.net_indices):
            compare_plan.append((port_name, position, net))

    net_v = [0] * design.num_nets
    net_k = [0] * design.num_nets

    first_mismatch: List[Optional[int]] = [None] * lanes
    pending = used_mask
    lane_outputs: Optional[List[Dict[str, List[Tuple[int, int]]]]] = \
        [] if record_lane_outputs else None
    cycles_simulated = 0

    for cycle, _ in enumerate(stimulus):
        cycles_simulated = cycle + 1
        if reseed is not None:
            seed_v, seed_k = reseed[cycle]
            net_v = list(seed_v)
            net_k = list(seed_k)
        for net, v, k in inputs_per_cycle[cycle]:
            net_v[net] = v
            net_k[net] = k
        for record in flip_flops:
            if record.q_net >= 0:
                net_v[record.q_net] = record.state_v
                net_k[record.q_net] = record.state_k
        for net, lane_overrides in pre_net_overrides:
            v, k = _blend_lanes((net_v[net], net_k[net]), lane_overrides,
                                net_v, net_k, all_mask)
            net_v[net] = v
            net_k[net] = k

        for _ in range(passes):
            _evaluate_pass(entries, net_v, net_k, all_mask)
            for net, lane_overrides in pre_net_overrides:
                v, k = _blend_lanes((net_v[net], net_k[net]),
                                    lane_overrides, net_v, net_k, all_mask)
                net_v[net] = v
                net_k[net] = k

        # Sample outputs and fold the golden comparison into lane masks.
        golden_out = golden.outputs[cycle]
        mismatch = 0
        sampled: Optional[Dict[str, List[Tuple[int, int]]]] = \
            {} if record_lane_outputs else None
        for port_name, position, net in compare_plan:
            v, k = (net_v[net], net_k[net]) if net >= 0 else (0, 0)
            lane_overrides = output_masks.get((port_name, position))
            if lane_overrides is not None:
                v, k = _blend_lanes((v, k), lane_overrides, net_v, net_k,
                                    all_mask)
            if sampled is not None:
                sampled.setdefault(port_name, []).append((v, k))
            if cycle < skip_cycles:
                continue
            gold = golden_out[port_name][position]
            if gold == logic.UNKNOWN:
                continue
            expect = all_mask if gold == logic.ONE else 0
            mismatch |= (k ^ all_mask) | (v ^ expect)
        if sampled is not None:
            lane_outputs.append(sampled)

        fresh = mismatch & pending
        if fresh:
            pending &= ~fresh
            while fresh:
                low = fresh & -fresh
                first_mismatch[low.bit_length() - 1] = cycle
                fresh ^= low

        # Clock edge: compute every next state, then publish.
        next_states = [_ff_next(record, net_v, net_k, all_mask)
                       for record in flip_flops]
        for record, (state_v, state_k) in zip(flip_flops, next_states):
            record.state_v = state_v
            record.state_k = state_k

        if pending == 0 and not record_lane_outputs:
            # Every lane already produced a wrong answer; later cycles
            # cannot change any verdict.
            break

    outcomes = [LaneOutcome(first_mismatch[lane] is not None,
                            first_mismatch[lane]) for lane in range(lanes)]
    return VectorResult(outcomes, cycles_simulated, lane_outputs)
