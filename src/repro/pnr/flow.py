"""End-to-end implementation flow: pack → place → route → bitstream.

:func:`implement` is the one-call entry point used by the experiments: it
takes a flat primitive netlist, selects (or accepts) a device, and returns an
:class:`Implementation` bundling every artefact the fault-injection campaign
and the resource reports need.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..fpga.bitgen import UsedResources, generate_bitstream
from ..fpga.config import ConfigLayout, ConfigMemory, shared_layout
from ..fpga.device import Device
from ..fpga.spartan2e import smallest_device_for
from ..netlist.ir import Definition
from .artifacts import StoreLike, flow_fingerprint, resolve_store
from .pack import PackResult, pack
from .place import Floorplan, Placement, place
from .route import RoutingResult, route_design
from .timing import TimingReport, estimate_timing


@dataclasses.dataclass
class Implementation:
    """A fully implemented design on a device."""

    design: Definition
    device: Device
    packing: PackResult
    placement: Placement
    routing: RoutingResult
    timing: TimingReport
    bitstream: ConfigMemory
    layout: ConfigLayout
    resources: UsedResources

    @property
    def slice_count(self) -> int:
        return sum(1 for s in self.packing.slices if not s.is_empty())

    def summary(self) -> Dict[str, object]:
        stats = self.resources.stats
        return {
            "design": self.design.name,
            "device": self.device.spec.name,
            "slices": self.slice_count,
            "luts": self.packing.num_luts,
            "ffs": self.packing.num_ffs,
            "routed_nets": len(self.routing.routes),
            "routing_bits": stats.routing_bits,
            "lut_bits": stats.lut_bits,
            "ff_bits": stats.ff_bits,
            "fmax_mhz": round(self.timing.fmax_mhz, 1),
        }


def implement(definition: Definition, device: Optional[Device] = None,
              seed: int = 1, floorplan: Optional[Floorplan] = None,
              anneal_moves_per_slice: int = 4,
              router_iterations: int = 20,
              allow_overuse: bool = False,
              target_utilization: float = 0.55,
              layout: Optional[ConfigLayout] = None,
              artifact_store: StoreLike = None,
              partitions: int = 1,
              threads: Optional[int] = None) -> Implementation:
    """Implement a flat netlist on a device.

    When *device* is omitted the smallest profile that fits the design at a
    comfortable utilization is selected automatically.  If the router cannot
    resolve congestion, the flow retries with a sparser placement (lower
    utilization target) before giving up — the same escalation a human would
    apply.

    *artifact_store* (a directory path or
    :class:`~repro.pnr.artifacts.FlowArtifactStore`) enables the persistent
    flow cache: the call's inputs are fingerprinted, a stored
    implementation with that fingerprint is returned directly, and a miss
    stores the freshly computed one.  The flow is deterministic in its
    fingerprinted inputs, so cached and recomputed implementations are
    bit-identical.

    *partitions* selects the partition-parallel annealer (fingerprinted —
    it changes the placement); *threads* (default: the
    ``REPRO_FLOW_THREADS`` environment knob) only schedules the region
    sweeps and is deliberately not fingerprinted.
    """
    from .route import RoutingError

    store = resolve_store(artifact_store)
    fingerprint = None

    def lookup(target_device: Device):
        return flow_fingerprint(
            definition, target_device, seed=seed, floorplan=floorplan,
            anneal_moves_per_slice=anneal_moves_per_slice,
            router_iterations=router_iterations,
            allow_overuse=allow_overuse,
            target_utilization=target_utilization,
            partitions=partitions)

    # With an explicit device the cache can answer before packing; the
    # auto-sized path needs the pack statistics to pick the device first.
    if store is not None and device is not None:
        fingerprint = lookup(device)
        cached = store.load(fingerprint, definition)
        if cached is not None:
            return cached

    packed = pack(definition)
    if device is None:
        device = smallest_device_for(packed.num_luts, packed.num_ffs)
        if store is not None:
            fingerprint = lookup(device)
            cached = store.load(fingerprint, definition)
            if cached is not None:
                return cached
    if layout is None:
        layout = shared_layout(device)

    placement = None
    routing = None
    utilization = target_utilization
    attempts = 3
    for attempt in range(attempts):
        placement = place(definition, packed, device, seed=seed + attempt,
                          floorplan=floorplan,
                          anneal_moves_per_slice=anneal_moves_per_slice,
                          target_utilization=utilization,
                          partitions=partitions, threads=threads)
        try:
            routing = route_design(definition, packed, placement, device,
                                   max_iterations=router_iterations
                                   + 8 * attempt,
                                   allow_overuse=allow_overuse,
                                   threads=threads)
            break
        except RoutingError:
            if attempt == attempts - 1 or floorplan is not None:
                raise
            utilization = max(0.25, utilization * 0.7)
    timing = estimate_timing(definition, placement)
    bitstream, resources, layout = generate_bitstream(
        definition, device, packed, placement, routing, layout)

    implementation = Implementation(
        design=definition,
        device=device,
        packing=packed,
        placement=placement,
        routing=routing,
        timing=timing,
        bitstream=bitstream,
        layout=layout,
        resources=resources,
    )
    if store is not None and fingerprint is not None:
        store.store(fingerprint, implementation)
    return implementation
