"""Guard the campaign-engine benchmark against performance regressions.

Compares a freshly measured ``BENCH_campaign.json`` against the baseline
committed at the repository root and fails (exit code 1) when the best
backend of any design regresses by more than the tolerance.

Absolute faults/sec are machine-dependent, so the comparison uses
``speedup_vs_seed_serial``: both the candidate backend and the seed serial
loop run on the *same* machine in the same session, which makes the ratio
portable across laptops and shared CI runners.  A >30 % drop of that ratio
means the engine itself got slower, not the hardware.

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_campaign.json --current /tmp/BENCH_campaign.json \
        [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def best_speedups(payload: dict) -> dict:
    """{design: best speedup_vs_seed_serial over all backends}."""
    result = {}
    for design, row in payload.get("designs", {}).items():
        speedups = [backend.get("speedup_vs_seed_serial", 0.0)
                    for backend in row.get("backends", {}).values()]
        if speedups:
            result[design] = max(speedups)
    return result


def check(baseline: dict, current: dict, tolerance: float) -> list:
    """Regression messages (empty when the run is acceptable)."""
    problems = []
    baseline_best = best_speedups(baseline)
    current_best = best_speedups(current)
    for design, reference in sorted(baseline_best.items()):
        measured = current_best.get(design)
        if measured is None:
            problems.append(f"{design}: missing from the current report")
            continue
        floor = reference * (1.0 - tolerance)
        if measured < floor:
            problems.append(
                f"{design}: best speedup {measured:.2f}x fell below "
                f"{floor:.2f}x ({reference:.2f}x baseline - "
                f"{tolerance:.0%} tolerance)")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_campaign.json")
    parser.add_argument("--current", type=Path, required=True,
                        help="freshly measured BENCH_campaign.json")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop of the best "
                        "speedup (default 0.30)")
    arguments = parser.parse_args(argv)

    baseline = json.loads(arguments.baseline.read_text())
    current = json.loads(arguments.current.read_text())
    problems = check(baseline, current, arguments.tolerance)

    for design, reference in sorted(best_speedups(baseline).items()):
        measured = best_speedups(current).get(design)
        shown = f"{measured:.2f}x" if measured is not None else "missing"
        print(f"{design}: baseline {reference:.2f}x -> current {shown}")
    if problems:
        print("\nBenchmark regression detected:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("No benchmark regression beyond tolerance "
          f"({arguments.tolerance:.0%}).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
