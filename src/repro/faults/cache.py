"""Golden-trace and fault-effect caching for repeated campaigns.

The paper's experiments (Tables 3/4, the ablations, the figures and the
partition sweeps) repeatedly run campaigns over the *same* implemented
designs.  Everything campaign-invariant is a pure function of the
implementation (and, for golden traces, of the stimulus), so this module
memoizes it behind an implementation *fingerprint*:

* the :class:`~repro.sim.compile.CompiledDesign` (levelization),
* the fault lists per selection mode,
* the golden traces per stimulus (with the overlay-free gate program),
* the compiled bit-parallel lane program
  (:class:`~repro.sim.bitparallel.VectorProgram`),
* its numpy-compiled wrapper with accumulated shard plans
  (:class:`~repro.sim.npkernel.NumpyProgram`),
* the modelled :class:`~repro.faults.models.FaultEffect` per bit,
* the fault cones per seed-net set.

The fingerprint hashes the configuration-memory contents plus the design and
device identity, so two :class:`~repro.pnr.flow.Implementation` objects with
identical bitstreams share one cache entry, while re-implementing (different
placement seed, floorplan, device) forms a new one.  A small LRU bounds the
number of retained designs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import weakref
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from ..pnr.flow import Implementation
from ..sim.bitparallel import VectorProgram, compile_vector_program
from ..sim.compile import CompiledDesign, FaultCone
from ..sim.simulator import SimulationTrace, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .fault_list import FaultList
    from .models import FaultEffect

#: Default number of implementations kept in the global cache.
DEFAULT_MAX_ENTRIES = 8

#: Golden traces retained per implementation (they record every net value
#: per cycle, by far the heaviest cached artefact; distinct stimuli beyond
#: this evict least-recently-used).
MAX_GOLDEN_PER_ENTRY = 4


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters, one pair per cached artefact kind."""

    compiled_hits: int = 0
    compiled_misses: int = 0
    golden_hits: int = 0
    golden_misses: int = 0
    vector_program_hits: int = 0
    vector_program_misses: int = 0
    numpy_program_hits: int = 0
    numpy_program_misses: int = 0
    effect_hits: int = 0
    effect_misses: int = 0
    fault_list_hits: int = 0
    fault_list_misses: int = 0
    cone_hits: int = 0
    cone_misses: int = 0
    defeat_map_hits: int = 0
    defeat_map_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


def stimulus_key(stimulus: Sequence[Dict[str, int]]) -> Tuple:
    """A hashable identity for a stimulus stream.

    Input values may be integers or explicit bit lists (see
    :meth:`Simulator._apply_inputs`); both are normalized to hashables.
    """
    def freeze(value):
        if isinstance(value, (list, tuple)):
            return tuple(value)
        return value

    return tuple(
        tuple(sorted((name, freeze(value)) for name, value in cycle.items()))
        for cycle in stimulus)


def implementation_fingerprint(implementation: Implementation) -> str:
    """Content hash identifying one implemented design."""
    digest = hashlib.sha1()
    digest.update(implementation.design.name.encode())
    digest.update(implementation.device.spec.name.encode())
    digest.update(str(implementation.layout.total_bits).encode())
    digest.update(bytes(implementation.bitstream.bits))
    return digest.hexdigest()


class CampaignCacheEntry:
    """Everything campaign-invariant known about one implementation."""

    def __init__(self, fingerprint: str,
                 implementation: Implementation) -> None:
        self.fingerprint = fingerprint
        #: kept weak so a cached entry does not pin a heavyweight
        #: implementation alive on its own
        self._implementation = weakref.ref(implementation)
        #: guards the *structural* mutations (LRU eviction, the
        #: adoption flush) — entries are shared between the service's
        #: asyncio.to_thread workers.  Memo inserts stay unlocked: a
        #: lost race there only recomputes, never corrupts.
        self._lock = threading.Lock()
        self._compiled: Optional[CompiledDesign] = None
        self._vector_program: Optional[VectorProgram] = None
        self._numpy_program = None
        self._fault_lists: Dict[str, "FaultList"] = {}
        #: stimulus key -> (golden trace, overlay-free gate program);
        #: LRU-bounded, the traces dominate the cache's memory
        self._golden: "OrderedDict[Tuple, Tuple[SimulationTrace, object]]" \
            = OrderedDict()
        self._effects: Dict[int, "FaultEffect"] = {}
        self._cones: Dict[Tuple[int, ...], FaultCone] = {}
        #: fault-list mode -> static defeat map (repro.analysis.layout)
        self._defeat_maps: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def compiled_design(self, stats: CacheStats,
                        compiled: Optional[CompiledDesign] = None
                        ) -> CompiledDesign:
        if compiled is not None:
            # A caller-supplied compilation wins; adopt it so later lookups
            # (cones, effects) refer to the same net numbering object.
            # Artefacts derived from a previously adopted compilation are
            # dropped — the caller may have compiled a variant netlist, and
            # mixing gate/net numberings would corrupt results silently.
            if self._compiled is not compiled:
                with self._lock:
                    if self._compiled is not None:
                        self._golden.clear()
                        self._cones.clear()
                        self._effects.clear()
                        self._defeat_maps.clear()
                        self._vector_program = None
                        self._numpy_program = None
                    self._compiled = compiled
            return compiled
        if self._compiled is None:
            implementation = self._implementation()
            if implementation is None:
                raise RuntimeError("cached implementation was garbage "
                                   "collected")
            stats.compiled_misses += 1
            self._compiled = CompiledDesign(implementation.design)
        else:
            stats.compiled_hits += 1
        return self._compiled

    def vector_program(self, compiled: CompiledDesign,
                       stats: CacheStats) -> VectorProgram:
        """The memoized bit-parallel lane program of this implementation."""
        if self._vector_program is None or \
                self._vector_program.design is not compiled:
            stats.vector_program_misses += 1
            self._vector_program = compile_vector_program(compiled)
        else:
            stats.vector_program_hits += 1
        return self._vector_program

    def numpy_program(self, compiled: CompiledDesign, stats: CacheStats):
        """The memoized numpy-compiled lane program (plans and all).

        Wraps :meth:`vector_program`, so the two memos share one compiled
        entry list; the wrapper additionally accumulates shard plans and
        broadcast artefacts across campaigns (see
        :class:`repro.sim.npkernel.NumpyProgram`).
        """
        from ..sim.npkernel import compile_numpy_program

        if self._numpy_program is None or \
                self._numpy_program.design is not compiled:
            stats.numpy_program_misses += 1
            self._numpy_program = compile_numpy_program(
                self.vector_program(compiled, stats))
        else:
            stats.numpy_program_hits += 1
        return self._numpy_program

    def fault_list(self, mode: str, stats: CacheStats) -> "FaultList":
        if mode not in self._fault_lists:
            from .fault_list import FaultListManager

            implementation = self._implementation()
            if implementation is None:
                raise RuntimeError("cached implementation was garbage "
                                   "collected")
            # As with golden traces below, an in-memory miss (counted
            # either way) may be served by the persistent tier: the list
            # is pure data fully determined by (fingerprint, mode), and
            # enumerating it walks every used routing node's candidate
            # PIPs — the largest fault-count-independent cost of a warm
            # campaign.
            stats.fault_list_misses += 1
            from ..service.tier import active_tier

            tier = active_tier()
            fault_list = tier.load_fault_list(self.fingerprint, mode) \
                if tier is not None else None
            if fault_list is None:
                fault_list = FaultListManager(implementation).build(mode)
                if tier is not None:
                    tier.store_fault_list(self.fingerprint, mode,
                                          fault_list)
            self._fault_lists[mode] = fault_list
        else:
            stats.fault_list_hits += 1
        return self._fault_lists[mode]

    def golden(self, compiled: CompiledDesign,
               stimulus: Sequence[Dict[str, int]], stats: CacheStats
               ) -> Tuple[SimulationTrace, object]:
        key = stimulus_key(stimulus)
        with self._lock:
            cached = self._golden.get(key)
            if cached is not None:
                stats.golden_hits += 1
                self._golden.move_to_end(key)
                return cached
        # An in-memory miss (counted as such either way) may still be
        # served by the persistent tier, when one is active: traces
        # and gate programs are pure data keyed by the implementation
        # fingerprint, so an entry written by any earlier process is
        # exactly what this simulation would produce.  The compute runs
        # outside the lock — two workers racing the same stimulus
        # duplicate work, never corrupt the LRU.
        stats.golden_misses += 1
        from ..service.tier import active_tier

        tier = active_tier()
        pair = tier.load_golden(self.fingerprint, key) \
            if tier is not None else None
        if pair is None:
            simulator = Simulator(compiled)
            pair = (simulator.run(list(stimulus), record_nets=True),
                    simulator.program)
            if tier is not None:
                tier.store_golden(self.fingerprint, key, *pair)
        with self._lock:
            self._golden[key] = pair
            self._golden.move_to_end(key)
            while len(self._golden) > MAX_GOLDEN_PER_ENTRY:
                self._golden.popitem(last=False)
        return pair

    def effect_of_bit(self, bit: int, modeler,
                      stats: CacheStats) -> "FaultEffect":
        # The modeler comes from the calling campaign context (it holds a
        # strong reference to the implementation; keeping one here would
        # defeat this entry's weakref design).
        effect = self._effects.get(bit)
        if effect is None:
            stats.effect_misses += 1
            effect = modeler.effect_of_bit(bit)
            self._effects[bit] = effect
        else:
            stats.effect_hits += 1
        return effect

    def defeat_map(self, mode: str, build, stats: CacheStats):
        """The memoized static defeat map (see :mod:`repro.analysis.layout`).

        *build* is a zero-argument factory, called once per fault-list
        mode; like the modeler in :meth:`effect_of_bit` it comes from the
        caller so this entry never holds the implementation strongly.
        """
        defeat_map = self._defeat_maps.get(mode)
        if defeat_map is None:
            stats.defeat_map_misses += 1
            defeat_map = build()
            self._defeat_maps[mode] = defeat_map
        else:
            stats.defeat_map_hits += 1
        return defeat_map

    def cone(self, seed_nets: Sequence[int], compiled: CompiledDesign,
             stats: CacheStats) -> FaultCone:
        key = tuple(seed_nets)
        cone = self._cones.get(key)
        if cone is None:
            stats.cone_misses += 1
            cone = compiled.fault_cone(seed_nets)
            self._cones[key] = cone
        else:
            stats.cone_hits += 1
        return cone


class CampaignCache:
    """LRU cache of :class:`CampaignCacheEntry` keyed by fingerprint."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, CampaignCacheEntry]" = OrderedDict()
        #: the process-wide instance is shared between the service's
        #: worker threads; every structural _entries mutation holds this
        self._lock = threading.Lock()

    @staticmethod
    def fingerprint_of(implementation: Implementation) -> str:
        # Recomputed on every lookup (hashing the bitstream is a few
        # hundred microseconds, campaigns are hundreds of milliseconds):
        # a caller that mutates the bitstream between campaigns must get a
        # fresh cache entry, never stale memoized effects.
        return implementation_fingerprint(implementation)

    def entry_for(self, implementation: Implementation) -> CampaignCacheEntry:
        fingerprint = self.fingerprint_of(implementation)
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None or entry._implementation() is None:
                entry = CampaignCacheEntry(fingerprint, implementation)
                self._entries[fingerprint] = entry
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def resize(self, max_entries: int) -> None:
        """Change the bound, evicting immediately if it shrank."""
        with self._lock:
            self.max_entries = max_entries
            while len(self._entries) > max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide cache shared by every campaign run with ``use_cache=True``.
_GLOBAL_CACHE = CampaignCache()


def get_cache() -> CampaignCache:
    """The process-wide campaign cache."""
    return _GLOBAL_CACHE


def clear_cache() -> None:
    """Drop every cached artefact and reset the hit/miss statistics."""
    _GLOBAL_CACHE.clear()


def cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the process-wide cache."""
    return _GLOBAL_CACHE.stats.as_dict()


def configure_cache(max_entries: int) -> None:
    """Resize the process-wide cache (evicts immediately if shrinking)."""
    _GLOBAL_CACHE.resize(max_entries)
