"""Resource, robustness and trade-off reporting (paper Tables 2-4)."""

from .layout import (CLASSIFICATIONS, CORRECTABLE, DEFEAT, SILENT,
                     BitPrediction, DefeatMap, LayoutAnalyzer,
                     defeat_map_for, layout_robustness,
                     prediction_vs_campaign)
from .resources import (ResourceRow, area_overhead, format_resource_table,
                        performance_degradation, resource_row, resource_table)
from .robustness import (TradeoffPoint, best_partition, campaign_tradeoff,
                         domain_crossing_summary, improvement_factor,
                         routing_effect_share, tradeoff_curve)

__all__ = [
    "ResourceRow", "area_overhead", "format_resource_table",
    "performance_degradation", "resource_row", "resource_table",
    "TradeoffPoint", "best_partition", "campaign_tradeoff",
    "domain_crossing_summary", "improvement_factor", "routing_effect_share",
    "tradeoff_curve",
    # layout-aware defeat analysis
    "CLASSIFICATIONS", "CORRECTABLE", "DEFEAT", "SILENT", "BitPrediction",
    "DefeatMap", "LayoutAnalyzer", "defeat_map_for", "layout_robustness",
    "prediction_vs_campaign",
]
