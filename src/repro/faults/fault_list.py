"""Fault List Manager.

The paper's fault-injection system first identifies "the configuration
memory bits that are actually programmed to implement the DUT and generates
the bit-flips only for them", using a database of the programmed resources
obtained by decoding the bitstream.  This module plays the same role: it
enumerates the configuration bits *related to the implemented design* and
draws a reproducible random sample from them.

Three selection modes are provided:

* ``design`` (default) — every bit of every resource serving the design:
  the 16 truth-table bits of each used LUT, the configuration bits of each
  used flip-flop/slice, and every candidate PIP bit of every routing node the
  design occupies (so both the programmed PIPs and the unprogrammed
  candidates of used multiplexers are injectable, which is what makes
  Bridge/Conflict/Antenna effects reachable).
* ``extended`` — ``design`` plus the candidate PIPs of the *unused* input
  pins of used slices (stray-antenna territory).
* ``programmed`` — only bits currently set to one in the bitstream (pure
  Open/LUT upsets; matches the narrowest reading of the paper's selection).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Set, Tuple

from ..fpga.config import LUT_BITS, lut_bit, slice_cfg
from ..fpga.device import SLICE_INPUT_PINS
from ..fpga.routing import Node, Pip, ipin
from ..pnr.flow import Implementation
from .seeds import substream

FAULT_LIST_MODES = ("design", "extended", "programmed")


@dataclasses.dataclass
class FaultList:
    """An ordered list of injectable configuration bits."""

    mode: str
    bits: List[int]
    #: composition of the list by resource kind
    composition: Dict[str, int]

    def __len__(self) -> int:
        return len(self.bits)

    def sample(self, count: int, seed: int = 2005) -> List[int]:
        """Reproducible random sample (the paper samples roughly 10% of
        the relevant bits).

        Up to the population size the draw is without replacement and
        stays bit-identical to the seed campaigns.  Beyond it — the
        ``huge`` Monte-Carlo scale injects orders of magnitude more
        upsets than there are programmable bits — the whole population
        is included once and the remainder is drawn with replacement.
        The tail generator is seeded on the *labeled substream*
        ``derive_seed(seed, "oversample")`` (see
        :mod:`repro.faults.seeds`), never on the raw seed: a sharded
        worker that re-derives the base permutation from the same seed
        therefore can never track the tail stream, and every injection
        count remains reproducible from ``(seed, count)`` alone.
        """
        if count == len(self.bits):
            return list(self.bits)
        if count > len(self.bits):
            tail = substream(seed, "oversample")
            return list(self.bits) + tail.choices(
                self.bits, k=count - len(self.bits))
        return random.Random(seed).sample(self.bits, count)


class FaultListManager:
    """Builds fault lists for an implemented design."""

    def __init__(self, implementation: Implementation) -> None:
        self.implementation = implementation
        self.layout = implementation.layout
        self.device = implementation.device

    # --------------------------------------------------------------
    def _tile_pips(self, tile: Tuple[int, int]) -> List[Pip]:
        # Reuse the layout's per-tile cache: the layout instance is shared
        # across all designs on one device profile, so tile enumerations
        # done for bit assignment are not repeated per fault list.
        return self.layout._tile_pips(*tile)

    def _tile_fanin(self, tile: Tuple[int, int]
                    ) -> Dict[Node, List[Tuple[Pip, int]]]:
        # Destination node -> [(pip, bit address)], cached on the shared
        # layout so repeated fault-list builds skip the enumeration.
        return self.layout.pip_bits_by_destination(*tile)

    def _pips_into_node(self, node: Node) -> List[Pip]:
        from ..fpga.routing import node_tile

        tile = node_tile(self.device, node)
        return [pip for pip, _bit in self._tile_fanin(tile).get(node, [])]

    def _bits_into_node(self, node: Node) -> List[int]:
        from ..fpga.routing import node_tile

        tile = node_tile(self.device, node)
        return [bit for _pip, bit in self._tile_fanin(tile).get(node, [])]

    # --------------------------------------------------------------
    def build(self, mode: str = "design") -> FaultList:
        if mode not in FAULT_LIST_MODES:
            raise ValueError(f"unknown fault list mode {mode!r}; choose from "
                             f"{FAULT_LIST_MODES}")
        if mode == "programmed":
            bits = self.implementation.bitstream.programmed_bits()
            return FaultList(mode, bits, {"programmed": len(bits)})

        resources = self.implementation.resources
        bits: List[int] = []
        composition: Dict[str, int] = {"lut": 0, "ff": 0, "routing": 0,
                                       "routing_unused_inputs": 0}

        for site in resources.lut_sites:
            for table_bit in range(LUT_BITS):
                bits.append(self.layout.bit_of(
                    lut_bit(site.x, site.y, site.slot, table_bit)))
                composition["lut"] += 1

        seen_slices: Set[Tuple[int, int]] = set()
        for site in resources.ff_sites:
            suffix = "X" if site.slot == "FFX" else "Y"
            for name in (f"FF{suffix}_INIT", f"FF{suffix}_DMUX",
                         f"FF{suffix}_CEMUX", f"FF{suffix}_SRMODE"):
                bits.append(self.layout.bit_of(slice_cfg(site.x, site.y,
                                                         name)))
                composition["ff"] += 1
        for (x, y) in resources.used_slices:
            if (x, y) in seen_slices:
                continue
            seen_slices.add((x, y))
            bits.append(self.layout.bit_of(slice_cfg(x, y, "CLKINV")))
            composition["ff"] += 1

        # Every PIP bit belongs to exactly one destination node and the
        # routing bit range of a tile is disjoint from its logic bits, so
        # deduplication per *node* suffices (used_nodes is a dict — its
        # keys are already unique).
        for node in resources.used_nodes:
            if node[0] in ("wire", "ipin", "pad_i"):
                node_bits = self._bits_into_node(node)
                bits.extend(node_bits)
                composition["routing"] += len(node_bits)

        if mode == "extended":
            used_input_nodes = {node for node in resources.used_nodes
                                if node[0] == "ipin"}
            seen_nodes: Set[Node] = set()
            for (x, y) in resources.used_slices:
                for pin in SLICE_INPUT_PINS:
                    node = ipin(x, y, pin)
                    if node in used_input_nodes or node in seen_nodes:
                        continue
                    seen_nodes.add(node)
                    node_bits = self._bits_into_node(node)
                    bits.extend(node_bits)
                    composition["routing_unused_inputs"] += len(node_bits)

        return FaultList(mode, bits, composition)
