"""Benchmark reproducing Table 4: classification of error-causing upsets.

Paper claims checked:

* routing-related effects (Open / Bridge / Conflict / Antenna / Others)
  dominate the error-causing upsets in every TMR version;
* LUT upsets essentially never defeat the TMR (in the paper: never; in our
  model the single-LUT output voters are the only possible exception, see
  EXPERIMENTS.md);
* the total number of error-causing upsets follows the Table 3 ordering
  (TMR_p3_nv worst, the voted partitions best).
"""

from repro.analysis import routing_effect_share
from repro.experiments import DESIGN_ORDER, PAPER_TABLE4, run_table4
from repro.faults import categories, table4_report


def test_table4_effect_classification(benchmark, campaigns):
    table = benchmark.pedantic(lambda: run_table4(campaigns), rounds=1,
                               iterations=1)
    benchmark.extra_info["table4_measured"] = table
    benchmark.extra_info["table4_paper"] = PAPER_TABLE4
    benchmark.extra_info["report"] = table4_report(campaigns,
                                                   order=DESIGN_ORDER)

    # Routing effects dominate the error-causing upsets of the TMR versions
    # whenever there are any errors at all.
    for name in ("TMR_p3_nv", "standard"):
        share = routing_effect_share(campaigns[name])
        assert share > 0.5, (name, share)

    # LUT upsets do not defeat TMR (allow at most a stray output-voter hit).
    for name in ("TMR_p1", "TMR_p2", "TMR_p3", "TMR_p3_nv"):
        lut_wrong = table[name].get(categories.LUT, 0)
        total_wrong = max(1, sum(table[name].values()))
        assert lut_wrong <= max(1, 0.1 * total_wrong), (name, table[name])

    # The unprotected filter shows every class of routing effect.
    standard = table["standard"]
    assert standard[categories.OPEN] > 0
    assert standard[categories.BRIDGE] + standard[categories.CONFLICT] > 0

    # Total error-causing upsets follow the Table 3 ordering.
    totals = {name: sum(table[name].values()) for name in DESIGN_ORDER}
    assert totals["standard"] > totals["TMR_p3_nv"] >= totals["TMR_p2"]
