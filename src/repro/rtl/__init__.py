"""Structural RTL generators: arithmetic, registers and the FIR case study."""

from .arith import (constant_multiplier, min_output_width, negator,
                    ripple_carry_adder, ripple_carry_subtractor)
from .counter import accumulator, counter_reference, up_counter
from .fir import (PAPER_COEFFICIENTS, PAPER_DATA_WIDTH, PAPER_OUTPUT_WIDTH,
                  FirComponents, FirSpec, build_fir,
                  expected_component_counts, fir_reference)
from .register import register_bank, shift_register

__all__ = [
    "constant_multiplier", "min_output_width", "negator",
    "ripple_carry_adder", "ripple_carry_subtractor", "accumulator",
    "counter_reference", "up_counter", "PAPER_COEFFICIENTS",
    "PAPER_DATA_WIDTH", "PAPER_OUTPUT_WIDTH", "FirComponents", "FirSpec",
    "build_fir", "expected_component_counts", "fir_reference",
    "register_bank", "shift_register",
]
