"""Fault models: translate one flipped configuration bit into its behavioural
effect on the implemented design.

The :class:`FaultModeler` owns all the cross-references between the
configuration layout, the used-resource database, the routed netlist and the
compiled simulation model.  Given a bit address it returns a
:class:`FaultEffect` carrying

* the Table 4 effect category (LUT / MUX / Initialization / Open / Bridge /
  Input-Antenna / Conflict / Others), and
* a :class:`~repro.sim.overlay.FaultOverlay` describing exactly how the
  simulated design behaves with that bit flipped (possibly empty when the
  upset provably cannot change any signal).

Operational definitions of the routing categories (all PIP bits are
independent pass-transistor-style bits in our fabric model):

* used PIP turned off                                  -> **Open**: every sink
  reached through the PIP's destination node floats (reads X).
* new PIP onto a *used* input-mux / pad node from a driven signal
                                                        -> **Bridge**: that sink
  reads the short of its own signal and the intruding one (unknown whenever
  the two disagree).
* new PIP shorting two *used, driven* wires             -> **Conflict**: the
  downstream sinks of both nets read the shorted (indeterminate-on-disagree)
  value — the mechanism by which one upset corrupts two TMR domains at once.
* new PIP from a driven signal onto an *unused* input node
                                                        -> **Input-Antenna**:
  harmless unless the node is an unused physical input of a used LUT, in
  which case the LUT output is forced low whenever the stray signal is high
  (the physical truth table holds zeros in the entries the stray input
  addresses).
* anything else                                         -> **Others** /
  **Bridge** with no behavioural effect.
"""

from __future__ import annotations

import dataclasses

from ..fpga.bitgen import UsedResources
from ..fpga.config import KIND_LUT_BIT, KIND_SLICE_CFG, ConfigLayout, Resource
from ..fpga.device import FF_PAIRED_LUT, Device
from ..fpga.routing import Pip
from ..pnr.flow import Implementation
from ..pnr.route import SinkSpec
from ..sim.compile import CompiledDesign
from ..sim.overlay import (BLEND_AND_NOT, BLEND_SHORT, FaultOverlay,
                           SourceOverride)
from . import categories

#: Slice input pins that are physical LUT inputs, mapped to (slot, position).
_LUT_PIN_TO_SLOT = {
    "F1": ("F", 0), "F2": ("F", 1), "F3": ("F", 2), "F4": ("F", 3),
    "G1": ("G", 0), "G2": ("G", 1), "G3": ("G", 2), "G4": ("G", 3),
}


@dataclasses.dataclass
class FaultEffect:
    """The modelled consequence of flipping one configuration bit."""

    bit: int
    resource: Resource
    category: str
    overlay: FaultOverlay
    detail: str = ""

    @property
    def has_effect(self) -> bool:
        return not self.overlay.is_empty()


class FaultModeler:
    """Maps configuration bits of an implementation onto fault overlays."""

    def __init__(self, implementation: Implementation,
                 compiled: CompiledDesign) -> None:
        self.implementation = implementation
        self.compiled = compiled
        self.device: Device = implementation.device
        self.layout: ConfigLayout = implementation.layout
        self.resources: UsedResources = implementation.resources
        self.routing = implementation.routing
        self._net_id = compiled.net_index
        self._gate_index = compiled.gate_index_by_name
        self._ff_index = compiled.ff_index_by_name

    # ------------------------------------------------------------------
    def effect_of_bit(self, bit: int) -> FaultEffect:
        resource = self.layout.resource_of(bit)
        kind = resource[0]
        if kind == KIND_LUT_BIT:
            return self._lut_effect(bit, resource)
        if kind == KIND_SLICE_CFG:
            return self._slice_cfg_effect(bit, resource)
        return self._pip_effect(bit, resource)

    # ------------------------------------------------------------------
    # CLB logic bits
    # ------------------------------------------------------------------
    def _lut_effect(self, bit: int, resource: Resource) -> FaultEffect:
        _, x, y, slot, table_bit = resource
        site = self.resources.lut_site_at(x, y, slot)
        overlay = FaultOverlay(description=f"LUT bit {table_bit} at "
                               f"({x},{y}) {slot}")
        if site is None:
            return FaultEffect(bit, resource, categories.LUT, overlay,
                               "unused LUT site")
        if table_bit >= (1 << site.logical_inputs):
            return FaultEffect(bit, resource, categories.LUT, overlay,
                               "upset in unused truth-table region")
        gate_index = self._gate_index.get(site.cell)
        if gate_index is None:
            return FaultEffect(bit, resource, categories.LUT, overlay,
                               "cell not in compiled design")
        gate = self.compiled.gates[gate_index]
        overlay.lut_init_overrides[gate_index] = gate.init ^ (1 << table_bit)
        overlay.seed_nets = [gate.output_net]
        return FaultEffect(bit, resource, categories.LUT, overlay,
                           f"minterm {table_bit} of {site.cell} flipped")

    def _slice_cfg_effect(self, bit: int, resource: Resource) -> FaultEffect:
        _, x, y, name = resource
        overlay = FaultOverlay(description=f"slice cfg {name} at ({x},{y})")
        if name == "CLKINV":
            category = categories.MUX
            return FaultEffect(bit, resource, category, overlay,
                               "clock polarity bit (no functional model)")

        suffix = "FFX" if name.startswith("FFX") else "FFY"
        site = self.resources.ff_site_at(x, y, suffix)
        if name.endswith("_INIT") or name.endswith("_SRMODE"):
            category = categories.INITIALIZATION
        else:
            category = categories.MUX
        if site is None:
            return FaultEffect(bit, resource, category, overlay,
                               "unused flip-flop site")
        ff_index = self._ff_index.get(site.cell)
        if ff_index is None:
            return FaultEffect(bit, resource, category, overlay,
                               "cell not in compiled design")
        flip_flop = self.compiled.flip_flops[ff_index]

        if name.endswith("_INIT"):
            overlay.ff_init_overrides[ff_index] = 1 - site.init_value
            overlay.seed_nets = [flip_flop.q_net]
            detail = f"power-up value of {site.cell} flipped"
        elif name.endswith("_DMUX"):
            overlay.seed_nets = [flip_flop.q_net]
            if site.data_from_lut:
                # Data now comes from the unrouted bypass pin: floating.
                overlay.ff_pin_overrides[(ff_index, "D")] = \
                    SourceOverride.floating()
                detail = f"{site.cell} data input detached from its LUT"
            else:
                paired = self.resources.lut_site_at(x, y,
                                                    FF_PAIRED_LUT[suffix])
                if paired is None:
                    overlay.ff_pin_overrides[(ff_index, "D")] = \
                        SourceOverride.floating()
                    detail = f"{site.cell} data input switched to empty LUT"
                else:
                    paired_gate = self.compiled.gates[
                        self._gate_index[paired.cell]]
                    overlay.ff_pin_overrides[(ff_index, "D")] = \
                        SourceOverride.net(paired_gate.output_net)
                    detail = (f"{site.cell} data input switched to "
                              f"{paired.cell}")
        elif name.endswith("_CEMUX"):
            overlay.seed_nets = [flip_flop.q_net]
            if site.uses_clock_enable:
                overlay.ff_pin_overrides[(ff_index, "CE")] = \
                    SourceOverride.constant(1)
                detail = f"{site.cell} clock enable stuck active"
            else:
                overlay.ff_pin_overrides[(ff_index, "CE")] = \
                    SourceOverride.floating()
                detail = f"{site.cell} clock enable floating"
        else:  # _SRMODE
            detail = "set/reset mode bit (no functional model)"
        return FaultEffect(bit, resource, category, overlay, detail)

    # ------------------------------------------------------------------
    # Routing bits
    # ------------------------------------------------------------------
    def _pip_effect(self, bit: int, resource: Resource) -> FaultEffect:
        pip: Pip = (resource[1], resource[2])
        source, destination = pip
        if pip in self.resources.used_pips:
            return self._open_effect(bit, resource, pip)
        return self._new_pip_effect(bit, resource, pip)

    def _open_effect(self, bit: int, resource: Resource,
                     pip: Pip) -> FaultEffect:
        net_name = self.resources.used_pips[pip]
        overlay = FaultOverlay(description=f"open on net {net_name}")
        tree = self.routing.routes.get(net_name)
        if tree is None:
            return FaultEffect(bit, resource, categories.OPEN, overlay,
                               "route tree missing")
        affected = tree.sinks_through(pip[1])
        for spec in affected:
            self._override_sink(overlay, spec, SourceOverride.floating())
        net_id = self._net_id.get(net_name, -1)
        overlay.seed_nets = [net_id] if net_id >= 0 else []
        return FaultEffect(bit, resource, categories.OPEN, overlay,
                           f"{len(affected)} sink(s) of {net_name} float")

    def _new_pip_effect(self, bit: int, resource: Resource,
                        pip: Pip) -> FaultEffect:
        source, destination = pip
        source_net = self.routing.node_owner.get(source)
        dest_net = self.routing.node_owner.get(destination)
        dest_kind = destination[0]

        if dest_net is not None and source_net is not None and \
                source_net != dest_net:
            if dest_kind == "wire":
                return self._conflict_effect(bit, resource, pip, source_net,
                                             dest_net)
            return self._bridge_effect(bit, resource, pip, source_net,
                                       dest_net)
        if dest_net is not None and source_net is None:
            overlay = FaultOverlay(
                description=f"bridge of {dest_net} to an undriven wire")
            return FaultEffect(bit, resource, categories.BRIDGE, overlay,
                               "used signal bridged to floating wire "
                               "(no logical effect)")
        if source_net is not None and dest_net is None:
            return self._antenna_effect(bit, resource, pip, source_net)
        overlay = FaultOverlay(description="PIP between unused resources")
        return FaultEffect(bit, resource, categories.OTHERS, overlay,
                           "both ends unused")

    def _conflict_effect(self, bit: int, resource: Resource, pip: Pip,
                         source_net: str, dest_net: str) -> FaultEffect:
        overlay = FaultOverlay(
            description=f"conflict between {source_net} and {dest_net}")
        source_id = self._net_id.get(source_net, -1)
        dest_id = self._net_id.get(dest_net, -1)
        blend = SourceOverride.blend_of(dest_id, source_id, BLEND_SHORT)
        affected = 0
        dest_tree = self.routing.routes.get(dest_net)
        if dest_tree is not None:
            for spec in dest_tree.sinks_through(pip[1]):
                self._override_sink(overlay, spec, blend)
                affected += 1
        source_tree = self.routing.routes.get(source_net)
        if source_tree is not None and pip[0] in source_tree.nodes():
            reverse_blend = SourceOverride.blend_of(source_id, dest_id,
                                                    BLEND_SHORT)
            for spec in source_tree.sinks_through(pip[0]):
                self._override_sink(overlay, spec, reverse_blend)
                affected += 1
        overlay.seed_nets = [n for n in (source_id, dest_id) if n >= 0]
        overlay.comb_passes = 3
        return FaultEffect(bit, resource, categories.CONFLICT, overlay,
                           f"{affected} sink(s) see the short of "
                           f"{source_net} and {dest_net}")

    def _bridge_effect(self, bit: int, resource: Resource, pip: Pip,
                       source_net: str, dest_net: str) -> FaultEffect:
        overlay = FaultOverlay(
            description=f"bridge of {source_net} onto {dest_net} at "
            f"{pip[1]}")
        source_id = self._net_id.get(source_net, -1)
        dest_id = self._net_id.get(dest_net, -1)
        blend = SourceOverride.blend_of(dest_id, source_id, BLEND_SHORT)
        affected = 0
        dest_tree = self.routing.routes.get(dest_net)
        if dest_tree is not None:
            for spec in dest_tree.sinks_through(pip[1]):
                self._override_sink(overlay, spec, blend)
                affected += 1
        overlay.seed_nets = [n for n in (source_id, dest_id) if n >= 0]
        overlay.comb_passes = 3
        return FaultEffect(bit, resource, categories.BRIDGE, overlay,
                           f"{affected} sink(s) of {dest_net} shorted with "
                           f"{source_net}")

    def _antenna_effect(self, bit: int, resource: Resource, pip: Pip,
                        source_net: str) -> FaultEffect:
        destination = pip[1]
        overlay = FaultOverlay(
            description=f"antenna from {source_net} onto {destination}")
        if destination[0] != "ipin":
            return FaultEffect(bit, resource, categories.INPUT_ANTENNA,
                               overlay, "stray drive of an unused wire")
        _, x, y, pin = destination
        slot_info = _LUT_PIN_TO_SLOT.get(pin)
        if slot_info is None:
            return FaultEffect(bit, resource, categories.INPUT_ANTENNA,
                               overlay, "stray drive of an unused control pin")
        slot, position = slot_info
        site = self.resources.lut_site_at(x, y, slot)
        if site is None or position < site.logical_inputs:
            return FaultEffect(bit, resource, categories.INPUT_ANTENNA,
                               overlay, "stray drive of an unused LUT input")
        # A used LUT whose physical input `position` is unused: driving it
        # high addresses the all-zero upper half of the physical table.
        gate_index = self._gate_index.get(site.cell)
        if gate_index is None:
            return FaultEffect(bit, resource, categories.INPUT_ANTENNA,
                               overlay, "cell not in compiled design")
        gate = self.compiled.gates[gate_index]
        source_id = self._net_id.get(source_net, -1)
        overlay.net_overrides[gate.output_net] = SourceOverride.blend_of(
            gate.output_net, source_id, BLEND_AND_NOT)
        overlay.seed_nets = [gate.output_net]
        overlay.comb_passes = 3
        return FaultEffect(bit, resource, categories.INPUT_ANTENNA, overlay,
                           f"unused input of {site.cell} driven by "
                           f"{source_net}")

    # ------------------------------------------------------------------
    def _override_sink(self, overlay: FaultOverlay, spec: SinkSpec,
                       override: SourceOverride) -> None:
        """Attach an override to the right simulator entity for one sink."""
        if spec.cell is None:
            overlay.output_pin_overrides[(spec.port, spec.bit)] = override
            return
        gate_index = self._gate_index.get(spec.cell)
        if gate_index is not None:
            position = int(spec.port[1:]) if spec.port.startswith("I") else 0
            overlay.gate_pin_overrides[(gate_index, position)] = override
            return
        ff_index = self._ff_index.get(spec.cell)
        if ff_index is not None:
            port = spec.port
            if port in ("R", "CLR"):
                port = "R"
            overlay.ff_pin_overrides[(ff_index, port)] = override
