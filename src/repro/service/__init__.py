"""Campaign-as-a-service: async job runner over a shared warm-cache tier.

The service layer wraps the scenario pipeline (:mod:`repro.scenarios` /
:mod:`repro.pipeline`) in a long-running orchestrator:

* :mod:`repro.service.tier` — one persistent cache tier unifying the
  flow-artifact store with new on-disk stores for golden traces and
  static defeat maps, size-bounded LRU eviction, atomic writes;
* :mod:`repro.service.jobs` — the job queue: submissions, states,
  in-flight request coalescing by content fingerprint;
* :mod:`repro.service.orchestrator` — the asyncio orchestrator executing
  jobs with bounded concurrency, sharding each campaign's fault tasks
  across worker processes through the engine's sharded backend;
* :mod:`repro.service.httpd` — a dependency-free HTTP surface
  (``repro serve`` / ``repro submit``) over the orchestrator;
* :mod:`repro.service.journal` — the durable job journal (write-ahead
  log) that lets a restarted service recover unsettled jobs;
* :mod:`repro.service.chaos` — deterministic fault-point injection for
  exercising the recovery paths.

Everything here is stdlib-only; campaigns stay bit-identical to a direct
:func:`repro.scenarios.run_scenario` call (enforced by the test suite).
"""

from .chaos import ChaosConfig, ChaosCrash, active_chaos  # noqa: F401
from .jobs import (JobQueue, JobSpec, JobState,  # noqa: F401
                   job_fingerprint)
from .journal import JobJournal  # noqa: F401
from .orchestrator import (CampaignService,  # noqa: F401
                           ServiceDraining, ServiceError)
from .tier import (SharedCacheTier, activate_tier,  # noqa: F401
                   active_tier, deactivate_tier, resolve_tier)

__all__ = [
    "CampaignService",
    "ChaosConfig",
    "ChaosCrash",
    "JobJournal",
    "JobQueue",
    "JobSpec",
    "JobState",
    "ServiceDraining",
    "ServiceError",
    "SharedCacheTier",
    "activate_tier",
    "active_chaos",
    "active_tier",
    "deactivate_tier",
    "job_fingerprint",
    "resolve_tier",
]
