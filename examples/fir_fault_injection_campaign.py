"""Reproduce the paper's experiment on a reduced filter: Tables 2, 3 and 4.

Runs the ``table4-fir`` scenario through the pipeline engine: build the
five filter versions, implement each on the device model, run one
bitstream fault-injection campaign per version and print the three tables
next to the paper's reference numbers — followed by the pipeline's own
stage/cache report.

Run with ``python examples/fir_fault_injection_campaign.py [scale]
[backend] [jobs]`` where *scale* is ``smoke`` (default, about a minute),
``fast`` or ``paper``, *backend* selects the campaign execution engine
(``serial``, ``batch``, ``process``, or the bit-parallel ``vector`` — the
default), and *jobs* implements the five filter versions in that many
parallel worker processes; every backend produces identical results.  Set
the ``REPRO_FLOW_CACHE`` environment variable to a directory to persist
the place-and-route artifacts — a second run then skips implementation
entirely.  ``python -m repro run table4-fir`` is the equivalent CLI.
"""

import os
import sys

from repro import run_scenario
from repro.analysis import format_resource_table, resource_table
from repro.experiments import DESIGN_ORDER, PAPER_TABLE3_PERCENT
from repro.faults import table3_report, table4_report
from repro.pipeline import PipelineContext, pipeline_for


def main(scale: str = "smoke", backend: str = "vector",
         jobs: int = 1) -> None:
    flow_cache = os.environ.get("REPRO_FLOW_CACHE")
    print(f"running scenario 'table4-fir' at scale {scale!r} "
          f"(backend {backend!r}, jobs={jobs}, "
          f"flow cache {flow_cache or 'off'}) ...")

    # Drive the stages through an explicit context so the full
    # CampaignResult objects stay available for the paper-style reports.
    ctx = PipelineContext(scenario_id="table4-fir", scale=scale,
                          designs=DESIGN_ORDER, backend=backend,
                          jobs=jobs, flow_cache=flow_cache,
                          analyses=("table3", "table4"))
    report = pipeline_for(("build", "implement", "campaign",
                           "analyze")).run(ctx)

    print(f"  filter: {ctx.suite.spec.taps} taps, "
          f"{ctx.suite.spec.data_width}-bit samples, "
          f"coefficients {ctx.suite.spec.coefficients}")
    for name in DESIGN_ORDER:
        summary = ctx.implementations[name].summary()
        print(f"  {name:10s}: {summary['slices']:4d} slices, "
              f"{summary['routed_nets']:5d} nets, "
              f"{summary['fmax_mhz']:5.1f} MHz")

    print("\n" + format_resource_table(
        resource_table(ctx.implementations, order=DESIGN_ORDER)))

    for name in DESIGN_ORDER:
        campaign = ctx.campaigns[name]
        print(f"  {name:10s}: {campaign.wrong_answer_percent:6.2f}% "
              f"wrong answers "
              f"(paper: {PAPER_TABLE3_PERCENT[name]:6.2f}%)  "
              f"[{campaign.faults_per_second:7.0f} faults/s]")

    print("\n" + table3_report(ctx.campaigns, order=DESIGN_ORDER,
                               paper_reference=PAPER_TABLE3_PERCENT))
    print("\n" + table4_report(ctx.campaigns, order=DESIGN_ORDER))

    derived = report["derived"]["table3"]
    print(f"\nbest TMR partition measured: "
          f"{derived.get('best_tmr_partition')} (paper: TMR_p2)")
    print(f"improvement TMR_p1 -> TMR_p2: "
          f"{derived.get('improvement_p1_to_p2')}x (paper: ~4.1x)")

    # Repeated runs are where the caches pay off: re-run the whole
    # scenario and let the stage records show what was reused.
    rerun = run_scenario("table4-fir", scale=scale, backend=backend,
                         jobs=jobs, flow_cache=flow_cache)
    print("\nwarm re-run stage report:")
    for stage in rerun["stages"]:
        cache = ", ".join(f"{key}={value}"
                          for key, value in stage["cache"].items()
                          if value) or "no cached artefacts touched"
        print(f"  {stage['name']:10s} {stage['seconds']:7.2f}s  {cache}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "smoke",
         sys.argv[2] if len(sys.argv) > 2 else "vector",
         int(sys.argv[3]) if len(sys.argv) > 3 else 1)
