"""Benchmarks reproducing the structural content of Figures 1-4.

The paper's figures are schematics; what can be regenerated is the structure
they describe: the plain TMR scheme (Figure 1), the voted register with
refresh (Figure 2), the partitioned scheme in which a cross-domain upset is
blocked by a voter barrier (Figure 3) and the three partitioned filter
architectures (Figure 4).
"""

from repro.experiments import (ascii_partition_diagram, figure1_summary,
                               figure2_summary, figure3_summary,
                               figure4_summary)


def test_figure1_plain_tmr_scheme(benchmark, design_suite):
    summary = benchmark.pedantic(lambda: figure1_summary(design_suite),
                                 rounds=1, iterations=1)
    benchmark.extra_info["figure1"] = summary
    assert summary["domains"] == 3
    assert summary["inputs_triplicated"]
    assert summary["single_voted_output"]
    assert summary["domains_isolated_outside_voters"]
    assert summary["output_voters"] == design_suite.spec.output_width


def test_figure2_voted_register(benchmark):
    summary = benchmark.pedantic(figure2_summary, rounds=1, iterations=1)
    benchmark.extra_info["figure2"] = summary
    # One flip-flop and one voter per bit per domain, triplicated clocks.
    assert summary["voters_per_bit_per_domain"]
    assert summary["clocks_triplicated"]
    assert summary["domain_outputs_agree"]


def test_figure3_partition_blocks_crossing_upset(benchmark, design_suite):
    summary = benchmark.pedantic(lambda: figure3_summary(design_suite),
                                 rounds=1, iterations=1)
    benchmark.extra_info["figure3"] = summary
    assert summary["regions_increase_with_partitioning"]
    # More voter regions -> smaller probability that two shorted signals of
    # different domains share a region (the analytical form of Figure 3).
    assert summary["TMR_p1"]["same_region_collision_probability"] < \
        summary["TMR_p3"]["same_region_collision_probability"]


def test_figure4_filter_architectures(benchmark, design_suite):
    summary = benchmark.pedantic(lambda: figure4_summary(design_suite),
                                 rounds=1, iterations=1)
    benchmark.extra_info["figure4"] = summary
    benchmark.extra_info["diagrams"] = {
        name: ascii_partition_diagram(design_suite, name)
        for name in design_suite.tmr}

    inventory = summary["component_inventory"]
    assert inventory["multipliers"] == design_suite.spec.taps
    assert inventory["adders"] == design_suite.spec.taps - 1
    assert inventory["registers"] == design_suite.spec.taps - 1

    # Figure 4a/4b/4c: strictly decreasing voter usage from the maximum to
    # the minimum partition, and no barrier voters at all in the minimum one.
    assert summary["TMR_p1"]["voter_luts"] > summary["TMR_p2"]["voter_luts"] \
        > summary["TMR_p3"]["voter_luts"] > summary["TMR_p3_nv"]["voter_luts"]
    assert summary["TMR_p3"]["voters_by_role"]["barrier"] == 0
    assert summary["TMR_p3_nv"]["voters_by_role"]["register"] == 0
    # The medium partition votes exactly the adder outputs (one multiplier +
    # one adder per voted block).
    expected_blocks = inventory["adders"] + inventory["registers"]
    assert summary["TMR_p2"]["voted_blocks"] == expected_blocks
