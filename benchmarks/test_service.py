"""Benchmark: campaign service throughput over the shared warm-cache tier.

Measures the :class:`repro.service.CampaignService` end to end with N
concurrent submitters (default 4), each submitting the Table 3 FIR
campaign restricted to a *different* suite design, so no submitter rides
another's in-process caches within a wave — every warm number below is
earned by the persistent tier, not by lucky intra-wave sharing.

Two waves run against the same on-disk tier:

* the **cold** wave starts from an empty tier and empty in-process
  caches — every job places and routes its design, builds its defeat
  map and simulates its golden trace from scratch (persisting each into
  the tier), and
* the **warm** wave simulates a service restart (in-process caches and
  suite memo cleared, a fresh :class:`CampaignService` on the same tier
  directory) and re-submits the same campaigns under *different seeds* —
  so the campaigns themselves are new work and only the per-design
  artifacts (flow, golden trace, defeat map) come from the tier.

A coalescing segment then proves request dedup end to end: two identical
submissions produce one computed job observed by both submitters, and a
third (forced, fresh) computation of the same spec reproduces the shared
report bit for bit.

The numbers land in ``BENCH_service.json`` (jobs/sec, per-job latency
p50/p99, tier hit rates, cold vs warm aggregate speedup) and the CI
regression gate (``check_regression.py --service-baseline ...``) tracks
them across PRs.

Knobs: ``REPRO_BENCH_SERVICE_MIN_WARM_SPEEDUP`` relaxes the warm-over-
cold floor on noisy shared runners, ``REPRO_BENCH_SERVICE_MAX_P99``
bounds the warm-wave per-job latency, ``REPRO_BENCH_SERVICE_FAULTS``
scales the per-job campaign.
"""

import json
import math
import os
import threading
import time

from repro import pipeline
from repro.faults import clear_cache
from repro.pipeline import stable_report
from repro.fpga.config import clear_layout_cache
from repro.fpga.routing import clear_routing_graph_cache
from repro.service import (CampaignService, SharedCacheTier,
                           deactivate_tier)
from repro.service.jobs import JobSpec
from repro.service.orchestrator import DEFAULT_MAX_PARALLEL

#: The scenario every submitter draws from; its per-design restriction is
#: what keeps the wave's submitters from sharing in-process work.
SCENARIO = "table3-fir"
SCALE = os.environ.get("REPRO_BENCH_SERVICE_SCALE", "smoke")

#: One design per submitter (distinct, so a wave shares nothing but the
#: suite build): the unprotected filter, the paper's three partitions.
SUBMITTER_DESIGNS = ("standard", "TMR_p1", "TMR_p2", "TMR_p3_nv")

#: Injections per job — small enough that the per-design artifacts (flow,
#: golden trace, defeat map), not the campaign loop, dominate a job; that
#: is the regime the tier exists for, and the published hit rates and
#: speedups describe it.
SERVICE_FAULTS = int(os.environ.get("REPRO_BENCH_SERVICE_FAULTS", "100"))

#: Required aggregate speedup of the warm wave over the cold wave (the
#: service acceptance bar; relaxed on noisy shared runners via the knob).
#: Recalibrated from 3.0 when the parallel cold flow landed: the cold
#: wave itself got ~2x faster (batched router, vectorized defeat maps),
#: so the warm-over-cold ratio shrank even though warm latency did not
#: regress.  2.0 still catches a warm path degenerating to cold cost.
MIN_WARM_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_SERVICE_MIN_WARM_SPEEDUP", "2.0"))

#: Ceiling on the warm wave's p99 per-job latency, seconds.  Generous —
#: it exists to catch a warm path that degenerated to cold-path cost,
#: not to benchmark the machine.
MAX_WARM_P99 = float(
    os.environ.get("REPRO_BENCH_SERVICE_MAX_P99", "30.0"))

#: Floor on the warm wave's tier hit rate (hits over tier lookups).  A
#: warm restart should serve every per-design artifact from the tier.
MIN_WARM_HIT_RATE = float(
    os.environ.get("REPRO_BENCH_SERVICE_MIN_HIT_RATE", "0.75"))

#: written into the session's ``bench_out_dir`` (committed baselines are
#: only overwritten under ``--update-baselines``)
BENCH_NAME = "BENCH_service.json"


def _simulate_restart() -> None:
    """Drop every in-process cache, keeping only what is on disk.

    This is what a service restart (or a different worker host mounting
    the same tier) actually looks like: the suite memo, campaign caches,
    routing graphs and config layouts are process state and vanish; the
    tier directory is all that survives.
    """
    clear_cache()
    pipeline._SUITE_MEMO.clear()
    clear_routing_graph_cache()
    clear_layout_cache()
    deactivate_tier()


def _quantile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def _spec_for(design: str, seed: int) -> JobSpec:
    return JobSpec(SCENARIO, scale=SCALE, prefilter="static",
                   num_faults=SERVICE_FAULTS, seed=seed, designs=(design,))


def _run_wave(tier_root, seed_base: int):
    """One wave: N concurrent submitters against a service on *tier_root*.

    Returns (wall seconds, per-job latencies, jobs, tier) with the
    service stopped and the tier deactivated — each wave owns a fresh
    :class:`CampaignService` so wave boundaries behave like restarts.
    """
    tier = SharedCacheTier(tier_root)
    service = CampaignService(tier=tier).start()
    jobs = []
    jobs_lock = threading.Lock()

    def submitter(offset: int, design: str) -> None:
        job = service.submit(_spec_for(design, seed_base + offset))
        with jobs_lock:
            jobs.append(job)

    threads = [threading.Thread(target=submitter, args=(offset, design))
               for offset, design in enumerate(SUBMITTER_DESIGNS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    settled = service.wait(timeout=600)
    wall = time.perf_counter() - start
    service.stop()
    assert settled, "service wave did not settle within its timeout"
    failed = [(job.id, job.error) for job in jobs if job.state != "done"]
    assert not failed, failed
    latencies = [job.finished_at - job.submitted_at for job in jobs]
    return wall, latencies, jobs, tier


def _wave_row(wall, latencies, tier) -> dict:
    tier_stats = tier.stats.as_dict()
    flow_stats = tier.flow_store.stats.as_dict()
    # Shard-checkpoint counters (shard_hits/shard_misses) are excluded:
    # they track crash-resume coverage, not warm-artifact reuse, and a
    # wave of fresh seeds would dilute the published hit rate with one
    # structural miss per campaign.
    hits = flow_stats["hits"] + sum(
        count for key, count in tier_stats.items()
        if key.endswith("_hits") and not key.startswith("shard_"))
    lookups = hits + flow_stats["misses"] + sum(
        count for key, count in tier_stats.items()
        if key.endswith("_misses") and not key.startswith("shard_"))
    return {
        "wall_seconds": round(wall, 4),
        "jobs_per_second": round(len(latencies) / wall, 3),
        "latency_p50_seconds": round(_quantile(latencies, 0.50), 4),
        "latency_p99_seconds": round(_quantile(latencies, 0.99), 4),
        "tier_hit_rate": round(hits / lookups, 4) if lookups else None,
        "tier": tier_stats,
        "flow": flow_stats,
    }


def _recovery_spec(seed: int) -> JobSpec:
    # Backend pinned to sharded: shard checkpoints are what the recovery
    # segment measures, and a spec without a backend would also shard
    # (the service default) — pinning just makes the intent explicit.
    return JobSpec(SCENARIO, scale=SCALE, prefilter="static",
                   num_faults=SERVICE_FAULTS, seed=seed,
                   designs=(SUBMITTER_DESIGNS[0],), backend="sharded")


def _campaign_execution(report) -> dict:
    """The sharded backend's run stats for the segment's one design."""
    for stage in report["stages"]:
        if stage["name"] == "campaign":
            return stage["summary"]["execution"][SUBMITTER_DESIGNS[0]]
    raise AssertionError("no campaign stage in report")


def _run_recovery(tmp_path_factory) -> dict:
    """Crash/resume segment: journal recovery + shard-checkpoint reuse.

    Three runs, all sharded with the shard floor forced down so even the
    smoke-scale campaign splits into multiple checkpointable shards:

    * an **uninterrupted** reference on its own tier (the cold cost and
      the byte-identity yardstick),
    * a **crash** run that dies after two shard checkpoints (a simulated
      SIGKILL: the job never settles, no clean-shutdown marker), then a
      restart on the same tier whose journal recovery resubmits the job
      and whose rerun reloads the checkpointed shards, and
    * a **worker-kill** run where chaos SIGKILLs the worker evaluating
      shard 1 exactly once and supervision retries it.
    """
    from repro.service import chaos

    controlled = ("REPRO_SHARD_MIN_TASKS", "REPRO_SHARD_WORKERS",
                  chaos.CHAOS_ENV_VAR, chaos.CHAOS_STATE_ENV_VAR)
    saved = {key: os.environ.get(key) for key in controlled}
    os.environ["REPRO_SHARD_MIN_TASKS"] = "0"
    os.environ["REPRO_SHARD_WORKERS"] = "2"
    os.environ.pop(chaos.CHAOS_ENV_VAR, None)
    os.environ.pop(chaos.CHAOS_STATE_ENV_VAR, None)
    try:
        spec = _recovery_spec(seed=4000)

        # Uninterrupted reference.
        _simulate_restart()
        with CampaignService(
                tier=tmp_path_factory.mktemp("recovery-ref")) as service:
            start = time.perf_counter()
            reference = service.run(spec, timeout=600)
            cold_wall = time.perf_counter() - start
            assert reference.state == "done", reference.error
        reference_bytes = json.dumps(stable_report(reference.report),
                                     sort_keys=True)
        shards_total = _campaign_execution(reference.report)["shards"]

        # Crash after two shard checkpoints, then restart + resume.
        crash_tier = tmp_path_factory.mktemp("recovery-crash")
        _simulate_restart()
        os.environ[chaos.CHAOS_ENV_VAR] = "crash-after-shards:2"
        os.environ[chaos.CHAOS_STATE_ENV_VAR] = str(
            tmp_path_factory.mktemp("recovery-chaos"))
        crashed = CampaignService(tier=crash_tier).start()
        crashed.submit(spec)
        assert not crashed.wait(timeout=600), \
            "the chaos crash point never fired"
        crashed.stop(timeout=1.0)
        os.environ.pop(chaos.CHAOS_ENV_VAR)

        _simulate_restart()
        start = time.perf_counter()
        with CampaignService(tier=crash_tier) as recovered:
            recovery = dict(recovered.last_recovery)
            assert recovered.wait(timeout=600)
            resumed = recovered.queue.jobs()[0]
            assert resumed.state == "done", resumed.error
            resume_wall = time.perf_counter() - start
        execution = _campaign_execution(resumed.report)
        resume_identical = json.dumps(stable_report(resumed.report),
                                      sort_keys=True) == reference_bytes

        # Worker kill: supervision retries the SIGKILLed shard.
        _simulate_restart()
        os.environ[chaos.CHAOS_ENV_VAR] = "kill-shard:1"
        os.environ[chaos.CHAOS_STATE_ENV_VAR] = str(
            tmp_path_factory.mktemp("recovery-kill-chaos"))
        with CampaignService(
                tier=tmp_path_factory.mktemp("recovery-kill")) as service:
            killed = service.run(spec, timeout=600)
            assert killed.state == "done", killed.error
        os.environ.pop(chaos.CHAOS_ENV_VAR)

        return {
            "shards_total": shards_total,
            "shards_recomputed": execution["checkpoint_stores"],
            "checkpoint_hits": execution["checkpoint_hits"],
            "cold_wall_seconds": round(cold_wall, 4),
            "resume_wall_seconds": round(resume_wall, 4),
            "resume_speedup_vs_cold": round(cold_wall / resume_wall, 2),
            "resume_identical": resume_identical,
            "recovered_jobs": recovery["recovered_jobs"],
            "clean_shutdown_marker": recovery["clean_shutdown"],
            "worker_kill": {
                "retries_taken": _campaign_execution(
                    killed.report)["retries"],
                "report_identical": json.dumps(
                    stable_report(killed.report),
                    sort_keys=True) == reference_bytes,
            },
        }
    finally:
        _simulate_restart()
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def test_service_throughput(benchmark, bench_out_dir, tmp_path_factory):
    tier_root = tmp_path_factory.mktemp("service-tier")

    # Earlier tests in this pytest process may have warmed the in-process
    # caches; the cold wave must start genuinely cold.
    _simulate_restart()
    cold_wall, cold_latencies, _, cold_tier = _run_wave(tier_root, 1000)

    _simulate_restart()
    warm_wall, warm_latencies, _, warm_tier = _run_wave(tier_root, 2000)

    # Coalescing proof: two identical submissions against the warm tier
    # produce ONE computed job that both submitters observe, and a
    # forced fresh computation of the same spec reproduces the shared
    # report bit for bit.
    _simulate_restart()
    service = CampaignService(tier=SharedCacheTier(tier_root)).start()
    try:
        spec = _spec_for(SUBMITTER_DESIGNS[0], seed=3000)
        first = service.submit(spec)
        second = service.submit(spec)
        assert service.wait(timeout=600)
        coalesced = service.queue.stats()["coalesced"]
        jobs_created = len(service.queue.jobs())
        # Reports are compared through stable_report: timings and cache
        # hit/miss counters legitimately vary run to run; everything the
        # paper cares about (verdicts, tables, provenance) must not.
        shared_report = json.dumps(stable_report(first.report),
                                   sort_keys=True)
        # Finished jobs do not absorb new submissions, so resubmitting
        # the *identical* spec now forces a genuinely fresh computation —
        # whose report must reproduce the coalesced one bit for bit.
        recompute = service.run(spec, timeout=600)
        coalescing_row = {
            "submissions": 2,
            "jobs_created": jobs_created,
            "coalesced": coalesced,
            "same_job": first is second,
            "recompute_was_fresh": recompute is not first,
            "reports_identical": json.dumps(
                stable_report(second.report),
                sort_keys=True) == shared_report,
            "recompute_identical": json.dumps(
                stable_report(recompute.report),
                sort_keys=True) == shared_report,
        }
    finally:
        service.stop()
        deactivate_tier()

    recovery_row = _run_recovery(tmp_path_factory)

    payload = {
        "scenario": SCENARIO,
        "scale": SCALE,
        "num_faults": SERVICE_FAULTS,
        "submitters": len(SUBMITTER_DESIGNS),
        "designs": list(SUBMITTER_DESIGNS),
        "max_parallel": DEFAULT_MAX_PARALLEL,
        "backend": "sharded",
        "cold": _wave_row(cold_wall, cold_latencies, cold_tier),
        "warm": _wave_row(warm_wall, warm_latencies, warm_tier),
        "warm_vs_cold_speedup": round(cold_wall / warm_wall, 2),
        "coalescing": coalescing_row,
        "recovery": recovery_row,
    }

    (bench_out_dir / BENCH_NAME).write_text(
        json.dumps(payload, indent=2) + "\n")
    benchmark.extra_info["service"] = payload
    benchmark.pedantic(lambda: payload, rounds=1, iterations=1)

    # Acceptance bars: a warm restart of the service runs the same wave
    # at >= 3x aggregate throughput purely off the tier (relaxed on
    # noisy shared runners via the env knob), the warm wave's per-design
    # artifacts actually came from the tier, its tail latency stayed
    # bounded, and identical submissions provably coalesced.
    assert payload["warm_vs_cold_speedup"] >= MIN_WARM_SPEEDUP, payload
    warm = payload["warm"]
    assert warm["tier_hit_rate"] is not None \
        and warm["tier_hit_rate"] >= MIN_WARM_HIT_RATE, warm
    assert warm["latency_p99_seconds"] <= MAX_WARM_P99, warm
    assert coalescing_row["coalesced"] == 1, coalescing_row
    assert coalescing_row["same_job"], coalescing_row
    assert coalescing_row["jobs_created"] == 1, coalescing_row
    assert coalescing_row["recompute_was_fresh"], coalescing_row
    assert coalescing_row["reports_identical"], coalescing_row
    assert coalescing_row["recompute_identical"], coalescing_row

    # Recovery bars: the resumed job reloaded at least the checkpoints
    # taken before the crash and recomputed only the rest; its report —
    # and the worker-kill run's — reproduce the uninterrupted reference
    # bit for bit.  (Wall-clock resume speedup is recorded but gated in
    # check_regression.py, where CI can relax it for noisy runners.)
    assert recovery_row["recovered_jobs"] == 1, recovery_row
    assert not recovery_row["clean_shutdown_marker"], recovery_row
    assert recovery_row["checkpoint_hits"] >= 2, recovery_row
    assert recovery_row["checkpoint_hits"] + \
        recovery_row["shards_recomputed"] == \
        recovery_row["shards_total"], recovery_row
    assert recovery_row["resume_identical"], recovery_row
    assert recovery_row["worker_kill"]["retries_taken"] >= 1, recovery_row
    assert recovery_row["worker_kill"]["report_identical"], recovery_row
