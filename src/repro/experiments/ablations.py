"""Ablation experiments beyond the paper's tables.

Two studies the paper motivates but does not quantify:

* **Partition-granularity sweep** — the optimizer's analytical sweep over
  voter granularities, reported next to measured campaign numbers for the
  three canonical partitions.  This is the design-space picture behind the
  paper's "there is an optimal partition" conclusion.
* **Floorplanning** — the paper's future-work item: confine each TMR domain
  to its own column band and measure how much of the remaining vulnerability
  disappears (at the cost of longer voter nets).

``python -m repro run ablation-sweep`` and ``python -m repro run
floorplan-fir`` are the equivalent pipeline surfaces.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence

from ..core import EveryKth, sweep_partitions
from ..faults import CampaignResult, run_campaign
from ..faults.engine import BackendLike, resolve_backend
from ..pnr import Implementation
from ..pnr.artifacts import StoreLike
from .cli import experiment_parser
from .designs import DesignSuite, build_design_suite
from .table3 import campaign_config_for


def partition_sweep(suite: Optional[DesignSuite] = None, scale: str = "fast",
                    granularities: Sequence[int] = (1, 2, 3, 4, 6),
                    ) -> Dict[str, object]:
    """Analytical sweep of voter granularity on the filter."""
    if suite is None:
        suite = build_design_suite(scale)
    strategies = [EveryKth(k) for k in granularities]
    sweep = sweep_partitions(suite.netlist, suite.source,
                             strategies=strategies)
    return {
        "candidates": sweep.table(),
        "best": sweep.best.summary_row(),
    }


def floorplan_study(suite: Optional[DesignSuite] = None, scale: str = "smoke",
                    design: str = "TMR_p3", num_faults: Optional[int] = None,
                    backend: BackendLike = None,
                    jobs: int = 1,
                    flow_cache: StoreLike = None) -> Dict[str, object]:
    """Compare interleaved placement against per-domain floorplanning.

    Both variants run through the pipeline's implement stage, so the
    persistent flow store caches each placement flavour under its own
    fingerprint (the floorplan hashes into the key).
    """
    from ..pipeline import PipelineContext, pipeline_for

    campaigns: Dict[str, CampaignResult] = {}
    for label, floorplan_domains in (("interleaved", False),
                                     ("floorplanned", True)):
        ctx = PipelineContext(
            scenario_id="floorplan-fir",
            scale=scale,
            designs=(design,),
            backend=backend if backend is not None else "serial",
            num_faults=num_faults,
            jobs=jobs,
            flow_cache=flow_cache,
            floorplan_domains=floorplan_domains,
        )
        ctx.suite = suite
        pipeline_for(("build", "implement", "campaign")).run(ctx)
        suite = ctx.suite  # share one built suite across both variants
        campaigns[label] = ctx.campaigns[design]

    return {
        "design": design,
        "interleaved": campaigns["interleaved"].summary_row(),
        "floorplanned": campaigns["floorplanned"].summary_row(),
        "floorplanning_helps": campaigns["floorplanned"].wrong_answer_percent
        <= campaigns["interleaved"].wrong_answer_percent,
    }


def fault_list_mode_study(implementation: Implementation,
                          suite: DesignSuite,
                          num_faults: Optional[int] = None,
                          backend: BackendLike = None) -> Dict[str, object]:
    """How the fault-list selection mode changes the measured percentages."""
    engine = resolve_backend(backend)
    out: Dict[str, object] = {}
    for mode in ("design", "programmed"):
        config = campaign_config_for(suite, num_faults, fault_list_mode=mode)
        result = run_campaign(implementation, config, backend=engine)
        out[mode] = result.summary_row()
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    # Output is always JSON, so no --json toggle is offered.
    parser = experiment_parser(__doc__, scale_default="smoke",
                               json_flag=False)
    parser.add_argument("--study", default="sweep",
                        choices=("sweep", "floorplan"))
    arguments = parser.parse_args(argv)

    if arguments.study == "sweep":
        print(json.dumps(partition_sweep(scale=arguments.scale), indent=2,
                         default=str))
    else:
        print(json.dumps(floorplan_study(scale=arguments.scale,
                                         backend=arguments.backend,
                                         jobs=arguments.jobs,
                                         flow_cache=arguments.flow_cache),
                         indent=2, default=str))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
