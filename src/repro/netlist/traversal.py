"""Traversal utilities over flattened netlists.

These helpers treat a :class:`~repro.netlist.ir.Definition` that contains only
primitive instances as a directed graph whose vertices are instances and whose
edges follow nets from driver pins to sink pins.  Sequential cells (flip-flops)
are cut points: their outputs are treated as graph sources and their inputs as
graph sinks, which makes the remaining combinational graph acyclic for well
formed designs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Set

from .ir import Definition, Instance, InstancePin, Net, NetlistError

# Cell types treated as sequential state elements by default.
SEQUENTIAL_CELLS = frozenset({"FD", "FDR", "FDC", "FDRE", "FDCE", "FDPE", "FDSE"})
# Cell types whose outputs are constants / sources.
SOURCE_CELLS = frozenset({"GND", "VCC"})


def is_sequential(instance: Instance,
                  sequential_cells: Iterable[str] = SEQUENTIAL_CELLS) -> bool:
    """Return ``True`` if *instance* is a state element (flip-flop)."""
    return instance.reference.name in set(sequential_cells)


def net_driver_instances(net: Net) -> List[Instance]:
    """Instances whose output pins drive *net*."""
    return [p.instance for p in net.drivers() if isinstance(p, InstancePin)]


def net_sink_instances(net: Net) -> List[Instance]:
    """Instances whose input pins are fed by *net*."""
    return [p.instance for p in net.sinks() if isinstance(p, InstancePin)]


def instance_fanin_nets(instance: Instance) -> List[Net]:
    """Nets feeding the input pins of *instance* (ignores unconnected pins)."""
    nets = []
    for pin in instance.pins():
        if not pin.is_driver and pin.net is not None:
            nets.append(pin.net)
    return nets


def instance_fanout_nets(instance: Instance) -> List[Net]:
    """Nets driven by output pins of *instance*."""
    nets = []
    for pin in instance.pins():
        if pin.is_driver and pin.net is not None:
            nets.append(pin.net)
    return nets


def combinational_predecessors(instance: Instance) -> List[Instance]:
    """Combinational driver instances feeding *instance*."""
    preds = []
    for net in instance_fanin_nets(instance):
        for driver in net_driver_instances(net):
            preds.append(driver)
    return preds


def topological_levels(definition: Definition,
                       sequential_cells: Iterable[str] = SEQUENTIAL_CELLS,
                       ) -> List[List[Instance]]:
    """Levelize the combinational instances of a flat definition.

    Returns a list of levels; level 0 contains instances whose inputs are all
    primary inputs, constants or flip-flop outputs.  Sequential instances are
    placed in a level of their own appended at the end (they consume values
    but never feed combinational evaluation within the same cycle).

    Raises :class:`NetlistError` if the combinational graph has a cycle.
    """
    seq_cells = set(sequential_cells)
    combinational = [i for i in definition.instances.values()
                     if i.reference.name not in seq_cells]
    sequential = [i for i in definition.instances.values()
                  if i.reference.name in seq_cells]

    indegree: Dict[Instance, int] = {}
    dependents: Dict[Instance, List[Instance]] = {i: [] for i in combinational}
    comb_set = set(combinational)

    for inst in combinational:
        count = 0
        for net in instance_fanin_nets(inst):
            for driver in net_driver_instances(net):
                if driver in comb_set and driver is not inst:
                    dependents[driver].append(inst)
                    count += 1
        indegree[inst] = count

    levels: List[List[Instance]] = []
    frontier = deque(sorted((i for i in combinational if indegree[i] == 0),
                            key=lambda i: i.name))
    visited = 0
    while frontier:
        level = list(frontier)
        frontier.clear()
        levels.append(level)
        visited += len(level)
        next_ready: List[Instance] = []
        for inst in level:
            for dep in dependents[inst]:
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    next_ready.append(dep)
        frontier.extend(sorted(set(next_ready), key=lambda i: i.name))

    if visited != len(combinational):
        unresolved = [i.name for i in combinational if indegree[i] > 0]
        raise NetlistError(
            "combinational loop detected involving instances: "
            + ", ".join(sorted(unresolved)[:10]))

    if sequential:
        levels.append(sorted(sequential, key=lambda i: i.name))
    return levels


def topological_order(definition: Definition,
                      sequential_cells: Iterable[str] = SEQUENTIAL_CELLS,
                      ) -> List[Instance]:
    """Flattened topological ordering (combinational order, then flip-flops)."""
    order: List[Instance] = []
    for level in topological_levels(definition, sequential_cells):
        order.extend(level)
    return order


def logic_depth(definition: Definition,
                sequential_cells: Iterable[str] = SEQUENTIAL_CELLS) -> int:
    """Number of combinational levels between register/IO boundaries."""
    levels = topological_levels(definition, sequential_cells)
    if not levels:
        return 0
    seq_cells = set(sequential_cells)
    depth = len(levels)
    if levels and all(i.reference.name in seq_cells for i in levels[-1]):
        depth -= 1
    return depth


def fanin_cone(instance: Instance,
               stop_at_sequential: bool = True,
               sequential_cells: Iterable[str] = SEQUENTIAL_CELLS,
               ) -> Set[Instance]:
    """Transitive fan-in cone of *instance* (excluding the instance itself).

    If *stop_at_sequential* is true, traversal does not continue through
    flip-flop inputs (the cone stops at register boundaries).
    """
    seq_cells = set(sequential_cells)
    seen: Set[Instance] = set()
    stack = [instance]
    first = True
    while stack:
        current = stack.pop()
        if not first:
            if current in seen:
                continue
            seen.add(current)
            if stop_at_sequential and current.reference.name in seq_cells:
                continue
        first = False
        for net in instance_fanin_nets(current):
            for driver in net_driver_instances(net):
                if driver not in seen:
                    stack.append(driver)
    return seen


def fanout_cone(instance: Instance,
                stop_at_sequential: bool = True,
                sequential_cells: Iterable[str] = SEQUENTIAL_CELLS,
                ) -> Set[Instance]:
    """Transitive fan-out cone of *instance* (excluding the instance itself)."""
    seq_cells = set(sequential_cells)
    seen: Set[Instance] = set()
    stack = [instance]
    first = True
    while stack:
        current = stack.pop()
        if not first:
            if current in seen:
                continue
            seen.add(current)
            if stop_at_sequential and current.reference.name in seq_cells:
                continue
        first = False
        for net in instance_fanout_nets(current):
            for sink in net_sink_instances(net):
                if sink not in seen:
                    stack.append(sink)
    return seen


def primary_input_nets(definition: Definition) -> List[Net]:
    """Nets driven by the definition's own input ports."""
    nets = []
    for pin in definition.top_pins():
        if pin.is_driver and pin.net is not None:
            nets.append(pin.net)
    return nets


def primary_output_nets(definition: Definition) -> List[Net]:
    """Nets read by the definition's own output ports."""
    nets = []
    for pin in definition.top_pins():
        if not pin.is_driver and pin.net is not None:
            nets.append(pin.net)
    return nets


def undriven_nets(definition: Definition) -> List[Net]:
    """Nets with at least one sink but no driver."""
    result = []
    for net in definition.nets.values():
        if net.sinks() and not net.drivers():
            result.append(net)
    return result


def floating_nets(definition: Definition) -> List[Net]:
    """Nets with a driver but no sinks (dangling outputs)."""
    result = []
    for net in definition.nets.values():
        if net.drivers() and not net.sinks():
            result.append(net)
    return result


def multiply_driven_nets(definition: Definition) -> List[Net]:
    """Nets with more than one driver (a structural conflict)."""
    return [net for net in definition.nets.values() if len(net.drivers()) > 1]
