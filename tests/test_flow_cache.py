"""Persistent flow-artifact store: hits, misses, recovery, equivalence."""

import pickle

import pytest

from repro.fpga import device_by_name
from repro.pnr import (FlowArtifactStore, Floorplan, TOOL_VERSION,
                       flow_fingerprint, implement)


@pytest.fixture()
def store(tmp_path):
    return FlowArtifactStore(tmp_path / "flow-cache")


def _same_implementation(a, b):
    assert a.placement.slice_tiles == b.placement.slice_tiles
    assert a.placement.port_pads == b.placement.port_pads
    assert a.placement.wirelength == b.placement.wirelength
    assert a.routing.routes.keys() == b.routing.routes.keys()
    for name, tree in a.routing.routes.items():
        assert tree.parent == b.routing.routes[name].parent
        assert tree.sinks == b.routing.routes[name].sinks
    assert a.routing.pip_owner == b.routing.pip_owner
    assert bytes(a.bitstream.bits) == bytes(b.bitstream.bits)
    assert a.resources.stats == b.resources.stats
    assert a.timing == b.timing
    assert a.packing.cell_site == b.packing.cell_site


class TestStoreBasics:
    def test_miss_then_hit_bit_identical(self, tiny_fir_flat, small_device,
                                         store):
        cold = implement(tiny_fir_flat, small_device,
                         anneal_moves_per_slice=2, artifact_store=store)
        assert store.stats.misses == 1 and store.stats.stores == 1
        warm = implement(tiny_fir_flat, small_device,
                         anneal_moves_per_slice=2, artifact_store=store)
        assert store.stats.hits == 1
        _same_implementation(cold, warm)
        # The loaded artifact carries the caller's netlist, not a copy.
        assert warm.design is tiny_fir_flat

    def test_store_accepts_directory_path(self, tiny_fir_flat, small_device,
                                          tmp_path):
        root = tmp_path / "by-path"
        implement(tiny_fir_flat, small_device, anneal_moves_per_slice=2,
                  artifact_store=str(root))
        assert list(root.glob("*/*.pkl"))

    def test_corrupt_entry_recovered(self, tiny_fir_flat, small_device,
                                     store):
        implement(tiny_fir_flat, small_device, anneal_moves_per_slice=2,
                  artifact_store=store)
        path = next(store.root.glob("*/*.pkl"))
        path.write_bytes(b"not a pickle at all")
        recovered = implement(tiny_fir_flat, small_device,
                              anneal_moves_per_slice=2,
                              artifact_store=store)
        assert store.stats.corrupt_evictions == 1
        assert recovered.routing.routes
        # The recompute rewrote a good artifact; the next run hits again.
        hits_before = store.stats.hits
        implement(tiny_fir_flat, small_device, anneal_moves_per_slice=2,
                  artifact_store=store)
        assert store.stats.hits == hits_before + 1

    def test_stale_tool_version_evicted(self, tiny_fir_flat, small_device,
                                        store):
        implement(tiny_fir_flat, small_device, anneal_moves_per_slice=2,
                  artifact_store=store)
        path = next(store.root.glob("*/*.pkl"))
        payload = pickle.loads(path.read_bytes())
        payload["tool_version"] = "flow-0-obsolete"
        path.write_bytes(pickle.dumps(payload))
        misses_before = store.stats.misses
        implement(tiny_fir_flat, small_device, anneal_moves_per_slice=2,
                  artifact_store=store)
        assert store.stats.misses == misses_before + 1
        assert store.stats.corrupt_evictions == 1

    def test_stored_artifact_detaches_netlist(self, tiny_fir_flat,
                                              small_device, store):
        implement(tiny_fir_flat, small_device, anneal_moves_per_slice=2,
                  artifact_store=store)
        path = next(store.root.glob("*/*.pkl"))
        payload = pickle.loads(path.read_bytes())
        assert payload["implementation"].design is None
        assert payload["design_name"] == tiny_fir_flat.name


class TestFingerprint:
    def test_key_stability_and_sensitivity(self, tiny_fir_flat,
                                           small_device):
        base = flow_fingerprint(tiny_fir_flat, small_device, seed=1)
        assert base == flow_fingerprint(tiny_fir_flat, small_device, seed=1)
        assert base != flow_fingerprint(tiny_fir_flat, small_device, seed=2)
        assert base != flow_fingerprint(tiny_fir_flat, small_device, seed=1,
                                        anneal_moves_per_slice=9)
        assert base != flow_fingerprint(tiny_fir_flat, small_device, seed=1,
                                        router_iterations=5)
        other_device = device_by_name("XC2S50E")
        assert base != flow_fingerprint(tiny_fir_flat, other_device, seed=1)
        floorplan = Floorplan.vertical_thirds(small_device)
        assert base != flow_fingerprint(tiny_fir_flat, small_device, seed=1,
                                        floorplan=floorplan)

    def test_tool_version_in_key(self, tiny_fir_flat, small_device,
                                 monkeypatch):
        from repro.pnr import artifacts

        base = flow_fingerprint(tiny_fir_flat, small_device)
        monkeypatch.setattr(artifacts, "TOOL_VERSION",
                            TOOL_VERSION + "-next")
        assert flow_fingerprint(tiny_fir_flat, small_device) != base


class TestSuiteIntegration:
    """Cache-hit runs reproduce the experiment tables byte for byte."""

    @pytest.fixture(scope="class")
    def smoke_suite(self):
        from repro.experiments import build_design_suite

        return build_design_suite("smoke")

    def test_tables_identical_cold_vs_cache_hit(self, smoke_suite, tmp_path):
        import json

        from repro.experiments import (implement_design_suite, run_table3,
                                       run_table4)

        store = FlowArtifactStore(tmp_path / "suite-cache")
        designs = ["standard", "TMR_p3"]
        cold = implement_design_suite(smoke_suite, designs=designs,
                                      artifact_store=store)
        warm = implement_design_suite(smoke_suite, designs=designs,
                                      artifact_store=store)
        assert store.stats.hits == len(designs)
        for name in designs:
            _same_implementation(cold[name], warm[name])

        def tables(implementations):
            results = run_table3(suite=smoke_suite,
                                 implementations=implementations,
                                 num_faults=40, backend="vector")
            payload = {name: result.summary_row()
                       for name, result in results.items()}
            payload["table4"] = run_table4(results)
            return json.dumps(payload, sort_keys=True, default=str)

        assert tables(cold) == tables(warm)

    def test_parallel_jobs_match_serial(self, smoke_suite):
        from repro.experiments import implement_design_suite

        designs = ["standard", "TMR_p3_nv"]
        serial = implement_design_suite(smoke_suite, designs=designs)
        parallel = implement_design_suite(smoke_suite, designs=designs,
                                          jobs=2)
        for name in designs:
            _same_implementation(serial[name], parallel[name])
            assert parallel[name].design is smoke_suite.flat[name]
