"""Explore the voter-partition design space for a custom design.

The paper's conclusion — "there is an optimal logic partition for each
circuit" — turns voter placement into a design-space exploration problem.
This example shows the supporting tooling on the FIR filter:

* sweep voter granularities analytically (fast, no fault injection);
* print the Pareto front of (defeat probability, voter area);
* confirm the analytical picture with a short fault-injection campaign on
  the two most interesting candidates.

Run with ``python examples/partition_exploration.py``.
"""

import os

from repro.core import (EveryKth, NoPartition, TMRConfig, apply_tmr,
                        pareto_front, sweep_partitions)
from repro.experiments import build_design_suite, campaign_config_for
from repro.faults import run_campaign
from repro.fpga import device_by_name
from repro.netlist import flatten
from repro.pnr import implement


def main() -> None:
    suite = build_design_suite("smoke")
    netlist, source = suite.netlist, suite.source

    print("analytical sweep of voter granularities "
          "(every k-th component voted):")
    sweep = sweep_partitions(netlist, source,
                             strategies=[EveryKth(k) for k in (1, 2, 3, 5)]
                             + [NoPartition()])
    for candidate in sweep.candidates:
        row = candidate.summary_row()
        print(f"  {row['partition']:10s}: {row['voters']:4d} voters, "
              f"{row['regions']:3d} regions/domain, "
              f"defeat probability {row['defeat_probability']:.4f}")
    print(f"analytical optimum (ignoring voter cost): "
          f"{sweep.best.strategy.describe()}")

    front = pareto_front(sweep.candidates)
    print("\nPareto front (defeat probability vs voter area):")
    for candidate in front:
        print(f"  {candidate.strategy.describe():10s}: "
              f"{candidate.voter_area_luts:4d} voter LUTs, "
              f"p = {candidate.defeat_probability:.4f}")

    print("\nmeasuring the two extreme Pareto points with fault injection "
          "(bit-parallel vector backend):")
    config = campaign_config_for(suite)
    device = device_by_name(suite.scale.tmr_device)
    for candidate in (front[0], front[-1]):
        name = f"explore_{candidate.strategy.describe().replace(':', '_')}"
        result = apply_tmr(netlist, source,
                           TMRConfig(partition=candidate.strategy,
                                     name_suffix=f"_{name}"))
        flat = flatten(netlist, result.definition, flat_name=f"{name}_flat")
        implementation = implement(
            flat, device, anneal_moves_per_slice=2,
            artifact_store=os.environ.get("REPRO_FLOW_CACHE"))
        campaign = run_campaign(implementation, config, backend="vector")
        print(f"  {candidate.strategy.describe():10s}: "
              f"{campaign.wrong_answer_percent:5.2f}% wrong answers "
              f"({implementation.slice_count} slices)")


if __name__ == "__main__":
    main()
