"""Fault Injection Manager: inject one configuration upset and classify it.

For every selected bit the manager flips the bit in a copy of the bitstream
(the faulty bitstream the paper downloads into the device), derives the
behavioural overlay through the fault models, re-simulates the workload over
the fault's fan-out cone against the recorded golden trace, and compares the
outputs cycle by cycle — a *Wrong Answer* when any output ever differs from
the golden device's.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from ..pnr.flow import Implementation
from ..sim.compile import CompiledDesign
from ..sim.simulator import SimulationTrace
from .models import FaultEffect


@dataclasses.dataclass(frozen=True, slots=True)
class FaultResult:
    """Outcome of injecting one configuration upset."""

    bit: int
    resource_kind: str
    category: str
    has_effect: bool
    wrong_answer: bool
    first_mismatch_cycle: Optional[int]
    detail: str = ""

    @property
    def silent(self) -> bool:
        return not self.wrong_answer


class FaultInjectionManager:
    """Runs single-fault experiments against a golden reference.

    The evaluation itself lives in :class:`repro.faults.engine.
    CampaignContext`; this manager remains the one-fault-at-a-time surface
    (and keeps the paper-faithful step of flipping the bit in a copy of the
    bitstream, even though the simulator consumes the overlay).
    """

    def __init__(self, implementation: Implementation,
                 compiled: CompiledDesign,
                 stimulus: Sequence[Dict[str, int]],
                 output_ports: Optional[Sequence[str]] = None,
                 skip_cycles: int = 0) -> None:
        from .engine import CampaignContext

        self.implementation = implementation
        self.compiled = compiled
        self.stimulus = list(stimulus)
        self.output_ports = list(output_ports) if output_ports else None
        self.skip_cycles = skip_cycles
        self.context = CampaignContext(
            implementation, compiled, self.stimulus,
            skip_cycles=skip_cycles, output_ports=self.output_ports)
        self.modeler = self.context.modeler
        #: the golden device run: full simulation with every net recorded so
        #: that faulty runs can be confined to the fault's fan-out cone
        self.context.prepare()
        self.golden: SimulationTrace = self.context.golden

    # --------------------------------------------------------------
    def golden_outputs(self) -> SimulationTrace:
        return self.golden

    def inject(self, bit: int) -> FaultResult:
        """Inject a single bit flip and classify its outcome."""
        effect = self.modeler.effect_of_bit(bit)
        return self._evaluate(effect)

    def inject_effect(self, effect: FaultEffect) -> FaultResult:
        """Evaluate an already-modelled effect (used by the campaign runner)."""
        return self._evaluate(effect)

    # --------------------------------------------------------------
    def _evaluate(self, effect: FaultEffect) -> FaultResult:
        from .engine import FaultTask

        if effect.has_effect:
            # The faulty bitstream: flip the bit in a copy (kept faithful to
            # the paper's flow even though the simulator consumes the
            # overlay).
            faulty_bitstream = self.implementation.bitstream.copy()
            faulty_bitstream.flip_bit(effect.bit)
        task = FaultTask(index=-1, bit=effect.bit, effect=effect)
        return self.context.evaluate(task).to_result()
