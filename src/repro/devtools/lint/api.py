"""P-series checkers: picklability and public-API integrity.

* **P401** — backend payload types (``FaultTask``/``FaultVerdict``/
  ``FaultResult``) cross process boundaries through the process and
  sharded backends; they must be ``@dataclass(frozen=True, slots=True)``
  so they stay picklable, immutable in flight and structurally stable.
* **P402** — ``repro/__init__`` re-exports its public API lazily
  through ``_PUBLIC_API``; a stale ``(module, attribute)`` entry only
  explodes on first attribute access, so the analyzer resolves every
  entry against the actual module ASTs.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from .context import ModuleContext
from .model import Finding, LintConfig, RULES

_DATACLASS_NAMES = ("dataclasses.dataclass", "dataclass")


def _finding(ctx: ModuleContext, rule: str, node: ast.AST,
             message: str) -> Finding:
    return Finding(rule=rule, path=ctx.rel_path, line=node.lineno,
                   col=node.col_offset, scope=ctx.qualname(node),
                   message=message, hint=RULES[rule].hint)


def check_api(ctx: ModuleContext, config: LintConfig) -> List[Finding]:
    findings: List[Finding] = []
    if config.enabled("P401"):
        findings.extend(_check_payloads(ctx, config))
    if config.enabled("P402") \
            and ctx.rel_path.endswith(config.public_api_module):
        findings.extend(_check_public_api(ctx))
    return findings


# ----------------------------------------------------------------------
# P401 — payload classes
# ----------------------------------------------------------------------
def _dataclass_flags(ctx: ModuleContext, class_node: ast.ClassDef
                     ) -> Optional[Dict[str, bool]]:
    """``{"frozen": ..., "slots": ...}`` of the dataclass decorator."""
    for decorator in class_node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if ctx.dotted(target) not in _DATACLASS_NAMES:
            continue
        flags = {"frozen": False, "slots": False}
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg in flags:
                    flags[keyword.arg] = (
                        isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True)
        return flags
    return None


def _check_payloads(ctx: ModuleContext,
                    config: LintConfig) -> List[Finding]:
    required = config.payload_classes_for(ctx.rel_path)
    if not required:
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef) \
                or node.name not in required:
            continue
        flags = _dataclass_flags(ctx, node)
        if flags is None:
            findings.append(_finding(
                ctx, "P401", node,
                f"{node.name} is a backend payload but not a "
                "dataclass"))
            continue
        missing = sorted(flag for flag, on in flags.items() if not on)
        if missing:
            findings.append(_finding(
                ctx, "P401", node,
                f"{node.name} is a backend payload but its dataclass "
                f"decorator lacks {'/'.join(missing)}=True"))
    return findings


# ----------------------------------------------------------------------
# P402 — lazy-export drift
# ----------------------------------------------------------------------
def _public_api_entries(ctx: ModuleContext
                        ) -> List[Tuple[ast.AST, str, str, str]]:
    """(node, exported name, module, attribute) from ``_PUBLIC_API``."""
    entries: List[Tuple[ast.AST, str, str, str]] = []
    for node in ctx.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        names = [target.id for target in node.targets
                 if isinstance(target, ast.Name)]
        if "_PUBLIC_API" not in names \
                or not isinstance(node.value, ast.Dict):
            continue
        for key, value in zip(node.value.keys, node.value.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Tuple)
                    and len(value.elts) == 2
                    and all(isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                            for elt in value.elts)):
                entries.append((key if key is not None else node,
                                "?", "?", "?"))
                continue
            module, attribute = (elt.value for elt in value.elts)
            entries.append((key, key.value, module, attribute))
    return entries


def _top_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, ast.Tuple):
                    names.update(elt.id for elt in target.elts
                                 if isinstance(elt, ast.Name))
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, ast.ImportFrom):
            names.update(alias.asname or alias.name
                         for alias in node.names)
        elif isinstance(node, ast.Import):
            names.update(alias.asname or alias.name.split(".")[0]
                         for alias in node.names)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING/optional-dependency guards still bind names.
            names.update(_top_level_names(
                ast.Module(body=list(ast.iter_child_nodes(node)),
                           type_ignores=[])))
    return names


def _module_file(src_root: Path, module: str) -> Optional[Path]:
    base = src_root.joinpath(*module.split("."))
    for candidate in (base.with_suffix(".py"), base / "__init__.py"):
        if candidate.is_file():
            return candidate
    return None


def _check_public_api(ctx: ModuleContext) -> List[Finding]:
    # src root: the directory the top-level package lives in.
    src_root = ctx.path.parent.parent
    findings: List[Finding] = []
    entries = _public_api_entries(ctx)
    for node, exported, module, attribute in entries:
        if module == "?":
            findings.append(_finding(
                ctx, "P402", node,
                "_PUBLIC_API entry is not a literal "
                "(name, (module, attribute)) pair"))
            continue
        module_file = _module_file(src_root, module)
        if module_file is None:
            findings.append(_finding(
                ctx, "P402", node,
                f"_PUBLIC_API exports {exported!r} from {module} but "
                "that module does not exist"))
            continue
        tree = ast.parse(module_file.read_text(),
                         filename=str(module_file))
        if attribute not in _top_level_names(tree):
            findings.append(_finding(
                ctx, "P402", node,
                f"_PUBLIC_API exports {exported!r} as "
                f"{module}.{attribute}, but {module} defines no "
                f"top-level {attribute!r}"))
    return findings
