"""Packing, placement, routing and timing onto the FPGA device model."""

from .artifacts import (FlowArtifactStore, TOOL_VERSION, flow_fingerprint,
                        netlist_fingerprint, resolve_store)
from .flow import Implementation, implement
from .pack import PackResult, SliceAssignment, VIRTUAL_CELLS, pack
from .place import Floorplan, Placement, place
from .route import (DirectConnection, NetRequest, Router, RoutingError,
                    RoutingResult, RouteTree, SinkSpec, SkippedNet,
                    extract_routing_problem, route_design)
from .timing import TimingReport, estimate_timing

__all__ = [
    "Implementation", "implement", "PackResult", "SliceAssignment",
    "VIRTUAL_CELLS", "pack", "Floorplan", "Placement", "place",
    "DirectConnection", "NetRequest", "Router", "RoutingError",
    "RoutingResult", "RouteTree", "SinkSpec", "SkippedNet",
    "extract_routing_problem", "route_design", "TimingReport",
    "estimate_timing", "FlowArtifactStore", "TOOL_VERSION",
    "flow_fingerprint", "netlist_fingerprint", "resolve_store",
]
