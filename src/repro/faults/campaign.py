"""Fault-injection campaigns: the experiment of the paper's Tables 3 and 4.

A campaign takes one implemented design, builds its fault list, samples a
configurable number of bits, injects them one at a time and aggregates the
results: the fraction of upsets producing wrong answers (Table 3) and the
breakdown of error-causing upsets by effect category (Table 4).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence

from ..pnr.flow import Implementation
from ..sim.compile import CompiledDesign
from ..sim.vectors import campaign_workload, stimulus_from_samples, \
    tmr_stimulus_from_samples
from . import categories
from .fault_list import FaultList, FaultListManager
from .injector import FaultInjectionManager, FaultResult


@dataclasses.dataclass
class CampaignConfig:
    """Parameters of one fault-injection campaign."""

    #: number of upsets to inject (the paper injects ~10% of the relevant
    #: bits; ``None`` means "sample_fraction of the fault list")
    num_faults: Optional[int] = None
    #: fraction of the fault list to sample when ``num_faults`` is None
    sample_fraction: float = 0.10
    #: random seed for fault sampling (publication year by default)
    seed: int = 2005
    #: workload length in clock cycles
    workload_cycles: int = 12
    #: workload seed (same stream for every design of an experiment)
    workload_seed: int = 2005
    #: fault list selection mode (see :mod:`repro.faults.fault_list`)
    fault_list_mode: str = "design"
    #: cycles ignored at the start of the comparison
    skip_cycles: int = 0


@dataclasses.dataclass
class CategoryCount:
    """Occurrences of one effect category within a campaign."""

    injected: int = 0
    wrong: int = 0


@dataclasses.dataclass
class CampaignResult:
    """Aggregated outcome of one campaign (one row of Table 3)."""

    design: str
    mode: str
    fault_list_size: int
    injected: int
    wrong_answers: int
    results: List[FaultResult]
    by_category: Dict[str, CategoryCount]
    duration_seconds: float

    @property
    def wrong_answer_percent(self) -> float:
        if not self.injected:
            return 0.0
        return 100.0 * self.wrong_answers / self.injected

    def effect_table(self) -> Dict[str, int]:
        """Error-causing upsets per category (one column of Table 4)."""
        return {category: count.wrong
                for category, count in self.by_category.items()}

    def summary_row(self) -> Dict[str, object]:
        return {
            "design": self.design,
            "injected": self.injected,
            "wrong": self.wrong_answers,
            "wrong_percent": round(self.wrong_answer_percent, 2),
        }


def default_stimulus(implementation: Implementation,
                     config: CampaignConfig) -> List[Dict[str, int]]:
    """Build the campaign workload for a design.

    TMR designs expose triplicated data inputs (``DIN_tr0`` ...); the same
    sample stream is applied to all three copies, as the three domains share
    the external signal in the paper's setup.
    """
    ports = implementation.design.ports
    data_ports = [name for name in ports
                  if ports[name].direction.value == "input"
                  and not name.upper().startswith("CLK")]
    tmr_style = any(name.endswith("_tr0") for name in data_ports)
    base_port = None
    for name in data_ports:
        if name.endswith("_tr0"):
            base_port = name[:-4]
            width = ports[name].width
            break
        base_port = name
        width = ports[name].width
    if base_port is None:
        return [{} for _ in range(config.workload_cycles)]
    samples = campaign_workload(width, config.workload_cycles,
                                config.workload_seed)
    if tmr_style:
        return tmr_stimulus_from_samples(samples, base_port)
    return stimulus_from_samples(samples, base_port)


def run_campaign(implementation: Implementation,
                 config: Optional[CampaignConfig] = None,
                 compiled: Optional[CompiledDesign] = None,
                 stimulus: Optional[Sequence[Dict[str, int]]] = None,
                 fault_bits: Optional[Sequence[int]] = None,
                 progress: Optional[callable] = None) -> CampaignResult:
    """Run one fault-injection campaign on an implemented design."""
    config = config if config is not None else CampaignConfig()
    compiled = compiled if compiled is not None \
        else CompiledDesign(implementation.design)
    stimulus = list(stimulus) if stimulus is not None \
        else default_stimulus(implementation, config)

    start = time.time()
    manager = FaultListManager(implementation)
    fault_list = manager.build(config.fault_list_mode)
    if fault_bits is None:
        count = config.num_faults if config.num_faults is not None else \
            max(1, int(len(fault_list) * config.sample_fraction))
        fault_bits = fault_list.sample(count, config.seed)

    injector = FaultInjectionManager(implementation, compiled, stimulus,
                                     skip_cycles=config.skip_cycles)

    results: List[FaultResult] = []
    by_category: Dict[str, CategoryCount] = {
        category: CategoryCount() for category in categories.TABLE4_ORDER}
    wrong_answers = 0
    for index, bit in enumerate(fault_bits):
        result = injector.inject(bit)
        results.append(result)
        bucket = by_category.setdefault(result.category, CategoryCount())
        bucket.injected += 1
        if result.wrong_answer:
            bucket.wrong += 1
            wrong_answers += 1
        if progress is not None and (index + 1) % 250 == 0:
            progress(index + 1, len(fault_bits))

    return CampaignResult(
        design=implementation.design.name,
        mode=config.fault_list_mode,
        fault_list_size=len(fault_list),
        injected=len(results),
        wrong_answers=wrong_answers,
        results=results,
        by_category=by_category,
        duration_seconds=time.time() - start,
    )


def run_campaigns(implementations: Dict[str, Implementation],
                  config: Optional[CampaignConfig] = None,
                  progress: Optional[callable] = None
                  ) -> Dict[str, CampaignResult]:
    """Run the same campaign over several designs (the five filter versions)."""
    results: Dict[str, CampaignResult] = {}
    for name, implementation in implementations.items():
        results[name] = run_campaign(implementation, config,
                                     progress=progress)
    return results
