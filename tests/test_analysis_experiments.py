"""Tests for the analysis reports, optimizer and experiment drivers."""

import pytest

from repro.analysis import (area_overhead, best_partition,
                            domain_crossing_summary, format_resource_table,
                            improvement_factor, performance_degradation,
                            resource_row, resource_table,
                            routing_effect_share, tradeoff_curve)
from repro.core import EveryKth, NoPartition, pareto_front, sweep_partitions
from repro.experiments import (DESIGN_ORDER, PAPER_TABLE3_PERCENT, SCALES,
                               ascii_partition_diagram, build_design_suite,
                               figure2_summary, fir_spec_for, run_figures,
                               scale_by_name, tmr_configs)
from repro.faults import CampaignConfig, run_campaign


class TestResourceAnalysis:
    def test_resource_row_fields(self, tiny_fir_implementation):
        row = resource_row("standard", tiny_fir_implementation)
        assert row.total_bits == row.routing_bits + row.lut_bits + row.ff_bits
        assert 0.5 < row.routing_fraction < 1.0
        assert row.as_dict()["design"] == "standard"

    def test_resource_table_and_overheads(self, tiny_fir_implementation,
                                          tiny_tmr_implementation):
        implementations = {"standard": tiny_fir_implementation,
                           "TMR_p2": tiny_tmr_implementation}
        rows = resource_table(implementations,
                              order=["standard", "TMR_p2"])
        overhead = area_overhead(rows, "standard")
        assert overhead["standard"] == 1.0
        assert overhead["TMR_p2"] > 2.0
        slowdown = performance_degradation(rows, "standard")
        assert slowdown["TMR_p2"] <= 1.05
        assert "Table 2" in format_resource_table(rows)
        with pytest.raises(KeyError):
            area_overhead(rows, "missing")


class TestRobustnessAnalysis:
    @pytest.fixture(scope="class")
    def campaigns(self, tiny_fir_implementation, tiny_tmr_implementation):
        config = CampaignConfig(num_faults=120, workload_cycles=8)
        return {
            "standard": run_campaign(tiny_fir_implementation, config),
            "TMR_p2": run_campaign(tiny_tmr_implementation, config),
        }

    def test_tmr_better_than_unprotected(self, campaigns):
        assert campaigns["TMR_p2"].wrong_answer_percent < \
            campaigns["standard"].wrong_answer_percent

    def test_improvement_and_best(self, campaigns):
        factor = improvement_factor(campaigns, "standard", "TMR_p2")
        assert factor > 1
        assert best_partition(campaigns) == "TMR_p2"

    def test_routing_effect_share(self, campaigns):
        share = routing_effect_share(campaigns["standard"])
        assert 0.0 <= share <= 1.0

    def test_tradeoff_curve(self, tiny_fir_implementation,
                            tiny_tmr_implementation, campaigns,
                            tiny_tmr_suite):
        implementations = {"standard": tiny_fir_implementation,
                           "TMR_p2": tiny_tmr_implementation}
        points = tradeoff_curve(implementations, campaigns,
                                {"TMR_p2": tiny_tmr_suite["p2"]})
        assert len(points) == 2
        assert points[0].voters <= points[-1].voters

    def test_domain_crossing_summary(self, tiny_tmr_implementation):
        summary = domain_crossing_summary(tiny_tmr_implementation)
        assert summary["routed_nets"] > 0
        assert summary["nets_domain_0"] > 0
        assert summary["tiles_with_multiple_domains"] >= 0


class TestOptimizer:
    def test_sweep_orders_candidates(self, tiny_fir):
        netlist, _spec, top, _components = tiny_fir
        sweep = sweep_partitions(netlist, top,
                                 strategies=[NoPartition(), EveryKth(2),
                                             EveryKth(1)])
        assert len(sweep.candidates) == 3
        # more voters -> lower analytical defeat probability
        by_voters = sorted(sweep.candidates, key=lambda c: c.voter_area_luts)
        assert by_voters[0].defeat_probability >= \
            by_voters[-1].defeat_probability
        assert sweep.best in sweep.candidates
        table = sweep.table()
        assert len(table) == 3 and "defeat_probability" in table[0]

    def test_voter_cost_weight_changes_choice(self, tiny_fir):
        netlist, _spec, top, _components = tiny_fir
        cheap = sweep_partitions(netlist, top,
                                 strategies=[NoPartition(), EveryKth(1)],
                                 voter_cost_weight=1.0)
        assert cheap.best.strategy.name == "min"

    def test_pareto_front(self, tiny_fir):
        netlist, _spec, top, _components = tiny_fir
        sweep = sweep_partitions(netlist, top,
                                 strategies=[NoPartition(), EveryKth(2),
                                             EveryKth(1)])
        front = pareto_front(sweep.candidates)
        assert front
        assert all(candidate in sweep.candidates for candidate in front)


class TestExperimentScaffolding:
    def test_scales_defined(self):
        assert set(SCALES) == {"paper", "fast", "smoke", "tiny", "huge"}
        assert scale_by_name("paper").taps == 11
        assert scale_by_name("huge").campaign_faults == 1_000_000
        with pytest.raises(KeyError):
            scale_by_name("gigantic")

    def test_fir_spec_for_paper_scale(self):
        spec = fir_spec_for(scale_by_name("paper"))
        assert spec.taps == 11 and spec.data_width == 9

    def test_tmr_configs_cover_paper_versions(self):
        configs = tmr_configs()
        assert set(configs) == {"TMR_p1", "TMR_p2", "TMR_p3", "TMR_p3_nv"}
        assert configs["TMR_p3_nv"].vote_registers is False
        assert set(DESIGN_ORDER) == set(configs) | {"standard"}

    def test_paper_reference_numbers(self):
        assert PAPER_TABLE3_PERCENT["TMR_p2"] == pytest.approx(0.98)
        assert PAPER_TABLE3_PERCENT["standard"] > 90

    def test_build_design_suite_smoke(self):
        suite = build_design_suite("smoke")
        assert set(suite.flat) == set(DESIGN_ORDER)
        assert set(suite.tmr) == set(tmr_configs())
        standard_luts = sum(
            v for k, v in suite.flat["standard"].count_primitives().items()
            if k.startswith("LUT"))
        tmr_luts = sum(
            v for k, v in suite.flat["TMR_p1"].count_primitives().items()
            if k.startswith("LUT"))
        assert tmr_luts > 3 * standard_luts

    def test_figures_summaries(self):
        suite = build_design_suite("smoke")
        summary = run_figures(suite)
        assert summary["figure1"]["inputs_triplicated"]
        assert summary["figure1"]["domains_isolated_outside_voters"]
        assert summary["figure2"]["voters_per_bit_per_domain"]
        assert summary["figure2"]["domain_outputs_agree"]
        assert summary["figure3"]["regions_increase_with_partitioning"]
        inventory = summary["figure4"]["component_inventory"]
        assert inventory["multipliers"] == suite.spec.taps
        diagram = ascii_partition_diagram(suite, "TMR_p2")
        assert "output voter" in diagram

    def test_figure2_is_self_contained(self):
        summary = figure2_summary()
        assert summary["flip_flops"] == 12
        assert summary["voters"] == 12
