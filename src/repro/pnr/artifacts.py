"""Persistent, content-addressed store for implementation artifacts.

The paper's experiment drivers re-implement the same five filter versions
for every table, ablation, scale and floorplan variant; place-and-route is
a pure function of (flat netlist, device, floorplan, flow parameters, tool
version), so its result can live on disk and be reused by every later run
of any experiment CLI.

* :func:`flow_fingerprint` canonically serializes those inputs into a
  SHA-256 key.  The netlist part iterates ports/instances/pins in sorted
  order, so the key is stable across processes, hash seeds and rebuilds
  of the same design.
* :class:`FlowArtifactStore` maps a key to a pickled
  :class:`~repro.pnr.flow.Implementation` under
  ``<root>/<key[:2]>/<key>.pkl``.  The netlist graph itself is *not*
  pickled (it is deeply recursive and the caller necessarily holds an
  equivalent definition — it hashed into the key); the design is detached
  before writing and re-attached on load.  Writes are atomic
  (temp file + ``os.replace``) and corrupted or stale entries are evicted
  and treated as misses, so an interrupted run can never poison later
  ones.

The store is deliberately dumb: no locking beyond atomic replace, no
eviction policy.  Artifacts are small (a few MB at paper scale) and a CI
cache or ``rm -rf`` manages their lifetime.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Union

from ..fpga.device import Device
from ..netlist.ir import Definition
from .place import Floorplan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .flow import Implementation

#: Bump on any change that alters flow outputs (router costs, placement
#: schedule, bit accounting, pickle format): old artifacts then miss
#: instead of resurrecting stale results.
TOOL_VERSION = "flow-1"

#: Pickle format stored inside each artifact file.
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


@dataclasses.dataclass
class StoreStats:
    """Hit/miss/error counters of one :class:`FlowArtifactStore`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt_evictions: int = 0
    store_failures: int = 0

    def __post_init__(self) -> None:
        # The campaign service implements designs from concurrent jobs;
        # a bare ``+= 1`` is a read-modify-write that loses updates under
        # threads.  The lock is a plain attribute (not a field), so
        # ``dataclasses.asdict`` never tries to copy it.
        self.lock = threading.Lock()

    def bump(self, counter: str) -> None:
        with self.lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def as_dict(self) -> Dict[str, int]:
        with self.lock:
            return dataclasses.asdict(self)


def netlist_fingerprint(definition: Definition) -> str:
    """Canonical content hash of a flat netlist.

    Hashes the interface (ports), every instance's cell type, properties
    and pin connections, and the top-level port connections — all in
    sorted order, so two independently built but structurally identical
    definitions (e.g. ``build_design_suite`` run in another process)
    produce the same digest.
    """
    digest = hashlib.sha256()
    update = digest.update
    update(definition.name.encode())
    for port_name in sorted(definition.ports):
        port = definition.ports[port_name]
        update(f"|port:{port_name}:{port.direction.value}"
               f":{port.width}".encode())
        for bit in port.bits():
            net = None
            pin = definition._top_pins.get((port_name, bit))
            if pin is not None and pin.net is not None:
                net = pin.net.name
            update(f"|top:{bit}:{net}".encode())
    for instance_name in sorted(definition.instances):
        instance = definition.instances[instance_name]
        update(f"|inst:{instance_name}:{instance.reference.name}".encode())
        for key in sorted(instance.properties):
            update(f"|prop:{key}:{instance.properties[key]!r}".encode())
        connections = sorted(
            (port_name, index, pin.net.name)
            for (port_name, index), pin in instance._pins.items()
            if pin.net is not None)
        for port_name, index, net_name in connections:
            update(f"|pin:{port_name}:{index}:{net_name}".encode())
    return digest.hexdigest()


def flow_fingerprint(definition: Definition, device: Device,
                     seed: int = 1,
                     floorplan: Optional[Floorplan] = None,
                     anneal_moves_per_slice: int = 4,
                     router_iterations: int = 20,
                     allow_overuse: bool = False,
                     target_utilization: float = 0.55,
                     partitions: int = 1) -> str:
    """Content key of one ``implement`` call: netlist + device + knobs."""
    digest = hashlib.sha256()
    digest.update(netlist_fingerprint(definition).encode())
    spec = device.spec
    digest.update(
        f"|device:{spec.name}:{spec.columns}x{spec.rows}"
        f":w{spec.wires_per_direction}:p{spec.pads_per_tile}"
        f":f{spec.frame_bits}".encode())
    if floorplan is not None:
        for domain in sorted(floorplan.domain_columns):
            low, high = floorplan.domain_columns[domain]
            digest.update(f"|fp:{domain}:{low}:{high}".encode())
    digest.update(
        f"|flow:{TOOL_VERSION}:seed={seed}"
        f":anneal={anneal_moves_per_slice}"
        f":iters={router_iterations}"
        f":overuse={allow_overuse}"
        f":util={target_utilization!r}".encode())
    # The annealer partition count determines the placement, so it is part
    # of the content key — but only when it deviates from the historical
    # single-partition schedule, keeping every pre-existing fingerprint
    # (and stored artifact) valid.  Thread count is deliberately absent:
    # execution parallelism never changes results.
    if partitions != 1:
        digest.update(f"|partitions={partitions}".encode())
    return digest.hexdigest()


class FlowArtifactStore:
    """On-disk content-addressed store of implementations."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    def path_of(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        return self.path_of(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    # ------------------------------------------------------------------
    def load(self, key: str, design: Definition) -> Optional["Implementation"]:
        """Load the implementation stored under *key*, or ``None``.

        *design* is re-attached as the implementation's netlist: the
        artifact deliberately travels without its (recursive) netlist
        graph, and the key already proves the caller's definition is the
        one that was implemented.
        """
        path = self.path_of(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.stats.bump("misses")
            return None
        except Exception:
            # Truncated write, foreign file, unpicklable garbage: evict
            # and fall back to a recompute.
            self._evict(path)
            self.stats.bump("misses")
            return None
        if not isinstance(payload, dict) \
                or payload.get("tool_version") != TOOL_VERSION \
                or payload.get("key") != key:
            self._evict(path)
            self.stats.bump("misses")
            return None
        implementation = payload["implementation"]
        implementation.design = design
        # Rebind the (cache-stripped) pickled layout to the process-wide
        # shared instance so its lazily built PIP tables are paid for once
        # per device profile, not once per loaded artifact.
        from ..fpga.config import shared_layout

        layout = shared_layout(implementation.device)
        if layout.total_bits == implementation.layout.total_bits:
            implementation.layout = layout
            implementation.bitstream.layout = layout
        try:
            # Refresh recency: when the store lives inside a shared cache
            # tier, LRU eviction ranks entries by mtime, and a hit must
            # spare a warm artifact before an idle one.
            os.utime(path)
        except OSError:
            pass
        self.stats.bump("hits")
        return implementation

    def store(self, key: str, implementation: "Implementation") -> bool:
        """Persist *implementation* under *key*; returns success."""
        path = self.path_of(key)
        payload = {
            "tool_version": TOOL_VERSION,
            "key": key,
            "design_name": implementation.design.name,
            "device": implementation.device.spec.name,
            "implementation": dataclasses.replace(implementation,
                                                  design=None),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp",
                delete=False)
            try:
                with handle:
                    pickle.dump(payload, handle, protocol=_PICKLE_PROTOCOL)
                os.replace(handle.name, path)
            except BaseException:
                os.unlink(handle.name)
                raise
        except Exception:
            # A read-only cache directory or a full disk must never fail
            # the flow itself; the artifact is merely not persisted.
            self.stats.bump("store_failures")
            return False
        self.stats.bump("stores")
        return True

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
            self.stats.bump("corrupt_evictions")
        except OSError:
            pass

    def clear(self) -> None:
        for path in sorted(self.root.glob("*/*.pkl")):
            try:
                path.unlink()
            except OSError:
                pass


#: Anything ``implement(..., artifact_store=...)`` accepts.
StoreLike = Union[None, str, Path, FlowArtifactStore]


def resolve_store(store: StoreLike) -> Optional[FlowArtifactStore]:
    """Normalize the ``artifact_store=`` knob (``None`` stays ``None``)."""
    if store is None:
        return None
    if isinstance(store, FlowArtifactStore):
        return store
    return FlowArtifactStore(store)
