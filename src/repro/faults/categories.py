"""Upset-effect taxonomy (the rows of the paper's Table 4).

The paper classifies the configuration upsets that produced wrong answers
into effects on the CLB logic (LUT, MUX, Initialization) and effects on the
general routing (Open, Bridge, Input-Antenna, Conflict, Others).  The same
labels are used here; the operational definitions — how a flipped bit of our
fabric model maps onto each label — are documented with the fault models in
:mod:`repro.faults.models`.
"""

from __future__ import annotations

#: Upset in a used LUT truth-table bit.
LUT = "LUT"
#: Upset in an intra-CLB multiplexer configuration bit (FF data source,
#: clock-enable source, clock inversion).
MUX = "MUX"
#: Upset in a flip-flop initialization / set-reset-value bit.
INITIALIZATION = "Initialization"
#: A used programmable interconnect point turned off: the downstream sinks
#: float.
OPEN = "Open"
#: A new PIP onto a used input multiplexer (or a used signal bridged to an
#: undriven wire): the sink sees the blend of two signals.
BRIDGE = "Bridge"
#: A new PIP connecting a used (driven) signal to an unused input node.
INPUT_ANTENNA = "Input-Antenna"
#: A new PIP shorting two driven wires: both nets fight and blend.
CONFLICT = "Conflict"
#: Everything else (bits of unused resources, effects with no mapping).
OTHERS = "Others"

#: Canonical row order used in reports (matches Table 4 of the paper).
TABLE4_ORDER = (LUT, MUX, INITIALIZATION, OPEN, BRIDGE, INPUT_ANTENNA,
                CONFLICT, OTHERS)

#: Categories that originate in the CLB (logic) configuration.
CLB_CATEGORIES = (LUT, MUX, INITIALIZATION)
#: Categories that originate in the general routing.
ROUTING_CATEGORIES = (OPEN, BRIDGE, INPUT_ANTENNA, CONFLICT, OTHERS)
