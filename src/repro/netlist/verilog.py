"""Structural Verilog export and a minimal structural import.

The writer emits flat or hierarchical netlists as gate-level Verilog using
named port connections, one instance per statement.  The reader accepts the
same subset back (module / wire / instance / endmodule); it exists so that
designs can round-trip through text for inspection, diffing and archival,
not to parse arbitrary third party Verilog.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, TextIO, Tuple

from .ir import Definition, Direction, Library, Net, Netlist, NetlistError

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _escape(name: str) -> str:
    """Escape an identifier for Verilog if it contains special characters."""
    if _ID_RE.match(name):
        return name
    return f"\\{name} "


def _unescape(token: str) -> str:
    if token.startswith("\\"):
        return token[1:].rstrip()
    return token


def _port_decl(port) -> str:
    direction = {Direction.INPUT: "input", Direction.OUTPUT: "output",
                 Direction.INOUT: "inout"}[port.direction]
    if port.width == 1:
        return f"  {direction} {_escape(port.name)};"
    return f"  {direction} [{port.width - 1}:0] {_escape(port.name)};"


def write_definition(definition: Definition, stream: TextIO) -> None:
    """Write one definition as a Verilog module."""
    port_names = ", ".join(_escape(p.name) for p in definition.ports.values())
    stream.write(f"module {_escape(definition.name)} ({port_names});\n")
    for port in definition.ports.values():
        stream.write(_port_decl(port) + "\n")

    port_bit_nets = _port_bit_net_map(definition)
    for net in definition.nets.values():
        if id(net) in port_bit_nets:
            continue
        stream.write(f"  wire {_escape(net.name)};\n")

    for inst in definition.instances.values():
        connections = []
        for pin in sorted(inst.pins(), key=lambda p: (p.port_name, p.index)):
            if pin.net is None:
                continue
            expr = _net_expr(definition, pin.net, port_bit_nets)
            port = inst.reference.ports[pin.port_name]
            if port.width == 1:
                connections.append(f".{_escape(pin.port_name)}({expr})")
            else:
                connections.append(
                    f".{_escape(pin.port_name)}__{pin.index}({expr})")
        params = ""
        if inst.properties.get("INIT") is not None:
            init = inst.properties["INIT"]
            params = f" #(.INIT({init}))" if isinstance(init, str) \
                else f" #(.INIT({init:d}))"
        stream.write(
            f"  {_escape(inst.reference.name)}{params} {_escape(inst.name)} "
            f"({', '.join(connections)});\n")
    stream.write("endmodule\n\n")


def _port_bit_net_map(definition: Definition) -> Dict[int, Tuple[str, int, int]]:
    """Map net id -> (port name, bit, width) for nets tied to top pins."""
    result: Dict[int, Tuple[str, int, int]] = {}
    for pin in definition.top_pins():
        if pin.net is not None:
            port = definition.ports[pin.port_name]
            result[id(pin.net)] = (pin.port_name, pin.index, port.width)
    return result


def _net_expr(definition: Definition, net: Net,
              port_bit_nets: Dict[int, Tuple[str, int, int]]) -> str:
    entry = port_bit_nets.get(id(net))
    if entry is None:
        return _escape(net.name)
    port_name, bit, width = entry
    if width == 1:
        return _escape(port_name)
    return f"{_escape(port_name)}[{bit}]"


def write_netlist(netlist: Netlist, stream: TextIO,
                  include_primitives: bool = False) -> None:
    """Write every non-primitive definition of *netlist* as Verilog."""
    stream.write(f"// netlist: {netlist.name}\n")
    if netlist.top is not None:
        stream.write(f"// top: {netlist.top.name}\n")
    stream.write("\n")
    for definition in netlist.all_definitions():
        if definition.is_primitive and not include_primitives:
            continue
        write_definition(definition, stream)


def netlist_to_string(netlist: Netlist, include_primitives: bool = False) -> str:
    """Return the Verilog text of *netlist* as a string."""
    import io

    buffer = io.StringIO()
    write_netlist(netlist, buffer, include_primitives)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# Minimal structural reader
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\\\S+\s|[A-Za-z_][A-Za-z0-9_$]*|\[|\]|[0-9]+|[(),;.#]|'")


def _tokenize(text: str) -> List[str]:
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return [t.strip() if t.startswith("\\") else t
            for t in _TOKEN_RE.findall(text)]


class _TokenStream:
    def __init__(self, tokens: List[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Optional[str]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise NetlistError("unexpected end of Verilog input")
        self._pos += 1
        return token

    def expect(self, expected: str) -> str:
        token = self.next()
        if token != expected:
            raise NetlistError(f"expected {expected!r}, got {token!r}")
        return token

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)


def read_netlist(text: str, netlist: Optional[Netlist] = None,
                 primitive_library: Optional[Library] = None,
                 library_name: str = "work") -> Netlist:
    """Parse structural Verilog produced by :func:`write_netlist`.

    Unknown cell references resolve against *primitive_library* when given;
    otherwise primitive definitions with single-bit input ports are created
    on demand (ports are inferred from connection names, inputs assumed).
    """
    result = netlist if netlist is not None else Netlist("imported")
    work = result.get_library(library_name)
    stream = _TokenStream(_tokenize(text))

    while not stream.at_end():
        token = stream.next()
        if token != "module":
            continue
        _read_module(stream, result, work, primitive_library)

    if result.top is None:
        # Use the last module without instantiations by others as top.
        instantiated = set()
        for definition in result.all_definitions():
            for inst in definition.instances.values():
                instantiated.add(inst.reference.name)
        for definition in work:
            if definition.name not in instantiated:
                result.set_top(definition)
    return result


def _read_module(stream: _TokenStream, netlist: Netlist, work: Library,
                 primitive_library: Optional[Library]) -> None:
    name = _unescape(stream.next())
    definition = work.add_definition(name)
    stream.expect("(")
    port_order: List[str] = []
    while True:
        token = stream.next()
        if token == ")":
            break
        if token == ",":
            continue
        port_order.append(_unescape(token))
    stream.expect(";")

    # Body
    while True:
        token = stream.next()
        if token == "endmodule":
            break
        if token in ("input", "output", "inout"):
            _read_port_decl(stream, definition, token)
        elif token == "wire":
            _read_wire_decl(stream, definition)
        else:
            _read_instance(stream, definition, token, netlist, work,
                           primitive_library)


def _read_range(stream: _TokenStream) -> int:
    """Parse an optional ``[msb:lsb]`` range; return the width."""
    if stream.peek() != "[":
        return 1
    stream.expect("[")
    msb = int(stream.next())
    # tolerate "msb : lsb" split across ':' missing in token set -> numbers only
    token = stream.next()
    if token == "]":
        return msb + 1
    lsb = int(token) if token.isdigit() else 0
    while stream.peek() not in ("]", None):
        candidate = stream.next()
        if candidate.isdigit():
            lsb = int(candidate)
    stream.expect("]")
    return abs(msb - lsb) + 1


def _read_port_decl(stream: _TokenStream, definition: Definition,
                    direction_token: str) -> None:
    direction = {"input": Direction.INPUT, "output": Direction.OUTPUT,
                 "inout": Direction.INOUT}[direction_token]
    width = _read_range(stream)
    while True:
        token = stream.next()
        if token == ";":
            break
        if token == ",":
            continue
        definition.add_port(_unescape(token), direction, width)


def _read_wire_decl(stream: _TokenStream, definition: Definition) -> None:
    width = _read_range(stream)
    while True:
        token = stream.next()
        if token == ";":
            break
        if token == ",":
            continue
        base = _unescape(token)
        if width == 1:
            if base not in definition.nets:
                definition.add_net(base)
        else:
            for bit in range(width):
                bit_name = f"{base}[{bit}]"
                if bit_name not in definition.nets:
                    definition.add_net(bit_name)


def _resolve_reference(name: str, netlist: Netlist, work: Library,
                       primitive_library: Optional[Library]) -> Definition:
    if primitive_library is not None and name in primitive_library:
        return primitive_library.definitions[name]
    existing = netlist.find_definition(name)
    if existing is not None:
        return existing
    return work.add_definition(name, is_primitive=True)


def _net_for_expr(definition: Definition, expr: str) -> Net:
    """Resolve a connection expression (net name or port[bit]) to a net."""
    match = re.match(r"^(.*)\[(\d+)\]$", expr)
    base, bit = (match.group(1), int(match.group(2))) if match else (expr, 0)
    if base in definition.ports:
        port = definition.ports[base]
        pin = definition.top_pin(base, bit)
        if pin.net is None:
            net_name = expr if port.width > 1 else base
            net = definition.get_or_create_net(net_name)
            net.connect(pin)
        return pin.net
    return definition.get_or_create_net(expr)


def _read_instance(stream: _TokenStream, definition: Definition,
                   ref_token: str, netlist: Netlist, work: Library,
                   primitive_library: Optional[Library]) -> None:
    ref_name = _unescape(ref_token)
    init_value: Optional[int] = None
    if stream.peek() == "#":
        stream.expect("#")
        stream.expect("(")
        depth = 1
        params: List[str] = []
        while depth:
            token = stream.next()
            if token == "(":
                depth += 1
            elif token == ")":
                depth -= 1
                if depth == 0:
                    break
            params.append(token)
        joined = "".join(params)
        match = re.search(r"INIT\((\d+)\)", joined)
        if match:
            init_value = int(match.group(1))

    inst_name = _unescape(stream.next())
    reference = _resolve_reference(ref_name, netlist, work, primitive_library)
    instance = definition.add_instance(reference, inst_name)
    if init_value is not None:
        instance.properties["INIT"] = init_value

    stream.expect("(")
    while True:
        token = stream.next()
        if token == ")":
            break
        if token == ",":
            continue
        if token != ".":
            raise NetlistError(f"expected named connection, got {token!r}")
        port_token = _unescape(stream.next())
        port_name, index = _split_port_bit(port_token)
        stream.expect("(")
        expr_tokens: List[str] = []
        depth = 1
        while depth:
            inner = stream.next()
            if inner == "(":
                depth += 1
            elif inner == ")":
                depth -= 1
                if depth == 0:
                    break
            expr_tokens.append(inner)
        expr = "".join(_unescape(t) for t in expr_tokens)
        if reference.is_primitive and port_name not in reference.ports:
            # Infer: first connection position named O/Q/Y etc is output.
            direction = Direction.OUTPUT if port_name in ("O", "Q", "Y", "OUT") \
                else Direction.INPUT
            reference.add_port(port_name, direction, index + 1)
        elif port_name in reference.ports and \
                reference.ports[port_name].width <= index:
            reference.ports[port_name].width = index + 1
        net = _net_for_expr(definition, expr)
        instance.connect(port_name, net, index)
    stream.expect(";")


def _split_port_bit(token: str) -> Tuple[str, int]:
    match = re.match(r"^(.*)__(\d+)$", token)
    if match:
        return match.group(1), int(match.group(2))
    return token, 0
