"""SpyDrNet-style netlist intermediate representation and transformations."""

from .ir import (Definition, Direction, Instance, InstancePin, Library, Net,
                 Netlist, NetlistError, Pin, Port, TopPin, bus_nets,
                 connect_bus)
from .builder import NetlistBuilder
from .transform import (HIER_SEP, clone_definition, flatten,
                        remove_unconnected_instances, uniquify)
from .traversal import (SEQUENTIAL_CELLS, fanin_cone, fanout_cone,
                        instance_fanin_nets, instance_fanout_nets,
                        is_sequential, logic_depth, multiply_driven_nets,
                        net_driver_instances, net_sink_instances,
                        primary_input_nets, primary_output_nets,
                        topological_levels, topological_order, undriven_nets)
from .validate import ValidationIssue, ValidationReport, validate_definition, \
    validate_netlist
from .verilog import netlist_to_string, read_netlist, write_netlist

__all__ = [
    "Definition", "Direction", "Instance", "InstancePin", "Library", "Net",
    "Netlist", "NetlistError", "Pin", "Port", "TopPin", "bus_nets",
    "connect_bus", "NetlistBuilder", "HIER_SEP", "clone_definition",
    "flatten", "remove_unconnected_instances", "uniquify",
    "SEQUENTIAL_CELLS", "fanin_cone", "fanout_cone", "instance_fanin_nets",
    "instance_fanout_nets", "is_sequential", "logic_depth",
    "multiply_driven_nets", "net_driver_instances", "net_sink_instances",
    "primary_input_nets", "primary_output_nets", "topological_levels",
    "topological_order", "undriven_nets", "ValidationIssue",
    "ValidationReport", "validate_definition", "validate_netlist",
    "netlist_to_string", "read_netlist", "write_netlist",
]
