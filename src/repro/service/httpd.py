"""Dependency-free HTTP surface over the campaign service.

The server is stdlib :class:`~http.server.ThreadingHTTPServer` — every
request handler thread only touches the thread-safe queue/service
objects, never the compute.  The API is deliberately small:

=========  ======================  ==========================================
Method     Path                    Meaning
=========  ======================  ==========================================
POST       ``/jobs``               submit a job spec (JSON body); 202 with
                                   the job snapshot (+ ``coalesced`` flag);
                                   503 + ``Retry-After`` while draining
GET        ``/jobs``               all job snapshots
GET        ``/jobs/<id>``          one snapshot; ``?wait=<seconds>`` blocks
                                   until the job settles or the wait expires
                                   (clamped to ``MAX_WAIT_SECONDS``)
POST       ``/jobs/<id>/cancel``   cancel the job (pending: immediate;
                                   running: cooperative teardown)
GET        ``/jobs/<id>/report``   the ``repro.scenario-report/1`` JSON
                                   (202 while in flight, 500 when failed,
                                   409 when cancelled)
GET        ``/stats``              queue + cache-tier counters
GET        ``/healthz``            process liveness (always 200)
GET        ``/readyz``             readiness: 200 while accepting jobs,
                                   503 + ``Retry-After`` when draining
=========  ======================  ==========================================

The matching client helpers (:func:`submit_job`, :func:`fetch_job`,
:func:`fetch_report`, :func:`fetch_stats`) ride :mod:`urllib` so the
``repro submit`` CLI needs nothing outside the standard library either.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from .jobs import JobSpec, JobState
from .orchestrator import CampaignService, ServiceDraining

#: Longest server-side ``?wait=`` a single request may hold (seconds).
#: Bounding the long-poll keeps handler threads (and any intermediary's
#: idle-connection budget) finite; clients needing more re-issue the
#: request — see :func:`wait_for_job` for the canonical retry loop.
MAX_WAIT_SECONDS = 60.0

#: ``Retry-After`` hint (seconds) sent with draining 503s.
RETRY_AFTER_SECONDS = 5


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes the API above onto the server's :class:`CampaignService`."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: object) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _unavailable(self, message: str) -> None:
        """503 with ``Retry-After`` — the drain/not-ready signal."""
        body = json.dumps({"error": message}, indent=2,
                          sort_keys=True).encode()
        self.send_response(503)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Retry-After", str(RETRY_AFTER_SECONDS))
        self.end_headers()
        self.wfile.write(body)

    def _draining(self) -> bool:
        return bool(getattr(self.server, "draining", False)
                    or self.service.draining)

    def _split_path(self) -> Tuple[str, Dict[str, str]]:
        path, _, query_string = self.path.partition("?")
        query: Dict[str, str] = {}
        for pair in query_string.split("&"):
            if "=" in pair:
                key, _, value = pair.partition("=")
                query[key] = value
        return path.rstrip("/") or "/", query

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (stdlib handler casing)
        path, _query = self._split_path()
        if path.startswith("/jobs/") and path.endswith("/cancel"):
            job_id = path.split("/")[2]
            try:
                job = self.service.cancel(job_id)
            except KeyError as exc:
                return self._error(404, str(exc).strip('"'))
            return self._send_json(202, job.snapshot())
        if path != "/jobs":
            return self._error(404, f"no such endpoint: POST {path}")
        if self._draining():
            return self._unavailable(
                "service is draining; retry after restart")
        try:
            length = int(self.headers.get("Content-Length", "0"))
            data = json.loads(self.rfile.read(length) or b"{}")
            spec = JobSpec.from_dict(data)
        except (ValueError, KeyError) as exc:
            return self._error(400, str(exc))
        try:
            job, coalesced = self.service.submit_detailed(spec)
        except ServiceDraining as exc:
            return self._unavailable(str(exc))
        except KeyError as exc:  # unknown scenario
            return self._error(400, str(exc).strip('"'))
        snapshot = job.snapshot()
        snapshot["coalesced"] = coalesced
        self._send_json(202, snapshot)

    def do_GET(self) -> None:  # noqa: N802
        path, query = self._split_path()
        if path == "/healthz":
            # Liveness: the process answers, nothing more.
            return self._send_json(200, {"status": "alive"})
        if path == "/readyz":
            if self._draining():
                return self._unavailable("draining")
            return self._send_json(200, {"status": "ready"})
        if path == "/stats":
            return self._send_json(200, self.service.stats())
        if path == "/jobs":
            return self._send_json(200, {
                "jobs": [job.snapshot()
                         for job in self.service.queue.jobs()]})
        if path.startswith("/jobs/"):
            parts = path.split("/")[2:]
            try:
                job = self.service.queue.get(parts[0])
            except KeyError as exc:
                return self._error(404, str(exc).strip('"'))
            if len(parts) == 1:
                if "wait" in query:
                    try:
                        # Clamp to [0, MAX_WAIT_SECONDS]: one request
                        # never holds a handler thread longer than the
                        # bound, however large (or negative) the ask.
                        wait = max(0.0, min(float(query["wait"]),
                                            MAX_WAIT_SECONDS))
                    except ValueError:
                        return self._error(400, "wait must be a number")
                    job.wait(wait)
                return self._send_json(200, job.snapshot())
            if len(parts) == 2 and parts[1] == "report":
                if job.state == JobState.FAILED:
                    return self._error(
                        500, f"job {job.id} failed: {job.error}")
                if job.state == JobState.CANCELLED:
                    return self._error(
                        409, f"job {job.id} was cancelled: {job.error}")
                if job.report is None:
                    return self._send_json(202, job.snapshot())
                return self._send_json(200, job.report)
        return self._error(404, f"no such endpoint: GET {path}")


def make_server(service: CampaignService, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False) -> ThreadingHTTPServer:
    """Bind (but do not run) the HTTP server; ``port=0`` picks a free one."""
    server = ThreadingHTTPServer((host, port), ServiceRequestHandler)
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server


# ----------------------------------------------------------------------
# Client helpers (urllib — the CLI's transport)
# ----------------------------------------------------------------------
def _request(url: str, data: Optional[bytes] = None,
             timeout: float = 330.0) -> Dict[str, object]:
    request = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as exc:
        try:
            payload = json.loads(exc.read())
            message = payload.get("error", str(exc))
        except Exception:
            message = str(exc)
        raise RuntimeError(f"service error ({exc.code}): {message}") from None


def submit_job(base_url: str, spec: Dict[str, object]) -> Dict[str, object]:
    return _request(f"{base_url.rstrip('/')}/jobs",
                    data=json.dumps(spec).encode())


def fetch_job(base_url: str, job_id: str,
              wait: Optional[float] = None) -> Dict[str, object]:
    url = f"{base_url.rstrip('/')}/jobs/{job_id}"
    if wait is not None:
        url += f"?wait={wait}"
    return _request(url)


def fetch_report(base_url: str, job_id: str) -> Dict[str, object]:
    return _request(f"{base_url.rstrip('/')}/jobs/{job_id}/report")


def fetch_stats(base_url: str) -> Dict[str, object]:
    return _request(f"{base_url.rstrip('/')}/stats")


def cancel_job(base_url: str, job_id: str) -> Dict[str, object]:
    return _request(f"{base_url.rstrip('/')}/jobs/{job_id}/cancel",
                    data=b"{}")


def wait_for_job(base_url: str, job_id: str,
                 timeout: float = 3600.0) -> Dict[str, object]:
    """Block until the job settles; returns its snapshot.

    This is the canonical client retry loop matching the server's
    bounded long-poll: each GET holds at most ``MAX_WAIT_SECONDS`` on
    the server, and the client simply re-issues the request until the
    job leaves the in-flight states or its own *timeout* budget runs
    out.  A snapshot whose state is ``done``/``failed``/``cancelled``
    settles the wait.
    """
    deadline = time.monotonic() + timeout
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError(f"job {job_id} did not settle in {timeout}s")
        snapshot = fetch_job(base_url, job_id,
                             wait=min(remaining, MAX_WAIT_SECONDS))
        if snapshot["state"] not in JobState.IN_FLIGHT:
            return snapshot
