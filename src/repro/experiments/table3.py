"""Experiment driver for Table 3: fault-injection campaign results.

``python -m repro.experiments.table3 --scale fast`` implements the five
filter versions, runs one bitstream fault-injection campaign per version and
prints the wrong-answer percentages next to the paper's, together with the
headline improvement factor of the medium partition over plain TMR.

The driver is a thin wrapper over the ``table3-fir`` scenario of the
pipeline engine (``python -m repro run table3-fir`` is the equivalent
surface); :func:`run_table3` keeps its historical signature for callers
that pre-build the suite or the implementations.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence

from ..faults import CampaignConfig, CampaignResult, table3_report
from ..faults.engine import BackendLike
from ..pnr import Implementation
from ..pnr.artifacts import StoreLike
from .cli import experiment_parser
from .designs import DESIGN_ORDER, PAPER_TABLE3_PERCENT, DesignSuite

# Re-exported for backward compatibility (historically defined here).


def campaign_config_for(suite: DesignSuite,
                        num_faults: Optional[int] = None,
                        fault_list_mode: str = "design",
                        seed: int = 2005,
                        upset_model: str = "single",
                        prefilter: str = "none") -> CampaignConfig:
    return CampaignConfig(
        num_faults=num_faults if num_faults is not None
        else suite.scale.campaign_faults,
        workload_cycles=suite.scale.workload_cycles,
        fault_list_mode=fault_list_mode,
        seed=seed,
        upset_model=upset_model,
        prefilter=prefilter,
    )


def run_table3(suite: Optional[DesignSuite] = None,
               implementations: Optional[Dict[str, Implementation]] = None,
               scale: str = "fast", num_faults: Optional[int] = None,
               fault_list_mode: str = "design",
               progress: bool = False,
               backend: BackendLike = None,
               jobs: int = 1,
               flow_cache: StoreLike = None,
               upset_model: str = "single",
               prefilter: str = "none") -> Dict[str, CampaignResult]:
    """Run the Table 3 campaigns and return one result per design.

    *backend* selects the campaign execution backend (``"serial"``,
    ``"batch"``, ``"process"``, the bit-parallel ``"vector"`` or the
    numpy-compiled ``"numpy"``); every
    backend yields identical results.  *upset_model* selects how many bits
    one injection flips (``"single"``, ``"mbu[:k]"``, ``"accumulate[:k]"``
    — see :mod:`repro.faults.upsets`).  *prefilter* (``"static"``) lets
    the layout analyzer skip provably-silent bits; *jobs* and
    *flow_cache* speed up the implementation step (parallel
    place-and-route, persistent flow artifacts).  None of these knobs
    changes any campaign number.
    """
    from ..pipeline import PipelineContext, pipeline_for

    ctx = PipelineContext(
        scenario_id="table3-fir",
        scale=scale,
        designs=DESIGN_ORDER,
        backend=backend if backend is not None else "serial",
        upset_model=upset_model,
        fault_list_mode=fault_list_mode,
        num_faults=num_faults,
        prefilter=prefilter,
        jobs=jobs,
        flow_cache=flow_cache,
        progress=progress,
    )
    ctx.suite = suite
    ctx.implementations = implementations
    if implementations is not None:
        ctx.designs = [name for name in DESIGN_ORDER
                       if name in implementations]
    pipeline_for(("build", "implement", "campaign")).run(ctx)
    return ctx.campaigns


def summarize(results: Dict[str, CampaignResult]) -> Dict[str, object]:
    """Headline quantities derived from the campaigns."""
    from ..pipeline import table3_summary

    return table3_summary(results)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = experiment_parser(__doc__, faults=True, upset_model=True,
                               prefilter=True)
    parser.add_argument("--fault-list", default="design",
                        choices=("design", "extended", "programmed"),
                        help="fault-list selection mode")
    arguments = parser.parse_args(argv)

    if arguments.json:
        # Machine-readable runs emit the pipeline reporter's uniform
        # schema (scenario id, seed, backend, upset model, tool versions)
        # instead of the historical ad-hoc payload.  The stable variant
        # (timings and cache counters scrubbed) keeps the output
        # byte-reproducible across processes; ``python -m repro run``
        # emits the raw report when those counters are wanted.
        from ..pipeline import stable_report
        from ..scenarios import run_scenario

        report = run_scenario(
            "table3-fir", scale=arguments.scale,
            backend=arguments.backend, upset_model=arguments.upset_model,
            num_faults=arguments.faults,
            prefilter=arguments.prefilter,
            fault_list_mode=arguments.fault_list,
            jobs=arguments.jobs, flow_cache=arguments.flow_cache,
            progress=True)
        print(json.dumps(stable_report(report), indent=2, default=str,
                         sort_keys=True))
        return 0

    results = run_table3(scale=arguments.scale, num_faults=arguments.faults,
                         fault_list_mode=arguments.fault_list, progress=True,
                         backend=arguments.backend, jobs=arguments.jobs,
                         flow_cache=arguments.flow_cache,
                         upset_model=arguments.upset_model,
                         prefilter=arguments.prefilter)
    print(table3_report(results, order=[n for n in DESIGN_ORDER
                                        if n in results],
                        paper_reference=PAPER_TABLE3_PERCENT))
    derived = summarize(results)
    if "improvement_p1_to_p2" in derived:
        print(f"\nImprovement TMR_p1 -> TMR_p2: "
              f"{derived['improvement_p1_to_p2']}x "
              f"(paper: ~4.1x)")
    if "best_tmr_partition" in derived:
        print(f"Best TMR partition: {derived['best_tmr_partition']} "
              f"(paper: TMR_p2)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
