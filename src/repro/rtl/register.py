"""Register bank components (the sequential building blocks of the filter)."""

from __future__ import annotations

from typing import Optional

from ..cells.library import shared_cell_library
from ..netlist.builder import NetlistBuilder
from ..netlist.ir import Definition, Library, Netlist, NetlistError


def register_bank(netlist: Netlist, width: int, name: Optional[str] = None,
                  with_enable: bool = False, with_reset: bool = False,
                  cell_library: Optional[Library] = None) -> Definition:
    """Build a *width*-bit register component.

    Ports: ``C`` (clock), ``D[width]``, ``Q[width]`` plus optional ``CE`` and
    ``R`` (synchronous reset).  The flip-flop primitive used depends on the
    options: ``FD``, ``FDR`` or ``FDRE``.
    """
    if width < 1:
        raise NetlistError("register width must be >= 1")
    if name is None:
        suffix = ""
        if with_enable:
            suffix += "e"
        if with_reset:
            suffix += "r"
        name = f"reg{width}{suffix}"
    existing = netlist.find_definition(name)
    if existing is not None:
        return existing

    cells = cell_library if cell_library is not None else shared_cell_library()
    builder = NetlistBuilder.new_module(netlist, name, "components", cells)
    clock = builder.input("C", 1)[0]
    data = builder.input("D", width)
    enable = builder.input("CE", 1)[0] if with_enable else None
    reset = builder.input("R", 1)[0] if with_reset else None
    output = builder.output("Q", width)

    if with_enable:
        cell_name = "FDRE" if with_reset else "FDRE"
    else:
        cell_name = "FDR" if with_reset else "FD"

    for bit in range(width):
        connections = {"C": clock, "D": data[bit], "Q": output[bit]}
        if with_enable:
            connections["CE"] = enable
            connections["R"] = reset if with_reset else builder.ground()
        elif with_reset:
            connections["R"] = reset
        builder.instantiate(cell_name, f"ff_{bit}", **connections)
    return builder.finish()


def shift_register(netlist: Netlist, width: int, depth: int,
                   name: Optional[str] = None,
                   cell_library: Optional[Library] = None) -> Definition:
    """Build a *depth*-stage, *width*-bit shift register as one component.

    Ports: ``C``, ``D[width]`` and one output bus per stage ``Q1..Qdepth``.
    The FIR delay line uses individual :func:`register_bank` components so
    that voter insertion can target each stage; this fused variant exists for
    designs that do not need per-stage access.
    """
    if depth < 1:
        raise NetlistError("shift register depth must be >= 1")
    if name is None:
        name = f"shiftreg{width}x{depth}"
    existing = netlist.find_definition(name)
    if existing is not None:
        return existing

    cells = cell_library if cell_library is not None else shared_cell_library()
    builder = NetlistBuilder.new_module(netlist, name, "components", cells)
    clock = builder.input("C", 1)[0]
    data = builder.input("D", width)
    stage_inputs = data
    for stage in range(1, depth + 1):
        outputs = builder.output(f"Q{stage}", width)
        for bit in range(width):
            builder.instantiate("FD", f"ff_s{stage}_{bit}", C=clock,
                                D=stage_inputs[bit], Q=outputs[bit])
        stage_inputs = outputs
    return builder.finish()
