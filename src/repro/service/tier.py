"""Shared warm-cache tier: one persistent store for every campaign artefact.

PR 3 made place-and-route artifacts persistent
(:class:`~repro.pnr.artifacts.FlowArtifactStore`); golden traces and
static defeat maps stayed memoized *in process only*
(:mod:`repro.faults.cache` / :mod:`repro.analysis.layout`), so every new
process — every service worker, every CI job, every benchmark — rebuilt
them from scratch.  This module unifies all three under one directory:

.. code-block:: text

    <root>/flow/...                 place-and-route implementations
    <root>/golden/<aa>/<key>.pkl    golden traces (+ overlay-free program)
    <root>/defeat-map/<aa>/<key>.pkl  static defeat maps
    <root>/fault-list/<aa>/<key>.pkl  enumerated injectable-bit lists

* :class:`PersistentStore` — namespaced pickle store with atomic writes
  (temp file + ``os.replace``), version-checked payloads, and corrupt
  entries evicted as misses — the same durability contract as the flow
  store.
* :class:`SharedCacheTier` — the facade the service (and, through the
  process-wide *active tier*, the campaign cache and the layout
  analyzer) reads and writes.  Size-bounded LRU eviction runs over the
  whole tier: every ``.pkl`` under the root counts against ``max_bytes``
  and the least-recently-*used* files go first (reads refresh mtimes).

Artefact keys chain on the implementation fingerprint
(:func:`repro.faults.cache.implementation_fingerprint`), so two
campaigns over bit-identical implementations share entries while any
bitstream change forms new ones.  Identity of the simulated *content*
is therefore exact; the stores never serve a stale artefact.

The **active tier** is an explicit, process-wide hook: the campaign
cache and ``defeat_map_for`` consult :func:`active_tier` on an
in-memory miss and write through on a compute.  It is off by default
(plain library use keeps the PR 1-6 behaviour bit for bit); the service
activates it, and ``REPRO_CACHE_TIER=<dir>`` activates it for ad-hoc
CLI runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..pnr.artifacts import FlowArtifactStore
from . import chaos

#: Bump when a persisted payload's layout changes; old entries then miss
#: instead of resurrecting incompatible pickles.
TIER_VERSION = "tier-1"

#: Default eviction budget: generous for laptops, bounded for CI caches.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

#: Namespaces managed by the tier (also the subdirectory names).
GOLDEN_NAMESPACE = "golden"
DEFEAT_MAP_NAMESPACE = "defeat-map"
FAULT_LIST_NAMESPACE = "fault-list"
FLOW_NAMESPACE = "flow"
SHARD_NAMESPACE = "shard-verdicts"

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


@dataclasses.dataclass
class TierStats:
    """Hit/miss/store counters of one :class:`SharedCacheTier`."""

    golden_hits: int = 0
    golden_misses: int = 0
    golden_stores: int = 0
    defeat_map_hits: int = 0
    defeat_map_misses: int = 0
    defeat_map_stores: int = 0
    fault_list_hits: int = 0
    fault_list_misses: int = 0
    fault_list_stores: int = 0
    shard_hits: int = 0
    shard_misses: int = 0
    shard_stores: int = 0
    corrupt_evictions: int = 0
    lru_evictions: int = 0
    bytes_evicted: int = 0
    store_failures: int = 0
    orphan_tmp_removed: int = 0

    def __post_init__(self) -> None:
        # Counters are bumped from concurrent service jobs; a bare
        # ``+= 1`` is a read-modify-write that loses updates under
        # threads.  The lock is a plain attribute (not a field), so
        # ``dataclasses.asdict`` never tries to copy it.
        self.lock = threading.Lock()

    def bump(self, counter: str, amount: int = 1) -> None:
        with self.lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def as_dict(self) -> Dict[str, int]:
        with self.lock:
            return dataclasses.asdict(self)

    def hit_rate(self) -> float:
        """Aggregate artefact hit rate (flow-store hits tracked separately).

        Shard-checkpoint counters are deliberately excluded: checkpoints
        only hit when a campaign *resumes* after a crash, so counting
        their routine cold misses would dilute the warm-cache rate the
        service benchmarks gate on.
        """
        hits = self.golden_hits + self.defeat_map_hits \
            + self.fault_list_hits
        total = hits + self.golden_misses + self.defeat_map_misses \
            + self.fault_list_misses
        return hits / total if total else 0.0


class PersistentStore:
    """Namespaced on-disk pickle store with the flow store's durability.

    Payloads travel inside a ``{"version", "namespace", "key", "payload"}``
    envelope; version or key mismatches (a foreign or renamed file) and
    unpicklable garbage are evicted and treated as misses, so an
    interrupted writer can never poison later readers.  Writes are atomic
    (temp file in the target directory + ``os.replace``).
    """

    def __init__(self, root: Union[str, Path],
                 stats: Optional[TierStats] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = stats if stats is not None else TierStats()

    def path_of(self, namespace: str, key: str) -> Path:
        return self.root / namespace / key[:2] / f"{key}.pkl"

    def load(self, namespace: str, key: str) -> Optional[object]:
        path = self.path_of(namespace, key)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            self._evict(path)
            return None
        if not isinstance(envelope, dict) \
                or envelope.get("version") != TIER_VERSION \
                or envelope.get("namespace") != namespace \
                or envelope.get("key") != key:
            self._evict(path)
            return None
        try:
            # Refresh recency so LRU eviction spares warm entries.
            os.utime(path)
        except OSError:
            pass
        return envelope["payload"]

    def store(self, namespace: str, key: str, payload: object) -> bool:
        path = self.path_of(namespace, key)
        envelope = {
            "version": TIER_VERSION,
            "namespace": namespace,
            "key": key,
            "payload": payload,
        }
        try:
            chaos.before_tier_write(namespace)
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp",
                delete=False)
            try:
                with handle:
                    pickle.dump(envelope, handle, protocol=_PICKLE_PROTOCOL)
                os.replace(handle.name, path)
            except BaseException:
                os.unlink(handle.name)
                raise
        except Exception:
            # A read-only or full disk must never fail the computation
            # the artefact came from; it is merely not persisted.
            self.stats.bump("store_failures")
            return False
        chaos.after_tier_write(namespace, path)
        return True

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
            self.stats.bump("corrupt_evictions")
        except OSError:
            pass


def _stimulus_digest(stimulus_key: Tuple) -> str:
    """Stable digest of a :func:`repro.faults.cache.stimulus_key` tuple.

    The key is built from sorted (name, int/tuple-of-int) pairs, whose
    ``repr`` is deterministic across processes and hash seeds.
    """
    return hashlib.sha1(repr(stimulus_key).encode()).hexdigest()


class SharedCacheTier:
    """The unified persistent artefact tier of the campaign service."""

    def __init__(self, root: Union[str, Path],
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.stats = TierStats()
        self._store = PersistentStore(self.root, stats=self.stats)
        self._flow: Optional[FlowArtifactStore] = None
        #: serializes eviction scans (reads/writes need no lock: atomic
        #: replace + corrupt-entry eviction already tolerate races)
        self._evict_lock = threading.Lock()
        self._sweep_orphan_tmp()

    def _sweep_orphan_tmp(self) -> int:
        """Remove ``*.tmp`` files left behind by crashed writers.

        Atomic stores stage through a temp file and ``os.replace``; a
        writer killed between the two leaves the temp file orphaned
        forever (it is never read — only ``.pkl`` entries are).  Startup
        is the safe moment to sweep them: a *live* concurrent writer's
        temp file exists only for the milliseconds between create and
        replace, and losing that race merely costs the writer one
        ``store_failures``-counted retry-less store — never the
        computation, never a corrupt entry.
        """
        removed = 0
        for path in sorted(self.root.glob("**/*.tmp")):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        if removed:
            self.stats.bump("orphan_tmp_removed", removed)
        return removed

    # ------------------------------------------------------------------
    @property
    def flow_store(self) -> FlowArtifactStore:
        """The place-and-route artifact store living inside this tier."""
        if self._flow is None:
            self._flow = FlowArtifactStore(self.root / FLOW_NAMESPACE)
        return self._flow

    # ------------------------------------------------------------------
    def golden_key(self, fingerprint: str, stimulus_key: Tuple) -> str:
        return f"{fingerprint}-{_stimulus_digest(stimulus_key)}"

    def load_golden(self, fingerprint: str, stimulus_key: Tuple
                    ) -> Optional[Tuple[object, object]]:
        """The persisted ``(golden trace, overlay-free program)`` pair."""
        payload = self._store.load(
            GOLDEN_NAMESPACE, self.golden_key(fingerprint, stimulus_key))
        if payload is None:
            self.stats.bump("golden_misses")
            return None
        self.stats.bump("golden_hits")
        return payload

    def store_golden(self, fingerprint: str, stimulus_key: Tuple,
                     trace: object, program: object) -> bool:
        ok = self._store.store(
            GOLDEN_NAMESPACE, self.golden_key(fingerprint, stimulus_key),
            (trace, program))
        if ok:
            self.stats.bump("golden_stores")
            self.enforce_budget()
        return ok

    # ------------------------------------------------------------------
    def defeat_map_key(self, fingerprint: str, mode: str) -> str:
        return f"{fingerprint}-{mode}"

    def load_defeat_map(self, fingerprint: str, mode: str):
        payload = self._store.load(DEFEAT_MAP_NAMESPACE,
                                   self.defeat_map_key(fingerprint, mode))
        if payload is None:
            self.stats.bump("defeat_map_misses")
            return None
        self.stats.bump("defeat_map_hits")
        return payload

    def store_defeat_map(self, fingerprint: str, mode: str,
                         defeat_map: object) -> bool:
        ok = self._store.store(DEFEAT_MAP_NAMESPACE,
                               self.defeat_map_key(fingerprint, mode),
                               defeat_map)
        if ok:
            self.stats.bump("defeat_map_stores")
            self.enforce_budget()
        return ok

    # ------------------------------------------------------------------
    def fault_list_key(self, fingerprint: str, mode: str) -> str:
        return f"{fingerprint}-{mode}"

    def load_fault_list(self, fingerprint: str, mode: str):
        """The persisted enumerated fault list (injectable bits) of a design.

        Enumerating the injectable configuration bits walks every used
        routing node's candidate PIPs — by far the largest
        fault-count-independent cost of a warm campaign — yet the result
        is pure data fully determined by ``(fingerprint, mode)``.
        """
        payload = self._store.load(FAULT_LIST_NAMESPACE,
                                   self.fault_list_key(fingerprint, mode))
        if payload is None:
            self.stats.bump("fault_list_misses")
            return None
        self.stats.bump("fault_list_hits")
        return payload

    def store_fault_list(self, fingerprint: str, mode: str,
                         fault_list: object) -> bool:
        ok = self._store.store(FAULT_LIST_NAMESPACE,
                               self.fault_list_key(fingerprint, mode),
                               fault_list)
        if ok:
            self.stats.bump("fault_list_stores")
            self.enforce_budget()
        return ok

    # ------------------------------------------------------------------
    def load_shard_verdicts(self, key: str) -> Optional[object]:
        """A persisted shard checkpoint (completed shard's verdicts).

        Keys are built by the sharded backend from the campaign's
        content digest plus the shard schedule position, so a checkpoint
        can only ever resume the exact task slice it was computed from.
        """
        payload = self._store.load(SHARD_NAMESPACE, key)
        if payload is None:
            self.stats.bump("shard_misses")
            return None
        self.stats.bump("shard_hits")
        return payload

    def store_shard_verdicts(self, key: str, payload: object) -> bool:
        ok = self._store.store(SHARD_NAMESPACE, key, payload)
        if ok:
            self.stats.bump("shard_stores")
            self.enforce_budget()
        return ok

    # ------------------------------------------------------------------
    def _entries(self) -> Iterable[Tuple[Path, os.stat_result]]:
        for path in self.root.glob("**/*.pkl"):
            try:
                yield path, path.stat()
            except OSError:
                continue

    def total_bytes(self) -> int:
        return sum(stat.st_size for _path, stat in self._entries())

    def enforce_budget(self) -> int:
        """Evict least-recently-used entries down to ``max_bytes``.

        Covers every namespace including the flow store (its entries are
        content-addressed, so deletion is always safe — a later reader
        simply recomputes).  Returns the number of evicted files.
        """
        with self._evict_lock:
            entries: List[Tuple[float, int, Path]] = [
                (stat.st_mtime, stat.st_size, path)
                for path, stat in self._entries()]
            total = sum(size for _mtime, size, _path in entries)
            if total <= self.max_bytes:
                return 0
            evicted = 0
            for _mtime, size, path in sorted(entries):
                if total <= self.max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                evicted += 1
                self.stats.bump("lru_evictions")
                self.stats.bump("bytes_evicted", size)
            return evicted

    def clear(self) -> None:
        for path, _stat in list(self._entries()):
            try:
                path.unlink()
            except OSError:
                pass

    def summary(self) -> Dict[str, object]:
        return {
            "root": str(self.root),
            "max_bytes": self.max_bytes,
            "total_bytes": self.total_bytes(),
            "hit_rate": round(self.stats.hit_rate(), 4),
            "stats": self.stats.as_dict(),
            "flow": self.flow_store.stats.as_dict(),
        }


# ----------------------------------------------------------------------
# Process-wide active tier
# ----------------------------------------------------------------------
TierLike = Union[None, str, Path, SharedCacheTier]

_ACTIVE_TIER: Optional[SharedCacheTier] = None
_ENV_CHECKED = False

#: Environment knob: point it at a directory to activate a shared tier
#: for plain CLI/benchmark runs without touching any call site.
TIER_ENV_VAR = "REPRO_CACHE_TIER"


def resolve_tier(tier: TierLike) -> Optional[SharedCacheTier]:
    """Normalize a ``cache_tier=`` knob (``None`` stays ``None``)."""
    if tier is None:
        return None
    if isinstance(tier, SharedCacheTier):
        return tier
    return SharedCacheTier(tier)


def activate_tier(tier: TierLike) -> Optional[SharedCacheTier]:
    """Install *tier* as the process-wide read-through/write-through tier."""
    global _ACTIVE_TIER, _ENV_CHECKED
    _ACTIVE_TIER = resolve_tier(tier)
    _ENV_CHECKED = True
    return _ACTIVE_TIER


def deactivate_tier() -> None:
    """Remove the active tier (also disables the env-var fallback probe)."""
    activate_tier(None)


def active_tier() -> Optional[SharedCacheTier]:
    """The process-wide tier, if one was activated (or set via env)."""
    global _ACTIVE_TIER, _ENV_CHECKED
    if _ACTIVE_TIER is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        root = os.environ.get(TIER_ENV_VAR)
        if root:
            _ACTIVE_TIER = SharedCacheTier(root)
    return _ACTIVE_TIER
