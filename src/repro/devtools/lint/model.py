"""Core data model of the invariant analyzer: rules, findings, config.

A *rule* is a named invariant class (``D101`` — unsorted filesystem
iteration); a *finding* is one concrete violation at ``file:line``.
Findings are plain frozen dataclasses so the whole report is trivially
JSON-serializable and order-stable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

#: Rule families, in report order.
FAMILIES = {
    "D": "determinism",
    "C": "concurrency",
    "A": "atomicity",
    "P": "picklability/api",
    "W": "waiver hygiene",
}


@dataclasses.dataclass(frozen=True, slots=True)
class Rule:
    """One invariant class the analyzer enforces."""

    id: str
    title: str
    rationale: str
    hint: str

    @property
    def family(self) -> str:
        return FAMILIES.get(self.id[0], "other")


@dataclasses.dataclass(frozen=True, slots=True)
class Finding:
    """One violation: rule + location + enough context to waive it."""

    rule: str
    path: str
    line: int
    col: int
    #: dotted qualname of the enclosing class/function ("<module>" at
    #: module level) — the unit a waiver pins to
    scope: str
    message: str
    hint: str = ""

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


RULES: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    RULES[rule.id] = rule
    return rule


register(Rule(
    "D101", "unsorted filesystem iteration",
    "os.listdir/glob/iterdir order is filesystem-dependent; any result "
    "that flows into a fingerprint, report, shard schedule or pickled "
    "artifact must be sorted",
    "wrap the call in sorted(...), or waive with a justification that "
    "every consumer is order-free"))
register(Rule(
    "D102", "ordered sequence built from unordered set iteration",
    "iterating a set/frozenset into a list, tuple or generator bakes "
    "PYTHONHASHSEED-dependent order into the result",
    "iterate sorted(<set>) instead"))
register(Rule(
    "D103", "builtin hash() in result-producing code",
    "hash() of str/bytes is salted per process (PYTHONHASHSEED); "
    "fingerprints and schedules derived from it are not reproducible",
    "use hashlib (see repro.faults.seeds.derive_seed) instead"))
register(Rule(
    "D104", "wall-clock read in a result-producing module",
    "time.time()/datetime.now() values differ per run; outside "
    "documented timing/provenance fields they break bit-identity",
    "use time.monotonic() for intervals, or waive naming the documented "
    "provenance field the value feeds"))
register(Rule(
    "D105", "module-global random stream",
    "the global random module is shared, seedable by anyone, and "
    "PYTHONHASHSEED-adjacent; campaigns must draw from the documented "
    "substream contract",
    "use repro.faults.seeds.substream(...) or a local random.Random(seed)"))
register(Rule(
    "C201", "unlocked mutation in a lock-owning class",
    "the class guards state with a lock, but this read-modify-write "
    "(+=, .append, ...) runs outside any 'with <lock>:' block — the "
    "exact lost-update class of the PR-7 TierStats.bump bug",
    "wrap the mutation in 'with self.<lock>:' or move it into a locked "
    "method"))
register(Rule(
    "C202", "blocking call inside 'async def'",
    "time.sleep/fsync/subprocess block the event loop; the orchestrator "
    "loop must only sequence jobs, never wait on them",
    "use await asyncio.sleep(...) or asyncio.to_thread(...)"))
register(Rule(
    "C203", "unlocked shared-state mutation in a service-shared module",
    "this module's objects are shared between the asyncio orchestrator, "
    "its daemon thread and worker callbacks; a bare += or .append is a "
    "read-modify-write that loses updates under threads",
    "guard the attribute with a lock (see TierStats.bump) or prove the "
    "object is confined to one thread in a waiver"))
register(Rule(
    "A301", "raw writable open() bypassing the atomic-write helpers",
    "a plain open(..., 'w') under the tier/journal roots can be torn by "
    "a crash; durable artefacts must stage through temp-file + fsync + "
    "os.replace",
    "use the atomic store helpers (PersistentStore.store / "
    "FlowArtifactStore.store pattern), or waive citing the documented "
    "durability contract"))
register(Rule(
    "A302", "raw pickle.dump outside the atomic-write pattern",
    "pickling straight into a final path leaves a corrupt entry when "
    "interrupted; readers then depend on eviction heuristics",
    "dump into a NamedTemporaryFile and os.replace into place"))
register(Rule(
    "P401", "backend payload type is not a frozen/slots dataclass",
    "task/verdict payloads cross process boundaries; frozen+slots "
    "guarantees picklability, immutability in flight and a stable "
    "attribute set",
    "declare the class @dataclasses.dataclass(frozen=True, slots=True)"))
register(Rule(
    "P402", "lazy-export drift in repro/__init__",
    "_PUBLIC_API names a module attribute that does not exist; the "
    "import error only surfaces on first attribute access",
    "fix the (module, attribute) entry or remove the export"))
register(Rule(
    "W001", "unused waiver",
    "the baseline waives a finding the analyzer no longer emits; stale "
    "waivers hide regressions",
    "delete the waiver from lint-baseline.toml"))
register(Rule(
    "W002", "waiver without a justification",
    "every intentional exception must say why it is safe",
    "add a non-empty justification string"))


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Repository-specific knobs of the analyzer.

    The defaults encode *this* repo's invariants; the test corpus
    constructs variants pointing at fixture trees.
    """

    #: path fragments marking modules whose objects are shared between
    #: the orchestrator loop, its daemon thread and worker callbacks
    #: (the C203 scope)
    shared_path_markers: Tuple[str, ...] = (
        "repro/service/",
        "repro/pnr/artifacts.py",
        "repro/faults/cache.py",
    )
    #: path suffix -> class names that must be frozen+slots dataclasses
    #: (the P401 scope: payloads pickled across process boundaries)
    payload_classes: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
        ("repro/faults/engine.py", ("FaultTask", "FaultVerdict")),
        ("repro/faults/injector.py", ("FaultResult",)),
    )
    #: path suffix of the lazy-export module checked by P402
    public_api_module: str = "repro/__init__.py"
    #: rule ids to skip entirely
    disabled: Tuple[str, ...] = ()

    def is_shared_module(self, posix_path: str) -> bool:
        return any(marker in posix_path
                   for marker in self.shared_path_markers)

    def payload_classes_for(self, posix_path: str) -> Tuple[str, ...]:
        for suffix, names in self.payload_classes:
            if posix_path.endswith(suffix):
                return names
        return ()

    def enabled(self, rule_id: str) -> bool:
        return rule_id not in self.disabled
