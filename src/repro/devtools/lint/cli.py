"""Command line front end: ``python -m repro.devtools.lint src/``.

Exit status 0 means the tree is clean modulo the checked-in baseline;
1 means unwaived findings (or parse errors, or waiver-hygiene
violations) exist.  The report goes to stdout — text for humans,
``--format json`` for the CI regression gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import BaselineError
from .model import LintConfig
from .runner import render_json, render_rules, render_text, run_lint

_DEFAULT_BASELINE = "lint-baseline.toml"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="AST-based invariant analyzer: determinism, "
                    "concurrency, atomicity, picklability.")
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)")
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"waiver file (default: ./{_DEFAULT_BASELINE} if present)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any waiver file; report everything")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--disable", action="append", default=[], metavar="RULE",
        help="skip a rule id entirely (repeatable)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.list_rules:
        print(render_rules())
        return 0

    baseline: Optional[Path] = None
    if not arguments.no_baseline:
        baseline = arguments.baseline
        if baseline is None:
            candidate = Path(_DEFAULT_BASELINE)
            if candidate.is_file():
                baseline = candidate
        elif not baseline.is_file():
            print(f"error: baseline {baseline} does not exist",
                  file=sys.stderr)
            return 2

    paths: List[Path] = [Path(path) for path in arguments.paths]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2

    config = LintConfig(disabled=tuple(arguments.disable))
    try:
        report = run_lint(paths, config=config, baseline=baseline)
    except BaselineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if arguments.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code


__all__ = ["build_parser", "main"]
