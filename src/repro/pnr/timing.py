"""Static timing estimation.

The estimator walks the combinational levels of the compiled design, adding a
LUT propagation delay per gate and a placement-derived net delay per
connection, and reports the critical register-to-register (or pad-to-pad)
path as an estimated maximum clock frequency — the "Estimated Performance"
column of the paper's Table 2.  Absolute numbers are calibrated loosely to a
Spartan-IIE speed grade; the quantity of interest is the *relative* cost of
the voter barriers each TMR partition inserts into the datapath.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..cells.library import FF_CELLS, LUT_CELLS
from ..netlist.ir import Definition, InstancePin
from ..netlist.traversal import topological_levels
from .pack import VIRTUAL_CELLS
from .place import Placement

#: LUT propagation delay (ns).
LUT_DELAY_NS = 0.7
#: Flip-flop clock-to-out plus setup budget (ns).
FF_CLK_TO_Q_NS = 1.0
FF_SETUP_NS = 0.6
#: Net delay model: fixed PIP/driver delay plus per-tile-of-distance delay.
NET_BASE_DELAY_NS = 0.4
NET_PER_TILE_NS = 0.18
#: I/O buffer delays.
PAD_IN_DELAY_NS = 0.9
PAD_OUT_DELAY_NS = 2.2


@dataclasses.dataclass
class TimingReport:
    """Result of the timing estimate."""

    critical_path_ns: float
    fmax_mhz: float
    critical_cell: Optional[str]
    logic_levels: int

    def __str__(self) -> str:
        return (f"critical path {self.critical_path_ns:.2f} ns "
                f"({self.fmax_mhz:.0f} MHz), {self.logic_levels} levels, "
                f"ending at {self.critical_cell}")


def _net_delay(definition: Definition, placement: Optional[Placement],
               driver_cell: Optional[str], sink_cell: Optional[str]) -> float:
    if placement is None or driver_cell is None or sink_cell is None:
        return NET_BASE_DELAY_NS
    try:
        source = placement.cell_tiles[driver_cell]
        target = placement.cell_tiles[sink_cell]
    except KeyError:
        return NET_BASE_DELAY_NS
    distance = abs(source[0] - target[0]) + abs(source[1] - target[1])
    return NET_BASE_DELAY_NS + NET_PER_TILE_NS * distance


def estimate_timing(definition: Definition,
                    placement: Optional[Placement] = None) -> TimingReport:
    """Estimate the critical path of a flat design.

    Arrival times propagate through the levelized combinational network;
    flip-flop outputs and primary inputs start paths, flip-flop inputs and
    primary outputs end them.
    """
    arrival: Dict[str, float] = {}   # net name -> arrival time (ns)
    critical = 0.0
    critical_cell: Optional[str] = None

    # Primary inputs arrive after the input pad delay.
    for port in definition.input_ports():
        for bit in port.bits():
            pin = definition.top_pin(port.name, bit)
            if pin.net is not None:
                arrival[pin.net.name] = PAD_IN_DELAY_NS

    levels = topological_levels(definition)
    logic_levels = 0
    for level in levels:
        level_has_luts = False
        for instance in level:
            cell_type = instance.reference.name
            if cell_type in FF_CELLS:
                # Path end: D arrival + setup; path start: Q at clk-to-out.
                d_net = instance.net_of("D")
                if d_net is not None and d_net.name in arrival:
                    d_arrival = arrival[d_net.name] + _net_delay(
                        definition, placement,
                        _driver_cell_of(d_net), instance.name) + FF_SETUP_NS
                    if d_arrival > critical:
                        critical = d_arrival
                        critical_cell = instance.name
                q_net = instance.net_of("Q")
                if q_net is not None:
                    arrival[q_net.name] = FF_CLK_TO_Q_NS
                continue
            if cell_type in ("GND", "VCC"):
                out = instance.net_of("G") or instance.net_of("P")
                if out is not None:
                    arrival[out.name] = 0.0
                continue
            if cell_type in VIRTUAL_CELLS:
                out = instance.net_of("O")
                if out is not None:
                    arrival[out.name] = max(
                        (arrival.get(n.name, 0.0)
                         for n in _input_nets(instance)), default=0.0)
                continue
            if cell_type in LUT_CELLS:
                level_has_luts = True
                worst = 0.0
                for net in _input_nets(instance):
                    incoming = arrival.get(net.name, 0.0) + _net_delay(
                        definition, placement, _driver_cell_of(net),
                        instance.name)
                    worst = max(worst, incoming)
                out = instance.net_of("O")
                if out is not None:
                    arrival[out.name] = worst + LUT_DELAY_NS
                continue
        if level_has_luts:
            logic_levels += 1

    # Primary outputs end paths through the output pad.
    for port in definition.output_ports():
        for bit in port.bits():
            pin = definition.top_pin(port.name, bit)
            if pin.net is None or pin.net.name not in arrival:
                continue
            total = arrival[pin.net.name] + PAD_OUT_DELAY_NS
            if total > critical:
                critical = total
                critical_cell = f"{port.name}[{bit}]"

    critical = max(critical, FF_CLK_TO_Q_NS + FF_SETUP_NS)
    return TimingReport(
        critical_path_ns=critical,
        fmax_mhz=1000.0 / critical,
        critical_cell=critical_cell,
        logic_levels=logic_levels,
    )


def _input_nets(instance) -> List:
    nets = []
    for pin in instance.pins():
        if not pin.is_driver and pin.net is not None:
            nets.append(pin.net)
    return nets


def _driver_cell_of(net) -> Optional[str]:
    for pin in net.drivers():
        if isinstance(pin, InstancePin):
            return pin.instance.name
    return None
