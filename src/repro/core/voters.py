"""Majority voter construction.

A TMR majority voter is a three-input majority function; on the target
fabric it fits in a single LUT ("one majority voter can be implemented by one
LUT", Section 2 of the paper).  Because that LUT is itself susceptible to
upsets, intermediate voters are triplicated — one voter per redundant domain
— so a corrupted voter only corrupts the domain it feeds.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cells.library import Library, shared_cell_library
from ..cells.lut import INIT_VOTER
from ..netlist.builder import NetlistBuilder
from ..netlist.ir import Definition, Instance, Net, Netlist, NetlistError

#: Property key marking voter instances in generated netlists.
VOTER_PROPERTY = "voter"
#: Property key recording which original (pre-TMR) net a voter votes.
VOTED_NET_PROPERTY = "voted_net"
#: Property key recording the TMR domain an instance belongs to.
DOMAIN_PROPERTY = "domain"


def insert_majority_voter(definition: Definition, inputs: Sequence[Net],
                          output: Net, cell_library: Optional[Library] = None,
                          name: Optional[str] = None,
                          domain: Optional[int] = None,
                          voted_net: Optional[str] = None,
                          role: str = "voter") -> Instance:
    """Insert a single majority-voter LUT into *definition*.

    *inputs* must be the three redundant versions of one signal (order
    irrelevant); *output* receives the voted value.
    """
    if len(inputs) != 3:
        raise NetlistError(f"majority voter needs 3 inputs, got {len(inputs)}")
    cells = cell_library if cell_library is not None else shared_cell_library()
    lut3 = cells.definitions["LUT3"]
    voter_name = name if name is not None else \
        definition.make_unique_name("voter")
    voter = definition.add_instance(lut3, voter_name)
    voter.properties["INIT"] = INIT_VOTER
    voter.properties[VOTER_PROPERTY] = role
    if domain is not None:
        voter.properties[DOMAIN_PROPERTY] = domain
    if voted_net is not None:
        voter.properties[VOTED_NET_PROPERTY] = voted_net
    for position, net in enumerate(inputs):
        voter.connect(f"I{position}", net, 0)
    voter.connect("O", output, 0)
    return voter


def is_voter(instance: Instance) -> bool:
    """True when *instance* is a voter inserted by the TMR engine."""
    return VOTER_PROPERTY in instance.properties


def voter_instances(definition: Definition) -> List[Instance]:
    """All voter instances in a definition (non-recursive)."""
    return [inst for inst in definition.instances.values() if is_voter(inst)]


def count_voters(definition: Definition) -> int:
    return len(voter_instances(definition))


def build_voted_register(netlist: Netlist, width: int,
                         name: Optional[str] = None,
                         cell_library: Optional[Library] = None) -> Definition:
    """Build the paper's Figure 2 macro: a TMR register with voters.

    The macro holds, per bit, three flip-flops (one per domain, each on its
    own clock) whose outputs are voted by three majority voters; each
    domain's downstream logic reads its own voter output, so a flip-flop
    upset is out-voted immediately and the register "refreshes" to the
    correct value at the next clock edge.

    Ports::

        D_tr0/D_tr1/D_tr2[width]  - per-domain data inputs
        C_tr0/C_tr1/C_tr2         - per-domain clocks
        Q_tr0/Q_tr1/Q_tr2[width]  - per-domain voted outputs

    The TMR engine inserts this structure inline (nets and LUTs at the top
    level); this standalone macro exists for documentation, the Figure 2
    benchmark and direct use in hand-built designs.
    """
    if width < 1:
        raise NetlistError("voted register width must be >= 1")
    module_name = name if name is not None else f"tmr_voted_reg{width}"
    existing = netlist.find_definition(module_name)
    if existing is not None:
        return existing
    cells = cell_library if cell_library is not None else shared_cell_library()
    builder = NetlistBuilder.new_module(netlist, module_name, "tmr_macros",
                                        cells)

    clocks = [builder.input(f"C_tr{domain}", 1)[0] for domain in range(3)]
    data = [builder.input(f"D_tr{domain}", width) for domain in range(3)]
    outputs = [builder.output(f"Q_tr{domain}", width) for domain in range(3)]

    for bit in range(width):
        raw_q: List[Net] = []
        for domain in range(3):
            q_net = builder.wire(f"q_raw_tr{domain}[{bit}]")
            flip_flop = builder.instantiate(
                "FD", f"ff_tr{domain}_{bit}", C=clocks[domain],
                D=data[domain][bit], Q=q_net)
            flip_flop.properties[DOMAIN_PROPERTY] = domain
            raw_q.append(q_net)
        for domain in range(3):
            insert_majority_voter(
                builder.definition, raw_q, outputs[domain][bit],
                cell_library=cells, name=f"voter_tr{domain}_{bit}",
                domain=domain, voted_net=f"Q[{bit}]", role="register-voter")
    return builder.finish()


def majority_vote_values(a: int, b: int, c: int) -> int:
    """Reference majority function (re-exported for tests and docs)."""
    from ..cells import logic

    return logic.majority(a, b, c)
