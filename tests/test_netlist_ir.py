"""Unit tests for the core netlist IR."""

import pytest

from repro.netlist.ir import (Definition, Direction, Library, Net, Netlist,
                              NetlistError, Port)


class TestPort:
    def test_direction_flip(self):
        assert Direction.INPUT.flipped() is Direction.OUTPUT
        assert Direction.OUTPUT.flipped() is Direction.INPUT
        assert Direction.INOUT.flipped() is Direction.INOUT

    def test_port_properties(self):
        port = Port("A", Direction.INPUT, 4)
        assert port.is_input and not port.is_output
        assert list(port.bits()) == [0, 1, 2, 3]

    def test_zero_width_rejected(self):
        with pytest.raises(NetlistError):
            Port("A", Direction.INPUT, 0)


class TestDefinition:
    def test_add_port_and_duplicate(self):
        definition = Definition("mod")
        definition.add_port("A", Direction.INPUT, 2)
        with pytest.raises(NetlistError):
            definition.add_port("A", Direction.OUTPUT)

    def test_top_pin_bounds(self):
        definition = Definition("mod")
        definition.add_port("A", Direction.INPUT, 2)
        definition.top_pin("A", 1)
        with pytest.raises(NetlistError):
            definition.top_pin("A", 2)
        with pytest.raises(NetlistError):
            definition.top_pin("B", 0)

    def test_add_net_names(self):
        definition = Definition("mod")
        net = definition.add_net("n1")
        assert net.name == "n1"
        anonymous = definition.add_net()
        assert anonymous.name in definition.nets
        with pytest.raises(NetlistError):
            definition.add_net("n1")

    def test_remove_net_detaches_pins(self):
        definition = Definition("mod")
        definition.add_port("A", Direction.INPUT)
        net = definition.add_net("n")
        pin = definition.top_pin("A", 0)
        net.connect(pin)
        definition.remove_net(net)
        assert pin.net is None
        assert "n" not in definition.nets

    def test_rename_net(self):
        definition = Definition("mod")
        net = definition.add_net("old")
        definition.rename_net(net, "new")
        assert "new" in definition.nets and "old" not in definition.nets

    def test_make_unique_name(self):
        definition = Definition("mod")
        first = definition.make_unique_name("x")
        definition.add_net(first)
        second = definition.make_unique_name("x")
        assert first != second


class TestInstanceAndNets:
    @pytest.fixture()
    def lut2(self):
        library = Library("cells")
        lut = library.add_definition("LUT2", is_primitive=True)
        lut.add_port("I0", Direction.INPUT)
        lut.add_port("I1", Direction.INPUT)
        lut.add_port("O", Direction.OUTPUT)
        return lut

    def test_instance_connect_and_net_of(self, lut2):
        top = Definition("top")
        inst = top.add_instance(lut2, "u1")
        net = top.add_net("n")
        inst.connect("O", net)
        assert inst.net_of("O") is net
        assert inst.net_of("I0") is None

    def test_driver_and_sink_classification(self, lut2):
        top = Definition("top")
        driver = top.add_instance(lut2, "drv")
        sink = top.add_instance(lut2, "snk")
        net = top.add_net("n")
        driver.connect("O", net)
        sink.connect("I0", net)
        assert [p.instance.name for p in net.drivers()] == ["drv"]
        assert [p.instance.name for p in net.sinks()] == ["snk"]

    def test_top_pin_driver_semantics(self, lut2):
        top = Definition("top")
        top.add_port("IN", Direction.INPUT)
        top.add_port("OUT", Direction.OUTPUT)
        net_in = top.add_net("ni")
        net_out = top.add_net("no")
        net_in.connect(top.top_pin("IN", 0))
        net_out.connect(top.top_pin("OUT", 0))
        assert net_in.drivers() and not net_in.sinks()
        assert net_out.sinks() and not net_out.drivers()

    def test_reconnect_moves_pin(self, lut2):
        top = Definition("top")
        inst = top.add_instance(lut2, "u1")
        net_a = top.add_net("a")
        net_b = top.add_net("b")
        inst.connect("I0", net_a)
        inst.connect("I0", net_b)
        assert inst.net_of("I0") is net_b
        assert not net_a.pins

    def test_pin_out_of_range(self, lut2):
        top = Definition("top")
        inst = top.add_instance(lut2, "u1")
        with pytest.raises(NetlistError):
            inst.pin("I0", 1)
        with pytest.raises(NetlistError):
            inst.pin("nonexistent")

    def test_remove_instance_disconnects(self, lut2):
        top = Definition("top")
        inst = top.add_instance(lut2, "u1")
        net = top.add_net("n")
        inst.connect("O", net)
        top.remove_instance(inst)
        assert not net.pins
        assert "u1" not in top.instances

    def test_rename_instance(self, lut2):
        top = Definition("top")
        inst = top.add_instance(lut2, "u1")
        top.rename_instance(inst, "u2")
        assert "u2" in top.instances and "u1" not in top.instances

    def test_count_primitives_recursive(self, lut2):
        inner = Definition("inner")
        inner.add_instance(lut2, "a")
        inner.add_instance(lut2, "b")
        top = Definition("top")
        top.add_instance(inner, "i1")
        top.add_instance(inner, "i2")
        assert top.count_primitives() == {"LUT2": 4}


class TestLibraryAndNetlist:
    def test_library_add_and_contains(self):
        library = Library("work")
        library.add_definition("m")
        assert "m" in library
        with pytest.raises(NetlistError):
            library.add_definition("m")

    def test_netlist_find_definition(self):
        netlist = Netlist("n")
        work = netlist.add_library("work")
        definition = work.add_definition("m")
        assert netlist.find_definition("m") is definition
        assert netlist.find_definition("missing") is None

    def test_get_library_creates(self):
        netlist = Netlist("n")
        library = netlist.get_library("auto")
        assert netlist.get_library("auto") is library

    def test_set_top(self):
        netlist = Netlist("n")
        definition = netlist.get_library("work").add_definition("m")
        netlist.set_top(definition)
        assert netlist.top is definition

    def test_adopt_definition(self):
        library = Library("work")
        definition = Definition("loose")
        library.adopt(definition)
        assert definition.library is library
        with pytest.raises(NetlistError):
            library.adopt(Definition("loose"))
