"""Compilation of a flat primitive netlist into a levelized simulation program.

The compiled form indexes every net with an integer slot and turns every
combinational primitive into a compact gate record evaluated in topological
order; flip-flops are collected into a separate table updated at the clock
edge.  Both the reference simulator and the fault-injection campaigns share
this structure: faults are expressed as overlays that patch gate INITs, pin
sources or flip-flop behaviour without recompiling.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..cells.evaluate import lut_init_of
from ..cells.library import FF_CELLS, LUT_CELLS, lut_input_count
from ..netlist.ir import Definition, Direction, Instance, InstancePin, Net, \
    NetlistError
from ..netlist.traversal import topological_levels

#: Gate kind codes used by the evaluator.
KIND_LUT = 0
KIND_BUF = 1      # IBUF / OBUF / BUFG: output follows input
KIND_CONST0 = 2   # GND
KIND_CONST1 = 3   # VCC


@dataclasses.dataclass
class Gate:
    """One combinational primitive in evaluation order."""

    index: int
    name: str
    kind: int
    init: int
    num_inputs: int
    input_nets: Tuple[int, ...]
    output_net: int
    instance: Instance
    level: int


@dataclasses.dataclass
class FlipFlop:
    """One state element."""

    index: int
    name: str
    cell: str
    d_net: int
    q_net: int
    ce_net: int        # -1 when absent (always enabled)
    reset_net: int     # -1 when absent
    reset_is_async: bool
    init_value: int
    instance: Instance


@dataclasses.dataclass
class PortBinding:
    """Mapping of a top-level port to its net slots (LSB first)."""

    name: str
    direction: Direction
    net_indices: Tuple[int, ...]

    @property
    def width(self) -> int:
        return len(self.net_indices)


class CompiledDesign:
    """Levelized, index-based view of a flat primitive netlist."""

    def __init__(self, definition: Definition) -> None:
        self.definition = definition
        self.net_index: Dict[str, int] = {}
        self.net_names: List[str] = []
        self.gates: List[Gate] = []
        self.flip_flops: List[FlipFlop] = []
        self.inputs: Dict[str, PortBinding] = {}
        self.outputs: Dict[str, PortBinding] = {}
        self.clock_nets: List[int] = []
        self.gate_index_by_name: Dict[str, int] = {}
        self.ff_index_by_name: Dict[str, int] = {}
        #: lazily built fan-out adjacency (net -> sink gates / flip-flops and
        #: net -> driving gates / flip-flops), shared by every fault-cone
        #: computation on this design
        self._fanout_maps: Optional[Tuple[Dict[int, List[int]],
                                          Dict[int, List[int]],
                                          Dict[int, List[int]],
                                          Dict[int, List[int]]]] = None
        self._build()

    # ------------------------------------------------------------------
    @property
    def num_nets(self) -> int:
        return len(self.net_names)

    def net_id(self, name: str) -> int:
        return self.net_index[name]

    # ------------------------------------------------------------------
    def _build(self) -> None:
        definition = self.definition
        for inst in definition.instances.values():
            if not inst.is_primitive:
                raise NetlistError(
                    f"simulation requires a flat netlist; {inst.name!r} "
                    f"instantiates non-primitive {inst.reference.name!r}")

        for net in definition.nets.values():
            self.net_index[net.name] = len(self.net_names)
            self.net_names.append(net.name)

        clock_net_names = self._identify_clock_nets()
        self.clock_nets = [self.net_index[n] for n in clock_net_names]

        for port in definition.ports.values():
            indices = []
            for bit in port.bits():
                pin = definition.top_pin(port.name, bit)
                if pin.net is None:
                    indices.append(-1)
                else:
                    indices.append(self.net_index[pin.net.name])
            binding = PortBinding(port.name, port.direction, tuple(indices))
            if port.direction is Direction.INPUT:
                self.inputs[port.name] = binding
            else:
                self.outputs[port.name] = binding

        levels = topological_levels(definition)
        level_number = 0
        for level in levels:
            emitted_any = False
            for inst in level:
                cell = inst.reference.name
                if cell in FF_CELLS:
                    self._add_flip_flop(inst)
                    continue
                self._add_gate(inst, level_number)
                emitted_any = True
            if emitted_any:
                level_number += 1

    def _identify_clock_nets(self) -> List[str]:
        """Nets that only feed flip-flop clock pins (and BUFG inputs)."""
        clock_nets = []
        for net in self.definition.nets.values():
            sinks = net.sinks()
            if not sinks:
                continue
            is_clock = True
            for pin in sinks:
                if not isinstance(pin, InstancePin):
                    is_clock = False
                    break
                cell = pin.instance.reference.name
                if cell in FF_CELLS and pin.port_name == "C":
                    continue
                if cell == "BUFG" and pin.port_name == "I":
                    continue
                is_clock = False
                break
            if is_clock:
                clock_nets.append(net.name)
        return clock_nets

    def _net_slot(self, instance: Instance, port: str, default: int = -1) -> int:
        net = instance.net_of(port)
        if net is None:
            return default
        return self.net_index[net.name]

    def _add_gate(self, instance: Instance, level: int) -> None:
        cell = instance.reference.name
        if cell in LUT_CELLS:
            count = lut_input_count(cell)
            inputs = tuple(self._net_slot(instance, f"I{i}")
                           for i in range(count))
            gate = Gate(len(self.gates), instance.name, KIND_LUT,
                        lut_init_of(instance), count, inputs,
                        self._net_slot(instance, "O"), instance, level)
        elif cell in ("IBUF", "OBUF", "BUFG"):
            gate = Gate(len(self.gates), instance.name, KIND_BUF, 0, 1,
                        (self._net_slot(instance, "I"),),
                        self._net_slot(instance, "O"), instance, level)
        elif cell == "GND":
            gate = Gate(len(self.gates), instance.name, KIND_CONST0, 0, 0, (),
                        self._net_slot(instance, "G"), instance, level)
        elif cell == "VCC":
            gate = Gate(len(self.gates), instance.name, KIND_CONST1, 0, 0, (),
                        self._net_slot(instance, "P"), instance, level)
        else:
            raise NetlistError(f"cannot compile cell type {cell!r}")
        self.gates.append(gate)
        self.gate_index_by_name[instance.name] = gate.index

    def _add_flip_flop(self, instance: Instance) -> None:
        cell = instance.reference.name
        init = instance.properties.get("FF_INIT", 0)
        if isinstance(init, str):
            init = int(init, 0)
        flip_flop = FlipFlop(
            index=len(self.flip_flops),
            name=instance.name,
            cell=cell,
            d_net=self._net_slot(instance, "D"),
            q_net=self._net_slot(instance, "Q"),
            ce_net=self._net_slot(instance, "CE") if "CE" in
            instance.reference.ports else -1,
            reset_net=self._net_slot(instance, "R") if "R" in
            instance.reference.ports else
            (self._net_slot(instance, "CLR") if "CLR" in
             instance.reference.ports else -1),
            reset_is_async=cell == "FDCE",
            init_value=int(init) & 1,
            instance=instance,
        )
        self.flip_flops.append(flip_flop)
        self.ff_index_by_name[instance.name] = flip_flop.index

    # ------------------------------------------------------------------
    def _fanout(self) -> Tuple[Dict[int, List[int]], Dict[int, List[int]],
                               Dict[int, List[int]], Dict[int, List[int]]]:
        """Net fan-out / driver adjacency, built once per compiled design."""
        if self._fanout_maps is None:
            sink_gates: Dict[int, List[int]] = {}
            driver_gates: Dict[int, List[int]] = {}
            for gate in self.gates:
                for net in gate.input_nets:
                    sink_gates.setdefault(net, []).append(gate.index)
                if gate.output_net >= 0:
                    driver_gates.setdefault(gate.output_net,
                                            []).append(gate.index)
            ff_sinks: Dict[int, List[int]] = {}
            driver_ffs: Dict[int, List[int]] = {}
            for flip_flop in self.flip_flops:
                for net in (flip_flop.d_net, flip_flop.ce_net,
                            flip_flop.reset_net):
                    if net >= 0:
                        ff_sinks.setdefault(net, []).append(flip_flop.index)
                if flip_flop.q_net >= 0:
                    driver_ffs.setdefault(flip_flop.q_net,
                                          []).append(flip_flop.index)
            self._fanout_maps = (sink_gates, ff_sinks, driver_gates,
                                 driver_ffs)
        return self._fanout_maps

    def fault_cone(self, net_indices: Sequence[int]) -> "FaultCone":
        """Transitive fan-out closure of a seed set of nets.

        The closure crosses flip-flop boundaries (a corrupted D corrupts Q on
        the next cycle), which makes the result safe to use as an "active
        cone" when re-simulating a fault against stored golden values: any
        gate or flip-flop outside the cone provably keeps its golden value.
        """
        sink_gates, ff_sinks, driver_gates, driver_ffs = self._fanout()

        seen_nets = set()
        seen_gates = set()
        seen_ffs = set()
        stack = [n for n in net_indices if n >= 0]

        # The drivers of the seed nets themselves must be re-evaluated: a LUT
        # whose INIT is corrupted, or a flip-flop whose initial value is
        # flipped, seeds the cone through its *output* net.
        for net in stack:
            seen_gates.update(driver_gates.get(net, ()))
            seen_ffs.update(driver_ffs.get(net, ()))
        while stack:
            net = stack.pop()
            if net in seen_nets:
                continue
            seen_nets.add(net)
            for gate_index in sink_gates.get(net, ()):
                if gate_index not in seen_gates:
                    seen_gates.add(gate_index)
                    out = self.gates[gate_index].output_net
                    if out >= 0 and out not in seen_nets:
                        stack.append(out)
            for ff_index in ff_sinks.get(net, ()):
                if ff_index not in seen_ffs:
                    seen_ffs.add(ff_index)
                    q_net = self.flip_flops[ff_index].q_net
                    if q_net >= 0 and q_net not in seen_nets:
                        stack.append(q_net)
        return FaultCone(sorted(seen_gates), sorted(seen_ffs),
                         sorted(seen_nets))


@dataclasses.dataclass
class FaultCone:
    """Gates, flip-flops and nets reachable from a fault's injection nets."""

    gate_indices: List[int]
    ff_indices: List[int]
    net_indices: List[int]

    # Cones are memoized per seed-net tuple (repro.faults.cache and the
    # campaign context), so one cone object serves many simulations; the
    # membership sets the simulators filter programs with are memoized
    # alongside instead of being rebuilt from the sorted lists per run.
    @property
    def gate_set(self) -> frozenset:
        cached = self.__dict__.get("_gate_set")
        if cached is None:
            cached = frozenset(self.gate_indices)
            self._gate_set = cached
        return cached

    @property
    def ff_set(self) -> frozenset:
        cached = self.__dict__.get("_ff_set")
        if cached is None:
            cached = frozenset(self.ff_indices)
            self._ff_set = cached
        return cached

    @property
    def net_set(self) -> frozenset:
        cached = self.__dict__.get("_net_set")
        if cached is None:
            cached = frozenset(self.net_indices)
            self._net_set = cached
        return cached

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        for memo in ("_gate_set", "_ff_set", "_net_set"):
            state.pop(memo, None)
        return state
