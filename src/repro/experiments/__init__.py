"""Experiment drivers regenerating every table and figure of the paper."""

from .designs import (DESIGN_ORDER, PAPER_TABLE2_FMAX, PAPER_TABLE2_SLICES,
                      PAPER_TABLE3_PERCENT, SCALES, DesignSuite, Scale,
                      build_design_suite, device_for, fir_spec_for,
                      implement_design_suite, scale_by_name, tmr_configs)
from .table2 import run_table2
from .table3 import campaign_config_for, run_table3, summarize
from .table4 import PAPER_TABLE4, derived_claims, run_table4
from .figures import (ascii_partition_diagram, figure1_summary,
                      figure1_upset_demo, figure2_summary, figure3_summary,
                      figure4_summary, run_figures)
from .ablations import fault_list_mode_study, floorplan_study, partition_sweep

__all__ = [
    "DESIGN_ORDER", "PAPER_TABLE2_FMAX", "PAPER_TABLE2_SLICES",
    "PAPER_TABLE3_PERCENT", "SCALES", "DesignSuite", "Scale",
    "build_design_suite", "device_for", "fir_spec_for",
    "implement_design_suite", "scale_by_name", "tmr_configs", "run_table2",
    "campaign_config_for", "run_table3", "summarize", "PAPER_TABLE4",
    "derived_claims", "run_table4", "ascii_partition_diagram",
    "figure1_summary", "figure1_upset_demo", "figure2_summary",
    "figure3_summary", "figure4_summary", "run_figures",
    "fault_list_mode_study", "floorplan_study", "partition_sweep",
]
