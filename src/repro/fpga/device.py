"""Island-style FPGA device model.

The device is a rectangular array of tiles; every tile contains one *slice*
(two 4-input LUTs and two flip-flops, the Spartan-II slice organisation) and
a switch box through which general routing wires pass.  I/O pads sit on the
perimeter.  The geometry, channel width and configuration-bit layout are
parameterized by :class:`DeviceSpec`; the profiles in
:mod:`repro.fpga.spartan2e` approximate the XC2S200E used in the paper and
provide scaled variants for fast campaigns.

Coordinates are ``(x, y)`` with ``x`` the column (0 at the left) and ``y``
the row (0 at the bottom).  A wire owned by tile ``(x, y)`` in direction
``d`` terminates in the adjacent tile; wires whose far end would fall outside
the array do not exist.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

#: Routing directions and their coordinate deltas.
DIRECTIONS: Dict[str, Tuple[int, int]] = {
    "N": (0, 1),
    "S": (0, -1),
    "E": (1, 0),
    "W": (-1, 0),
}

OPPOSITE = {"N": "S", "S": "N", "E": "W", "W": "E"}

#: Slice output pins: LUT F output, LUT G output, flip-flop X and Y outputs.
SLICE_OUTPUT_PINS = ("X", "Y", "XQ", "YQ")
#: Slice input pins reachable through the general routing (the clock uses the
#: dedicated global network and is not part of the routed fabric).
SLICE_INPUT_PINS = ("F1", "F2", "F3", "F4", "G1", "G2", "G3", "G4",
                    "BX", "BY", "CE", "SR")
#: LUT slots and flip-flop slots inside a slice.
LUT_SLOTS = ("F", "G")
FF_SLOTS = ("FFX", "FFY")

#: Map (LUT slot, logical input index) -> slice input pin.
LUT_INPUT_PIN = {
    ("F", 0): "F1", ("F", 1): "F2", ("F", 2): "F3", ("F", 3): "F4",
    ("G", 0): "G1", ("G", 1): "G2", ("G", 2): "G3", ("G", 3): "G4",
}
#: Map LUT slot -> slice output pin, and FF slot -> output pin / bypass pin.
LUT_OUTPUT_PIN = {"F": "X", "G": "Y"}
FF_OUTPUT_PIN = {"FFX": "XQ", "FFY": "YQ"}
FF_DATA_PIN = {"FFX": "BX", "FFY": "BY"}
#: The LUT slot whose output has a dedicated path to each FF slot's D input.
FF_PAIRED_LUT = {"FFX": "F", "FFY": "G"}


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """Geometry and fabric parameters of a device."""

    name: str
    #: number of tile columns and rows (one slice per tile)
    columns: int
    rows: int
    #: general-routing wires per direction per tile
    wires_per_direction: int = 8
    #: I/O pads per perimeter tile
    pads_per_tile: int = 2
    #: configuration frame length in bits (used for frame-style addressing)
    frame_bits: int = 576

    @property
    def num_tiles(self) -> int:
        return self.columns * self.rows

    @property
    def num_slices(self) -> int:
        return self.num_tiles

    def __post_init__(self) -> None:
        if self.columns < 2 or self.rows < 2:
            raise ValueError("device needs at least a 2x2 tile array")
        if self.wires_per_direction < 2:
            raise ValueError("need at least 2 wires per direction")


@dataclasses.dataclass(frozen=True)
class PadSite:
    """One I/O pad location on the device perimeter."""

    index: int
    x: int
    y: int
    #: which side of the die the pad sits on (N/S/E/W)
    side: str

    @property
    def name(self) -> str:
        return f"PAD{self.index}"


class Device:
    """A concrete device: geometry plus derived site tables."""

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec
        self.pads: List[PadSite] = self._build_pads()
        self._pads_by_tile: Dict[Tuple[int, int], List[PadSite]] = {}
        for pad in self.pads:
            self._pads_by_tile.setdefault((pad.x, pad.y), []).append(pad)

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def columns(self) -> int:
        return self.spec.columns

    @property
    def rows(self) -> int:
        return self.spec.rows

    def in_bounds(self, x: int, y: int) -> bool:
        return 0 <= x < self.columns and 0 <= y < self.rows

    def tiles(self) -> Iterator[Tuple[int, int]]:
        for y in range(self.rows):
            for x in range(self.columns):
                yield (x, y)

    def neighbor(self, x: int, y: int, direction: str
                 ) -> Optional[Tuple[int, int]]:
        dx, dy = DIRECTIONS[direction]
        nx, ny = x + dx, y + dy
        if self.in_bounds(nx, ny):
            return (nx, ny)
        return None

    def wire_exists(self, x: int, y: int, direction: str) -> bool:
        """A wire exists only when its far end lands inside the array."""
        return self.neighbor(x, y, direction) is not None

    def perimeter_tiles(self) -> List[Tuple[int, int]]:
        result = []
        for x in range(self.columns):
            result.append((x, 0))
        for y in range(1, self.rows):
            result.append((self.columns - 1, y))
        for x in range(self.columns - 2, -1, -1):
            result.append((x, self.rows - 1))
        for y in range(self.rows - 2, 0, -1):
            result.append((0, y))
        return result

    def _build_pads(self) -> List[PadSite]:
        pads: List[PadSite] = []
        index = 0
        for (x, y) in self.perimeter_tiles():
            if y == 0:
                side = "S"
            elif y == self.rows - 1:
                side = "N"
            elif x == 0:
                side = "W"
            else:
                side = "E"
            for _ in range(self.spec.pads_per_tile):
                pads.append(PadSite(index, x, y, side))
                index += 1
        return pads

    def pads_at(self, x: int, y: int) -> List[PadSite]:
        return self._pads_by_tile.get((x, y), [])

    @property
    def num_pads(self) -> int:
        return len(self.pads)

    # ------------------------------------------------------------------
    def manhattan(self, a: Tuple[int, int], b: Tuple[int, int]) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def __repr__(self) -> str:
        return (f"Device({self.spec.name!r}, {self.columns}x{self.rows} "
                f"tiles, W={self.spec.wires_per_direction}, "
                f"{self.num_pads} pads)")
