"""Shared fixtures for the test suite.

Everything here is intentionally small (a 3-4 tap filter with narrow data)
so the whole suite stays fast; the full-size configurations are exercised by
the benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.cells.library import build_cell_library, shared_cell_library
from repro.core import (AllComponents, ByComponentType, NoPartition,
                        TMRConfig, apply_tmr)
from repro.fpga import device_by_name
from repro.netlist import Netlist, NetlistBuilder, flatten
from repro.pnr import implement
from repro.rtl import FirSpec, build_fir
from repro.sim import CompiledDesign


@pytest.fixture()
def netlist():
    return Netlist("test")


@pytest.fixture()
def cells():
    return shared_cell_library()


@pytest.fixture()
def builder(netlist, cells):
    return NetlistBuilder.new_module(netlist, "top", "work", cells)


@pytest.fixture(scope="session")
def tiny_fir_spec():
    return FirSpec.scaled(3, 4, name="fir_tiny")


@pytest.fixture(scope="session")
def tiny_fir():
    """A tiny FIR filter: (netlist, top definition, components)."""
    netlist = Netlist("tiny_fir")
    spec = FirSpec.scaled(3, 4, name="fir_tiny")
    top, components = build_fir(netlist, spec)
    return netlist, spec, top, components


@pytest.fixture(scope="session")
def tiny_fir_flat(tiny_fir):
    netlist, spec, top, _components = tiny_fir
    return flatten(netlist, top, flat_name="fir_tiny_flat")


@pytest.fixture(scope="session")
def tiny_fir_compiled(tiny_fir_flat):
    return CompiledDesign(tiny_fir_flat)


@pytest.fixture(scope="session")
def tiny_tmr_suite(tiny_fir):
    """TMR variants of the tiny filter: {name: TMRResult}."""
    netlist, _spec, top, _components = tiny_fir
    configs = {
        "p1": TMRConfig(partition=AllComponents(), name_suffix="_t_p1"),
        "p2": TMRConfig(partition=ByComponentType(("adder",)),
                        name_suffix="_t_p2"),
        "p3": TMRConfig(partition=NoPartition(), name_suffix="_t_p3"),
        "p3_nv": TMRConfig(partition=NoPartition(), vote_registers=False,
                           name_suffix="_t_p3_nv"),
    }
    return {name: apply_tmr(netlist, top, config)
            for name, config in configs.items()}


@pytest.fixture(scope="session")
def tiny_device():
    return device_by_name("TINY")


@pytest.fixture(scope="session")
def small_device():
    return device_by_name("XC2S15E")


@pytest.fixture(scope="session")
def tiny_fir_implementation(tiny_fir_flat, small_device):
    """The tiny unprotected filter placed and routed."""
    return implement(tiny_fir_flat, small_device, anneal_moves_per_slice=2)


@pytest.fixture(scope="session")
def tiny_tmr_implementation(tiny_fir, tiny_tmr_suite):
    """The tiny medium-partition TMR filter placed and routed."""
    netlist, _spec, _top, _components = tiny_fir
    flat = flatten(netlist, tiny_tmr_suite["p2"].definition,
                   flat_name="fir_tiny_p2_flat")
    return implement(flat, device_by_name("XC2S50E"),
                     anneal_moves_per_slice=2)
