"""Declarative experiment pipelines over the repository's stages.

The paper's experiment is one path through a fixed sequence of stages:

.. code-block:: text

    RTL build -> techmap -> TMR transform -> pack/place/route -> bitgen
        -> fault campaign -> analysis -> report

Before this module each table/figure driver re-implemented that sequence
with its own suite/flow/backend plumbing.  Here the sequence is a
first-class object: a :class:`Pipeline` is an ordered list of named,
fingerprint-keyed :class:`Stage` steps operating on a shared
:class:`PipelineContext`.  Stages are *thin* — the heavy lifting (and the
heavy caching) stays in the layers built by earlier PRs:

* the **implement** stage consults the persistent
  :class:`~repro.pnr.artifacts.FlowArtifactStore` (PR 3), so repeated
  pipeline runs skip place-and-route;
* the **campaign** stage runs through the process-wide campaign cache
  (PR 1) and any :mod:`~repro.faults.engine` backend (PR 1/2), so golden
  traces, fault effects and cones are shared between scenario variants;
* the **build** stage memoizes design suites per (scale, partition
  recipe) within the process.

Every stage records its input fingerprint, wall time and cache hit/miss
deltas into the run report, which :func:`build_report` assembles into one
uniform schema (:data:`REPORT_SCHEMA`) — scenario id, seed, backend,
upset model and tool versions included — consumed by ``python -m repro``,
the CI gate and the experiment drivers alike.

Scenario *definitions* (which designs, which axes, which analyses) live in
:mod:`repro.scenarios`; this module only knows how to execute one resolved
configuration.
"""

from __future__ import annotations

import dataclasses
import hashlib
import platform
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import __version__
from .analysis import (area_overhead, best_partition, improvement_factor,
                       performance_degradation, resource_table,
                       routing_effect_share)
from .faults import (CampaignConfig, CampaignResult, cache_stats,
                     resolve_backend, resolve_upset_model, run_campaign)
from .pnr.artifacts import TOOL_VERSION, StoreLike, resolve_store
from .experiments.designs import (DESIGN_ORDER, PAPER_TABLE2_FMAX,
                                  PAPER_TABLE2_SLICES, PAPER_TABLE3_PERCENT,
                                  PAPER_TABLE4, DesignSuite,
                                  build_design_suite,
                                  implement_design_suite)

#: Identity of the report layout emitted by :func:`build_report`.  Bump when
#: a key is renamed or its meaning changes; additions are backward
#: compatible.  All keys are snake_case — the drivers historically mixed
#: casings, this schema is now the only JSON surface.
REPORT_SCHEMA = "repro.scenario-report/1"

#: Suites already built this process, keyed by their build recipe.
_SUITE_MEMO: Dict[Tuple, DesignSuite] = {}


# ----------------------------------------------------------------------
# Context
# ----------------------------------------------------------------------
class PipelineContext:
    """Mutable state threaded through one pipeline run.

    Holds the resolved knobs of one scenario variant plus the artefacts
    the stages produce (suite, implementations, campaign results, derived
    analyses).  Callers may pre-seed ``suite`` / ``implementations`` to
    skip the corresponding stages' work — the experiment drivers use this
    to keep their historical signatures.
    """

    def __init__(self, scenario_id: str = "custom",
                 scale: str = "fast",
                 designs: Sequence[str] = DESIGN_ORDER,
                 backend: str = "serial",
                 upset_model: str = "single",
                 fault_list_mode: str = "design",
                 num_faults: Optional[int] = None,
                 prefilter: str = "none",
                 seed: int = 2005,
                 jobs: int = 1,
                 flow_cache: StoreLike = None,
                 anneal_partitions: int = 1,
                 flow_threads: Optional[int] = None,
                 floorplan_domains: bool = False,
                 partition_selector: str = "canonical",
                 shortlist_size: int = 3,
                 analyses: Sequence[str] = (),
                 progress: bool = False,
                 progress_callback: Optional[Callable[[str, int, int],
                                                      None]] = None) -> None:
        self.scenario_id = scenario_id
        self.scale = scale
        self.designs: List[str] = list(designs)
        self.backend = backend
        self.upset_model = upset_model
        self.fault_list_mode = fault_list_mode
        self.num_faults = num_faults
        self.prefilter = prefilter
        self.seed = seed
        self.jobs = jobs
        self.store = resolve_store(flow_cache)
        #: annealer partition count (result-determining; fingerprinted)
        self.anneal_partitions = anneal_partitions
        #: region-sweep worker threads (execution-only; not fingerprinted)
        self.flow_threads = flow_threads
        self.floorplan_domains = floorplan_domains
        self.partition_selector = partition_selector
        self.shortlist_size = shortlist_size
        self.analyses: List[str] = list(analyses)
        self.progress = progress
        #: machine-facing progress hook ``(design, done, total)`` — the
        #: service's job monitor; independent of the human ``progress`` flag
        self.progress_callback = progress_callback
        # artefacts produced by the stages
        self.suite: Optional[DesignSuite] = None
        self.implementations: Optional[Dict[str, object]] = None
        self.campaigns: Dict[str, CampaignResult] = {}
        self.derived: Dict[str, object] = {}

    def identity(self) -> str:
        """The run-invariant part of every stage fingerprint."""
        identity = (f"scenario={self.scenario_id}|scale={self.scale}"
                    f"|designs={','.join(self.designs)}"
                    f"|partitions={self.partition_selector}"
                    f":{self.shortlist_size}"
                    f"|floorplan={self.floorplan_domains}"
                    f"|flow={TOOL_VERSION}")
        # Appended (rather than inline) so every historical identity —
        # and the stage fingerprints derived from it — is unchanged for
        # the default single-partition annealer.
        if self.anneal_partitions != 1:
            identity += f"|anneal_partitions={self.anneal_partitions}"
        return identity


def _digest(*parts: str) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode())
        digest.update(b"|")
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# Stage library
# ----------------------------------------------------------------------
class Stage:
    """One named, fingerprint-keyed pipeline step."""

    name: str = "abstract"

    def fingerprint(self, ctx: PipelineContext, previous: str) -> str:
        """Content key of this stage's inputs, chained on *previous*."""
        return _digest(previous, self.name, self._inputs(ctx))

    def _inputs(self, ctx: PipelineContext) -> str:
        return ""

    def run(self, ctx: PipelineContext) -> Dict[str, object]:
        """Execute the stage; the returned summary lands in the report."""
        raise NotImplementedError

    def cache_snapshot(self, ctx: PipelineContext) -> Dict[str, int]:
        """Counters whose delta across :meth:`run` measures cache reuse."""
        return {}


def get_suite(scale: str, partition_selector: str = "canonical",
              shortlist_size: int = 3) -> Tuple[DesignSuite, List[str], bool]:
    """Build (or reuse) the design suite for one build recipe.

    Returns ``(suite, generated_design_names, memo_hit)``.  The canonical
    recipe produces the paper's five versions; the ``shortlist`` recipe
    additionally applies TMR for the Pareto-optimal strategies of
    :func:`repro.core.optimizer.sweep_partitions` and returns their design
    names.  Suites are memoized per recipe within the process, so the
    generated names (and therefore the flow fingerprints) are stable
    across repeated scenario runs.
    """
    key = (scale, partition_selector, shortlist_size)
    memo_hit = key in _SUITE_MEMO
    if memo_hit:
        suite = _SUITE_MEMO[key]
        generated = [name for name in suite.flat
                     if name.startswith("TMR_shortlist")]
        return suite, generated, True

    suite = build_design_suite(scale)
    generated: List[str] = []
    if partition_selector == "shortlist":
        from .core import pareto_front, sweep_partitions
        from .experiments.designs import _optimize
        from .netlist import flatten

        sweep = sweep_partitions(suite.netlist, suite.source)
        front = pareto_front(sweep.candidates)[:max(1, shortlist_size)]
        for index, candidate in enumerate(front):
            slug = "".join(char for char in
                           candidate.strategy.describe().lower()
                           if char.isalnum())
            name = f"TMR_shortlist{index}_{slug}"
            flat = _optimize(
                flatten(suite.netlist, candidate.result.definition,
                        flat_name=f"{name}_{suite.scale.name}"),
                suite.optimized)
            suite.flat[name] = flat
            suite.tmr[name] = candidate.result
            generated.append(name)
    elif partition_selector != "canonical":
        raise ValueError(f"unknown partition selector "
                         f"{partition_selector!r}; choose 'canonical' or "
                         f"'shortlist'")
    _SUITE_MEMO[key] = suite
    return suite, generated, False


class BuildStage(Stage):
    """RTL build, techmap, TMR transform and flattening."""

    name = "build"

    def _inputs(self, ctx: PipelineContext) -> str:
        return ctx.identity()

    def run(self, ctx: PipelineContext) -> Dict[str, object]:
        memo_hit = ctx.suite is not None
        if ctx.suite is None:
            ctx.suite, generated, memo_hit = get_suite(
                ctx.scale, ctx.partition_selector, ctx.shortlist_size)
            # An empty design list means "derived by the build stage"; an
            # explicit list (e.g. a --design restriction) is honoured.
            if ctx.partition_selector == "shortlist" and not ctx.designs:
                ctx.designs = ["standard"] + generated
        missing = [name for name in ctx.designs
                   if name not in ctx.suite.flat]
        if missing:
            raise KeyError(f"designs not in the built suite: {missing}; "
                           f"available: {sorted(ctx.suite.flat)}")
        spec = ctx.suite.spec
        return {
            "suite_memo_hit": memo_hit,
            "designs": list(ctx.designs),
            "taps": spec.taps,
            "data_width": spec.data_width,
        }


class ImplementStage(Stage):
    """Pack, place, route and bitstream generation (flow-cache backed)."""

    name = "implement"

    def _inputs(self, ctx: PipelineContext) -> str:
        return f"{ctx.identity()}|jobs-independent"

    def cache_snapshot(self, ctx: PipelineContext) -> Dict[str, int]:
        if ctx.store is None:
            return {"hits": 0, "misses": 0, "stores": 0}
        return {"hits": ctx.store.stats.hits,
                "misses": ctx.store.stats.misses,
                "stores": ctx.store.stats.stores}

    def run(self, ctx: PipelineContext) -> Dict[str, object]:
        assert ctx.suite is not None, "build stage must run first"
        if ctx.implementations is None:
            ctx.implementations = implement_design_suite(
                ctx.suite, designs=list(ctx.designs),
                floorplan_domains=ctx.floorplan_domains,
                jobs=ctx.jobs, artifact_store=ctx.store,
                partitions=ctx.anneal_partitions,
                threads=ctx.flow_threads)
        summary: Dict[str, object] = {}
        for name in ctx.designs:
            implementation = ctx.implementations.get(name)
            if implementation is not None:
                summary[name] = implementation.summary()
        return {"implementations": summary}


class CampaignStage(Stage):
    """Fault-injection campaigns through the configured engine backend."""

    name = "campaign"

    def _inputs(self, ctx: PipelineContext) -> str:
        # The backend and the prefilter are deliberately absent: every
        # backend produces bit-identical campaign results and the static
        # prefilter only synthesizes provably-identical verdicts, so
        # neither changes the result identity (both are still recorded in
        # the report).
        return (f"{ctx.identity()}|seed={ctx.seed}"
                f"|faults={ctx.num_faults}"
                f"|model={resolve_upset_model(ctx.upset_model).describe()}"
                f"|mode={ctx.fault_list_mode}")

    def cache_snapshot(self, ctx: PipelineContext) -> Dict[str, int]:
        return dict(cache_stats())

    def run(self, ctx: PipelineContext) -> Dict[str, object]:
        assert ctx.implementations is not None, \
            "implement stage must run first"
        assert ctx.suite is not None
        config = CampaignConfig(
            num_faults=ctx.num_faults if ctx.num_faults is not None
            else ctx.suite.scale.campaign_faults,
            workload_cycles=ctx.suite.scale.workload_cycles,
            fault_list_mode=ctx.fault_list_mode,
            seed=ctx.seed,
            upset_model=ctx.upset_model,
            prefilter=ctx.prefilter,
        )
        engine = resolve_backend(ctx.backend)
        execution: Dict[str, object] = {}
        for name in ctx.designs:
            if name not in ctx.implementations:
                continue
            callback = None
            if ctx.progress_callback is not None:
                monitor = ctx.progress_callback
                callback = lambda done, total, design=name: monitor(
                    design, done, total)
            elif ctx.progress:
                # stderr so ``--json`` runs keep a machine-readable stdout
                callback = lambda done, total, design=name: print(
                    f"  {design}: {done}/{total} faults", file=sys.stderr,
                    flush=True)
            ctx.campaigns[name] = run_campaign(
                ctx.implementations[name], config, progress=callback,
                backend=engine)
            stats = getattr(engine, "last_run_stats", None)
            if stats:
                execution[name] = dict(stats)
        return {
            "injected": {name: result.injected
                         for name, result in ctx.campaigns.items()},
            "backend": engine.name,
            "upset_model": resolve_upset_model(ctx.upset_model).describe(),
            "prefilter": ctx.prefilter,
            "skipped_silent": {name: result.skipped_silent
                               for name, result in ctx.campaigns.items()},
            # Per-design execution provenance (shard counts, retries,
            # checkpoint hits, backend degradations).  Volatile by
            # definition — a resumed run reports checkpoint hits where a
            # cold run reports stores — so stable_report() scrubs it.
            "execution": execution,
        }


# ----------------------------------------------------------------------
# Analyses (the analyze stage's dispatch table)
# ----------------------------------------------------------------------
def table3_summary(results: Dict[str, CampaignResult]) -> Dict[str, object]:
    """Headline quantities derived from the Table 3 campaigns."""
    summary: Dict[str, object] = {
        name: result.summary_row() for name, result in results.items()}
    tmr_versions = [n for n in ("TMR_p1", "TMR_p2", "TMR_p3", "TMR_p3_nv")
                    if n in results]
    if "TMR_p1" in results and "TMR_p2" in results:
        summary["improvement_p1_to_p2"] = round(
            improvement_factor(results, "TMR_p1", "TMR_p2"), 2)
    if tmr_versions:
        summary["best_tmr_partition"] = best_partition(results, tmr_versions)
    return summary


def table4_claims(results: Dict[str, CampaignResult]) -> Dict[str, object]:
    """The qualitative claims the paper draws from Table 4."""
    claims: Dict[str, object] = {}
    tmr_names = [n for n in results if n.startswith("TMR")]
    claims["lut_upsets_defeat_tmr"] = any(
        results[name].by_category.get("LUT") is not None and
        results[name].by_category["LUT"].wrong > 0 for name in tmr_names)
    claims["routing_effect_share"] = {
        name: round(routing_effect_share(result), 3)
        for name, result in results.items()}
    return claims


def resources_analysis(ctx: PipelineContext) -> Dict[str, object]:
    """The Table 2 analogue: per-design resources and overheads."""
    assert ctx.implementations is not None
    rows = resource_table(ctx.implementations, order=ctx.designs)
    reference = "standard" if "standard" in ctx.implementations \
        else rows[0].design
    overhead = area_overhead(rows, reference)
    slowdown = performance_degradation(rows, reference)
    table: Dict[str, object] = {}
    for row in rows:
        entry = row.as_dict()
        entry["area_overhead_vs_standard"] = round(overhead[row.design], 2)
        entry["relative_fmax_vs_standard"] = round(slowdown[row.design], 2)
        entry["paper_slices"] = PAPER_TABLE2_SLICES.get(row.design)
        entry["paper_fmax_mhz"] = PAPER_TABLE2_FMAX.get(row.design)
        table[row.design] = entry
    return table


def _analyze_table3(ctx: PipelineContext) -> Dict[str, object]:
    summary = table3_summary(ctx.campaigns)
    summary["paper_wrong_percent"] = {
        name: PAPER_TABLE3_PERCENT[name] for name in ctx.campaigns
        if name in PAPER_TABLE3_PERCENT}
    return summary


def _analyze_table4(ctx: PipelineContext) -> Dict[str, object]:
    return {
        "effects": {name: result.effect_table()
                    for name, result in ctx.campaigns.items()},
        "paper_effects": {name: PAPER_TABLE4[name] for name in ctx.campaigns
                          if name in PAPER_TABLE4},
        "claims": table4_claims(ctx.campaigns),
    }


def _analyze_figures(ctx: PipelineContext) -> Dict[str, object]:
    from .experiments.figures import run_figures

    return run_figures(suite=ctx.suite)


def _analyze_sweep(ctx: PipelineContext) -> Dict[str, object]:
    from .experiments.ablations import partition_sweep

    return partition_sweep(suite=ctx.suite)


def _defeat_maps_of(ctx: PipelineContext) -> Dict[str, object]:
    from .analysis.layout import defeat_map_for

    assert ctx.implementations is not None, "implement stage must run first"
    return {name: defeat_map_for(ctx.implementations[name],
                                 mode=ctx.fault_list_mode)
            for name in ctx.designs if name in ctx.implementations}


def _analyze_defeat_map(ctx: PipelineContext) -> Dict[str, object]:
    """Static defeat maps per design, next to the netlist-only estimate."""
    from .core.analysis import estimate_robustness

    summary: Dict[str, object] = {}
    for name, defeat_map in _defeat_maps_of(ctx).items():
        entry = defeat_map.summary()
        tmr_result = (ctx.suite.tmr.get(name)
                      if ctx.suite is not None else None)
        if tmr_result is not None:
            netlist_estimate = estimate_robustness(tmr_result.definition)
            entry["netlist_defeat_probability"] = round(
                netlist_estimate.cross_domain_defeat_probability, 5)
        summary[name] = entry
    return summary


def _analyze_prediction(ctx: PipelineContext) -> Dict[str, object]:
    """Cross-validate the static defeat map against measured campaigns.

    For every campaigned design, the statically predicted defeat-capable
    set must cover every bit that measured a wrong answer, and no bit
    predicted silent may have measured one.
    """
    from .analysis.layout import prediction_vs_campaign

    summary: Dict[str, object] = {}
    for name, defeat_map in _defeat_maps_of(ctx).items():
        campaign = ctx.campaigns.get(name)
        if campaign is None:
            continue
        entry = prediction_vs_campaign(defeat_map, campaign.results)
        entry["skipped_silent"] = campaign.skipped_silent
        entry["simulated"] = campaign.simulated
        summary[name] = entry
    summary["all_supersets_hold"] = all(
        entry["superset_holds"] for entry in summary.values()
        if isinstance(entry, dict))
    return summary


#: analysis name -> function(ctx) -> JSON-serializable summary
ANALYSES = {
    "resources": resources_analysis,
    "table3": _analyze_table3,
    "table4": _analyze_table4,
    "figures": _analyze_figures,
    "sweep": _analyze_sweep,
    "defeat_map": _analyze_defeat_map,
    "prediction_vs_campaign": _analyze_prediction,
}


class AnalyzeStage(Stage):
    """Derive the scenario's analyses from the produced artefacts."""

    name = "analyze"

    def _inputs(self, ctx: PipelineContext) -> str:
        return f"{ctx.identity()}|analyses={','.join(ctx.analyses)}"

    def run(self, ctx: PipelineContext) -> Dict[str, object]:
        for analysis in ctx.analyses:
            if analysis not in ANALYSES:
                raise KeyError(f"unknown analysis {analysis!r}; available: "
                               f"{sorted(ANALYSES)}")
            ctx.derived[analysis] = ANALYSES[analysis](ctx)
        return {"analyses": list(ctx.analyses)}


#: stage name -> class, the library scenarios compose their pipelines from
STAGE_LIBRARY = {
    BuildStage.name: BuildStage,
    ImplementStage.name: ImplementStage,
    CampaignStage.name: CampaignStage,
    AnalyzeStage.name: AnalyzeStage,
}


def pipeline_for(stage_names: Sequence[str]) -> "Pipeline":
    """Instantiate a pipeline from stage-library names, in order."""
    try:
        return Pipeline([STAGE_LIBRARY[name]() for name in stage_names])
    except KeyError as error:
        raise KeyError(f"unknown pipeline stage {error.args[0]!r}; "
                       f"available: {sorted(STAGE_LIBRARY)}") from None


# ----------------------------------------------------------------------
# Execution and reporting
# ----------------------------------------------------------------------
@dataclasses.dataclass
class StageRecord:
    """Execution record of one stage within one pipeline run."""

    name: str
    fingerprint: str
    seconds: float
    cache: Dict[str, int]
    summary: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "seconds": round(self.seconds, 4),
            "cache": dict(self.cache),
            "summary": self.summary,
        }


class Pipeline:
    """An ordered list of stages executed over one context."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        self.stages = list(stages)

    def run(self, ctx: PipelineContext) -> Dict[str, object]:
        """Execute every stage and assemble the uniform run report."""
        records: List[StageRecord] = []
        chain = _digest(ctx.identity())
        for stage in self.stages:
            chain = stage.fingerprint(ctx, chain)
            before = stage.cache_snapshot(ctx)
            started = time.time()
            summary = stage.run(ctx)
            elapsed = time.time() - started
            after = stage.cache_snapshot(ctx)
            delta = {key: after.get(key, 0) - before.get(key, 0)
                     for key in after}
            records.append(StageRecord(stage.name, chain, elapsed, delta,
                                       summary))
        return build_report(ctx, records)


def _campaign_entry(result: CampaignResult) -> Dict[str, object]:
    return {
        "injected": result.injected,
        "wrong": result.wrong_answers,
        "wrong_percent": round(result.wrong_answer_percent, 2),
        "fault_list_size": result.fault_list_size,
        "fault_list_mode": result.mode,
        "backend": result.backend,
        "upset_model": result.upset_model,
        "seed": result.seed,
        "prefilter": result.prefilter,
        "skipped_silent": result.skipped_silent,
        "simulated": result.simulated,
        "effects": result.effect_table(),
        "faults_per_second": round(result.faults_per_second, 1),
    }


def report_provenance(scenario_id: str, scale: str, seed: int,
                      backend: object, upset_model: object,
                      fault_list_mode: str,
                      num_faults: Optional[int]) -> Dict[str, object]:
    """The provenance block shared by every report (single-run or matrix).

    Backend and upset-model specs are resolved to their canonical names
    so the same configuration always serializes identically.
    """
    return {
        "schema": REPORT_SCHEMA,
        "scenario": scenario_id,
        "scale": scale,
        "seed": seed,
        "backend": resolve_backend(backend).name,
        "upset_model": resolve_upset_model(upset_model).describe(),
        "fault_list_mode": fault_list_mode,
        "num_faults": num_faults,
        "tool_version": {
            "repro": __version__,
            "flow": TOOL_VERSION,
            "python": platform.python_version(),
        },
    }


def build_report(ctx: PipelineContext,
                 records: Sequence[StageRecord]) -> Dict[str, object]:
    """The uniform report of one pipeline run (:data:`REPORT_SCHEMA`).

    Every field is snake_case and every run — driver, CLI or CI — carries
    the same provenance block (scenario id, seed, backend, upset model,
    tool versions), fixing the historically inconsistent driver JSON.
    """
    designs: Dict[str, object] = {}
    for name in ctx.designs:
        entry: Dict[str, object] = {}
        if ctx.implementations and name in ctx.implementations:
            entry["implementation"] = ctx.implementations[name].summary()
        if name in ctx.campaigns:
            entry["campaign"] = _campaign_entry(ctx.campaigns[name])
        if entry:
            designs[name] = entry
    report = report_provenance(ctx.scenario_id, ctx.scale, ctx.seed,
                               ctx.backend, ctx.upset_model,
                               ctx.fault_list_mode, ctx.num_faults)
    report.update({
        "designs": designs,
        "derived": ctx.derived,
        "stages": [record.as_dict() for record in records],
    })
    return report


#: Report keys whose values vary run to run — timings, and the cache
#: hit/miss counters that depend on how warm the process-wide caches were
#: when the run started; stripped when comparing reports for determinism.
#: (The CI cache gate reads the *raw* report, where the counters matter.)
VOLATILE_REPORT_KEYS = ("seconds", "faults_per_second", "duration_seconds",
                        "cache", "suite_memo_hit", "execution")


def stable_report(report: Dict[str, object]) -> Dict[str, object]:
    """A deep copy of *report* with the volatile per-run fields removed."""
    def scrub(value):
        if isinstance(value, dict):
            return {key: scrub(item) for key, item in value.items()
                    if key not in VOLATILE_REPORT_KEYS}
        if isinstance(value, list):
            return [scrub(item) for item in value]
        return value

    return scrub(report)


def render_markdown(report: Dict[str, object]) -> str:
    """A human-readable Markdown rendering of one scenario report."""
    lines: List[str] = []
    runs = report.get("runs")
    lines.append(f"# Scenario `{report['scenario']}`")
    lines.append("")
    lines.append(f"- scale: `{report['scale']}` · seed: `{report['seed']}` "
                 f"· backend: `{report['backend']}` · upset model: "
                 f"`{report['upset_model']}`")
    versions = report.get("tool_version", {})
    lines.append(f"- tool: repro {versions.get('repro')} / "
                 f"{versions.get('flow')} on Python "
                 f"{versions.get('python')}")
    lines.append("")
    if runs:
        for variant, sub in runs.items():
            lines.append(f"## Variant `{variant}`")
            lines.append("")
            lines.extend(_markdown_body(sub))
    else:
        lines.extend(_markdown_body(report))
    return "\n".join(lines)


def _markdown_body(report: Dict[str, object]) -> List[str]:
    lines: List[str] = []
    designs = report.get("designs", {})
    if designs:
        has_campaign = any("campaign" in entry for entry in designs.values())
        if has_campaign:
            lines.append("| design | slices | fmax (MHz) | injected | "
                         "wrong | wrong % |")
            lines.append("|---|---:|---:|---:|---:|---:|")
        else:
            lines.append("| design | slices | fmax (MHz) |")
            lines.append("|---|---:|---:|")
        for name, entry in designs.items():
            implementation = entry.get("implementation", {})
            campaign = entry.get("campaign")
            row = [name,
                   str(implementation.get("slices", "-")),
                   str(implementation.get("fmax_mhz", "-"))]
            if has_campaign:
                if campaign:
                    row += [str(campaign["injected"]),
                            str(campaign["wrong"]),
                            f"{campaign['wrong_percent']:.2f}"]
                else:
                    row += ["-", "-", "-"]
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
    derived = report.get("derived", {})
    for analysis, payload in derived.items():
        lines.append(f"### {analysis}")
        lines.append("")
        lines.append("```json")
        import json

        lines.append(json.dumps(payload, indent=2, default=str,
                                sort_keys=True))
        lines.append("```")
        lines.append("")
    stages = report.get("stages", [])
    if stages:
        lines.append("### stages")
        lines.append("")
        lines.append("| stage | fingerprint | seconds | cache |")
        lines.append("|---|---|---:|---|")
        for stage in stages:
            cache = ", ".join(f"{key}={value}"
                              for key, value in stage["cache"].items()
                              if value) or "-"
            lines.append(f"| {stage['name']} | `{stage['fingerprint']}` | "
                         f"{stage['seconds']:.2f} | {cache} |")
        lines.append("")
    return lines
