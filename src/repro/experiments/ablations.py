"""Ablation experiments beyond the paper's tables.

Two studies the paper motivates but does not quantify:

* **Partition-granularity sweep** — the optimizer's analytical sweep over
  voter granularities, reported next to measured campaign numbers for the
  three canonical partitions.  This is the design-space picture behind the
  paper's "there is an optimal partition" conclusion.
* **Floorplanning** — the paper's future-work item: confine each TMR domain
  to its own column band and measure how much of the remaining vulnerability
  disappears (at the cost of longer voter nets).
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, Optional, Sequence

from ..core import EveryKth, sweep_partitions
from ..faults import CampaignConfig, CampaignResult, run_campaign
from ..faults.engine import BACKEND_CHOICES, BackendLike, resolve_backend
from ..pnr import Implementation
from ..pnr.artifacts import StoreLike
from .designs import (DesignSuite, build_design_suite,
                      implement_design_suite)
from .table2 import add_flow_arguments
from .table3 import campaign_config_for


def partition_sweep(suite: Optional[DesignSuite] = None, scale: str = "fast",
                    granularities: Sequence[int] = (1, 2, 3, 4, 6),
                    ) -> Dict[str, object]:
    """Analytical sweep of voter granularity on the filter."""
    if suite is None:
        suite = build_design_suite(scale)
    strategies = [EveryKth(k) for k in granularities]
    sweep = sweep_partitions(suite.netlist, suite.source,
                             strategies=strategies)
    return {
        "candidates": sweep.table(),
        "best": sweep.best.summary_row(),
    }


def floorplan_study(suite: Optional[DesignSuite] = None, scale: str = "smoke",
                    design: str = "TMR_p3", num_faults: Optional[int] = None,
                    backend: BackendLike = None,
                    jobs: int = 1,
                    flow_cache: StoreLike = None) -> Dict[str, object]:
    """Compare interleaved placement against per-domain floorplanning."""
    if suite is None:
        suite = build_design_suite(scale)
    config = campaign_config_for(suite, num_faults)
    engine = resolve_backend(backend)

    interleaved = implement_design_suite(
        suite, designs=[design], jobs=jobs,
        artifact_store=flow_cache)[design]
    floorplanned = implement_design_suite(
        suite, designs=[design], floorplan_domains=True, jobs=jobs,
        artifact_store=flow_cache)[design]

    result_interleaved = run_campaign(interleaved, config, backend=engine)
    result_floorplanned = run_campaign(floorplanned, config, backend=engine)
    return {
        "design": design,
        "interleaved": result_interleaved.summary_row(),
        "floorplanned": result_floorplanned.summary_row(),
        "floorplanning_helps": result_floorplanned.wrong_answer_percent
        <= result_interleaved.wrong_answer_percent,
    }


def fault_list_mode_study(implementation: Implementation,
                          suite: DesignSuite,
                          num_faults: Optional[int] = None,
                          backend: BackendLike = None) -> Dict[str, object]:
    """How the fault-list selection mode changes the measured percentages."""
    engine = resolve_backend(backend)
    out: Dict[str, object] = {}
    for mode in ("design", "programmed"):
        config = campaign_config_for(suite, num_faults, fault_list_mode=mode)
        result = run_campaign(implementation, config, backend=engine)
        out[mode] = result.summary_row()
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke",
                        choices=("paper", "fast", "smoke"))
    parser.add_argument("--study", default="sweep",
                        choices=("sweep", "floorplan"))
    parser.add_argument("--backend", default="serial",
                        choices=BACKEND_CHOICES,
                        help="campaign execution backend")
    add_flow_arguments(parser)
    arguments = parser.parse_args(argv)

    if arguments.study == "sweep":
        print(json.dumps(partition_sweep(scale=arguments.scale), indent=2,
                         default=str))
    else:
        print(json.dumps(floorplan_study(scale=arguments.scale,
                                         backend=arguments.backend,
                                         jobs=arguments.jobs,
                                         flow_cache=arguments.flow_cache),
                         indent=2, default=str))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
