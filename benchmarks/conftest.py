"""Shared fixtures for the benchmark harness.

The benchmarks regenerate the paper's tables and figures on a reduced
configuration (the ``smoke`` scale by default) so that the full suite runs in
a few minutes.  Set ``REPRO_BENCH_SCALE=fast`` or ``paper`` for larger runs,
``REPRO_BENCH_FAULTS`` to override the number of injected upsets per design,
``REPRO_BENCH_BACKEND`` (``serial`` / ``batch`` / ``process`` / ``vector``)
to pick the campaign execution backend, ``REPRO_BENCH_JOBS`` to place and
route the suite designs in parallel worker processes, and
``REPRO_FLOW_CACHE`` to serve implementations from (and persist them to)
the on-disk flow-artifact store, and ``REPRO_BENCH_OUT`` to redirect the
measured BENCH_*.json files (default ``.bench-out/``; pass the pytest
flag ``--update-baselines`` to overwrite the committed baselines at the
repository root instead); the experiment CLIs
(``python -m repro.experiments.table3 --scale paper --backend vector
--jobs 4 --flow-cache .flow-cache``) expose the same knobs outside pytest.

All heavy artefacts (the five implemented filter versions and their
fault-injection campaigns) are built once per session and shared by every
benchmark file.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import (DESIGN_ORDER, build_design_suite,
                               campaign_config_for, implement_design_suite)
from repro.faults import run_campaign

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Where freshly measured BENCH_*.json files land.  A plain test run must
#: never clobber the committed baselines at the repository root (that
#: silently rebases every later regression gate on this machine's noise —
#: see CHANGES.md entry 7); overwriting them is opt-in via the
#: ``--update-baselines`` pytest flag.
BENCH_OUT = Path(os.environ.get("REPRO_BENCH_OUT")
                 or REPO_ROOT / ".bench-out")

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")
BENCH_FAULTS = int(os.environ.get("REPRO_BENCH_FAULTS", "0")) or None
BENCH_BACKEND = os.environ.get("REPRO_BENCH_BACKEND", "batch")
#: parallel P&R workers for the shared implementations fixture
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
#: persistent flow-artifact directory (CI caches it across runs)
BENCH_FLOW_CACHE = os.environ.get("REPRO_FLOW_CACHE")


@pytest.fixture(scope="session")
def bench_out_dir(request) -> Path:
    """The directory BENCH_*.json results are written to this run."""
    if request.config.getoption("--update-baselines"):
        return REPO_ROOT
    BENCH_OUT.mkdir(parents=True, exist_ok=True)
    return BENCH_OUT


@pytest.fixture(scope="session")
def design_suite():
    return build_design_suite(BENCH_SCALE)


@pytest.fixture(scope="session")
def implementations(design_suite):
    return implement_design_suite(design_suite, jobs=BENCH_JOBS,
                                  artifact_store=BENCH_FLOW_CACHE)


@pytest.fixture(scope="session")
def campaigns(design_suite, implementations):
    config = campaign_config_for(design_suite, num_faults=BENCH_FAULTS)
    return {name: run_campaign(implementations[name], config,
                               backend=BENCH_BACKEND)
            for name in DESIGN_ORDER}
