"""Fixture corpus for the invariant analyzer (repro.devtools.lint).

Every rule gets at least one true-positive snippet that must fire and
one clean snippet that must stay silent — including a verbatim
reconstruction of the PR-7 ``TierStats`` lost-update bug, the incident
the C-series rules codify.  The waiver machinery is round-tripped, and
the final test pins the acceptance criterion: the repository's own
``src/`` tree is clean modulo the checked-in baseline.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import (BaselineError, LintConfig, apply_baseline,
                                 lint_file, load_baseline, run_lint)
from repro.devtools.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def lint_source(tmp_path, source, *, name="repro/other/module.py",
                config=None):
    """Write *source* under tmp_path as *name* and lint that one file."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_file(path, Path(name).as_posix(), config or LintConfig())


def rules_of(findings):
    return sorted(finding.rule for finding in findings)


# ----------------------------------------------------------------------
# D-series: determinism
# ----------------------------------------------------------------------
def test_d101_unsorted_glob_into_fingerprint_fires(tmp_path):
    # The canonical hazard: enumeration order flows into a digest.
    findings = lint_source(tmp_path, """
        import hashlib
        from pathlib import Path

        def tree_fingerprint(root: Path) -> str:
            digest = hashlib.sha1()
            for path in root.glob("**/*.pkl"):
                digest.update(path.read_bytes())
            return digest.hexdigest()
        """)
    assert rules_of(findings) == ["D101"]
    assert findings[0].scope == "tree_fingerprint"
    assert "sorted" in findings[0].hint


def test_d101_os_listdir_fires_and_sorted_is_clean(tmp_path):
    findings = lint_source(tmp_path, """
        import os

        def entries(root):
            return [os.path.join(root, name) for name in os.listdir(root)]
        """)
    assert rules_of(findings) == ["D101"]
    clean = lint_source(tmp_path, """
        import os
        from pathlib import Path

        def entries(root):
            return [name for name in sorted(os.listdir(root))]

        def pickles(root: Path):
            return sorted(root.glob("**/*.pkl"))

        def also_fine(root: Path):
            return sorted(path.name for path in root.rglob("*.json"))
        """)
    assert clean == []


def test_d102_set_iteration_into_sequence_fires(tmp_path):
    findings = lint_source(tmp_path, """
        def order_matters(nets):
            chosen = {net for net in nets if net.used}
            report = []
            for net in chosen:
                report.append(net.name)
            return report, list({1, 2, 3}), [n.id for n in chosen]
        """)
    # for-loop with append, list(set-literal), comprehension over set
    assert rules_of(findings) == ["D102", "D102", "D102"]


def test_d102_sorted_set_iteration_is_clean(tmp_path):
    clean = lint_source(tmp_path, """
        def order_safe(nets):
            chosen = {net for net in nets if net.used}
            if "clk" in {"clk", "rst"}:
                pass
            for net in sorted(chosen):
                print(net)
            return sorted({1, 2, 3})
        """)
    assert clean == []


def test_d102_order_free_sinks_are_exempt_but_sum_is_not(tmp_path):
    # frozenset/min/any consume in an order-free way; sum does not get
    # the exemption because float addition is not associative.
    clean = lint_source(tmp_path, """
        def reductions(weights):
            chosen = {w for w in weights if w.used}
            domains = frozenset(w.domain for w in chosen)
            lightest = min(w.cost for w in chosen)
            return domains, lightest, any(w.bad for w in chosen)
        """)
    assert clean == []
    findings = lint_source(tmp_path, """
        def total(weights):
            chosen = {w for w in weights if w.used}
            return sum(w.cost for w in chosen)
        """)
    assert rules_of(findings) == ["D102"]


def test_d103_builtin_hash_fires(tmp_path):
    findings = lint_source(tmp_path, """
        def shard_of(name: str, shards: int) -> int:
            return hash(name) % shards
        """)
    assert rules_of(findings) == ["D103"]


def test_d104_wall_clock_fires_even_through_alias(tmp_path):
    findings = lint_source(tmp_path, """
        import time as _time
        from datetime import datetime

        def stamp():
            return _time.time(), datetime.now()
        """)
    assert rules_of(findings) == ["D104", "D104"]


def test_d104_monotonic_is_clean(tmp_path):
    clean = lint_source(tmp_path, """
        import time

        def interval():
            start = time.monotonic()
            return time.perf_counter() - start
        """)
    assert clean == []


def test_d105_global_random_fires_seeded_instance_clean(tmp_path):
    findings = lint_source(tmp_path, """
        import random

        def pick(items):
            return random.choice(items)
        """)
    assert rules_of(findings) == ["D105"]
    clean = lint_source(tmp_path, """
        import random

        def pick(items, seed):
            return random.Random(seed).choice(items)
        """)
    assert clean == []


# ----------------------------------------------------------------------
# C-series: concurrency
# ----------------------------------------------------------------------
def test_c201_unlocked_mutation_in_lock_owning_class_fires(tmp_path):
    findings = lint_source(tmp_path, """
        import threading

        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0
                self.items = []

            def add(self, item):
                self.items.append(item)
                self.count += 1
        """)
    assert rules_of(findings) == ["C201", "C201"]
    assert all("with" in finding.hint for finding in findings)


def test_c201_locked_mutation_and_init_are_clean(tmp_path):
    clean = lint_source(tmp_path, """
        import threading

        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0
                self.items = []

            def add(self, item):
                with self._lock:
                    self.items.append(item)
                    self.count += 1
        """)
    assert clean == []


def test_c203_pr7_tierstats_reconstruction_fires(tmp_path):
    # Verbatim shape of the PR-7 TierStats bug: a lock-LESS stats class
    # in a service-shared module bumping counters with a bare += (a
    # read-modify-write that loses updates under threads).  C201 cannot
    # see it — the buggy class owned no lock at all — which is exactly
    # why C203 exists.
    findings = lint_source(tmp_path, """
        import dataclasses

        @dataclasses.dataclass
        class TierStats:
            hits: int = 0
            misses: int = 0
            store_failures: int = 0

            def bump(self, name: str, amount: int = 1) -> None:
                current = getattr(self, name)
                setattr(self, name, current + amount)

            def bump_hit(self) -> None:
                self.hits += 1
        """, name="repro/service/tier.py")
    assert rules_of(findings) == ["C203"]
    assert "TierStats" in findings[0].scope
    assert "lost-update" in findings[0].message


def test_c203_silent_outside_shared_modules(tmp_path):
    # The identical class in a non-shared module is not flagged: C203's
    # scope is the modules documented as shared between service threads.
    clean = lint_source(tmp_path, """
        class TierStats:
            def __init__(self):
                self.hits = 0

            def bump_hit(self):
                self.hits += 1
        """, name="repro/analysis/local_stats.py")
    assert clean == []


def test_c202_blocking_call_in_async_def_fires(tmp_path):
    findings = lint_source(tmp_path, """
        import asyncio
        import time

        async def run_job(job):
            time.sleep(0.1)
            await asyncio.sleep(0.1)
        """)
    assert rules_of(findings) == ["C202"]
    assert "time.sleep" in findings[0].message


def test_c202_sync_helper_inside_async_is_clean(tmp_path):
    clean = lint_source(tmp_path, """
        import time

        async def run_job(job):
            def blocking_helper():
                time.sleep(0.1)
            return blocking_helper
        """)
    assert clean == []


# ----------------------------------------------------------------------
# A-series: atomicity
# ----------------------------------------------------------------------
def test_a301_raw_write_fires(tmp_path):
    findings = lint_source(tmp_path, """
        def save(path, data):
            with open(path, "w") as handle:
                handle.write(data)
        """)
    assert rules_of(findings) == ["A301"]


def test_a301_atomic_pattern_and_reads_are_clean(tmp_path):
    clean = lint_source(tmp_path, """
        import os
        import tempfile

        def load(path):
            with open(path) as handle:
                return handle.read()

        def save_atomic(path, data):
            fd, tmp = tempfile.mkstemp(dir=".")
            with open(tmp, "w") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        """)
    assert clean == []


def test_a302_raw_pickle_dump_fires_atomic_clean(tmp_path):
    findings = lint_source(tmp_path, """
        import pickle

        def store(path, obj):
            with open(path, "wb") as handle:
                pickle.dump(obj, handle)
        """)
    assert rules_of(findings) == ["A301", "A302"]
    clean = lint_source(tmp_path, """
        import os
        import pickle

        def store(path, obj, tmp):
            with open(tmp, "wb") as handle:
                pickle.dump(obj, handle)
            os.replace(tmp, path)
        """)
    assert clean == []


# ----------------------------------------------------------------------
# P-series: picklability / public API
# ----------------------------------------------------------------------
def test_p401_payload_missing_slots_or_frozen_fires(tmp_path):
    findings = lint_source(tmp_path, """
        import dataclasses

        @dataclasses.dataclass(frozen=True)
        class FaultTask:
            index: int

        @dataclasses.dataclass(slots=True)
        class FaultVerdict:
            index: int

        @dataclasses.dataclass(frozen=True, slots=True)
        class Unrelated:
            pass
        """, name="repro/faults/engine.py")
    assert rules_of(findings) == ["P401", "P401"]
    messages = " / ".join(finding.message for finding in findings)
    assert "slots" in messages and "frozen" in messages


def test_p401_non_dataclass_payload_fires(tmp_path):
    findings = lint_source(tmp_path, """
        class FaultResult:
            pass
        """, name="repro/faults/injector.py")
    assert rules_of(findings) == ["P401"]
    assert "not a dataclass" in findings[0].message


def test_p401_compliant_payloads_are_clean(tmp_path):
    clean = lint_source(tmp_path, """
        import dataclasses

        @dataclasses.dataclass(frozen=True, slots=True)
        class FaultTask:
            index: int

        @dataclasses.dataclass(frozen=True, slots=True)
        class FaultVerdict:
            index: int
        """, name="repro/faults/engine.py")
    assert clean == []


def _write_package(tmp_path, init_source, modules):
    package = tmp_path / "src" / "repro"
    package.mkdir(parents=True)
    (package / "__init__.py").write_text(textwrap.dedent(init_source))
    for rel, source in modules.items():
        module = package / rel
        module.parent.mkdir(parents=True, exist_ok=True)
        module.write_text(textwrap.dedent(source))
    return package / "__init__.py"


def test_p402_lazy_export_drift_fires(tmp_path):
    init = _write_package(tmp_path, """
        _PUBLIC_API = {
            "run_campaign": ("repro.faults.campaign", "run_campaign"),
            "gone": ("repro.faults.campaign", "retired_function"),
            "orphan": ("repro.missing_module", "anything"),
        }
        """, {"faults/__init__.py": "",
              "faults/campaign.py": "def run_campaign():\n    pass\n"})
    findings = lint_file(init, "src/repro/__init__.py", LintConfig())
    assert rules_of(findings) == ["P402", "P402"]
    messages = " / ".join(finding.message for finding in findings)
    assert "retired_function" in messages
    assert "does not exist" in messages


def test_p402_valid_exports_are_clean(tmp_path):
    init = _write_package(tmp_path, """
        _PUBLIC_API = {
            "run_campaign": ("repro.faults.campaign", "run_campaign"),
            "Flow": ("repro.faults.campaign", "Flow"),
        }
        """, {"faults/__init__.py": "",
              "faults/campaign.py": """
              def run_campaign():
                  pass

              class Flow:
                  pass
              """})
    assert lint_file(init, "src/repro/__init__.py", LintConfig()) == []


# ----------------------------------------------------------------------
# Waivers
# ----------------------------------------------------------------------
_DIRTY = """
    import time

    def stamp():
        return time.time()
    """


def _baseline(tmp_path, body):
    path = tmp_path / "lint-baseline.toml"
    path.write_text(textwrap.dedent(body))
    return path


def test_waiver_round_trip_suppresses_finding(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text(textwrap.dedent(_DIRTY))
    baseline = _baseline(tmp_path, """
        [[waiver]]
        rule = "D104"
        path = "pkg/mod.py"
        scope = "stamp"
        justification = "documented provenance timestamp"
        """)
    report = run_lint([tmp_path / "pkg"], baseline=baseline,
                      root=tmp_path)
    assert report.exit_code == 0
    assert report.findings == ()
    assert rules_of(report.waived) == ["D104"]


def test_unused_waiver_is_a_w001_finding(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    baseline = _baseline(tmp_path, """
        [[waiver]]
        rule = "D104"
        path = "pkg/mod.py"
        justification = "left over from a deleted function"
        """)
    report = run_lint([tmp_path / "pkg"], baseline=baseline,
                      root=tmp_path)
    assert report.exit_code == 1
    assert rules_of(report.findings) == ["W001"]


def test_unjustified_waiver_is_a_w002_finding(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text(textwrap.dedent(_DIRTY))
    baseline = _baseline(tmp_path, """
        [[waiver]]
        rule = "D104"
        path = "pkg/mod.py"
        """)
    report = run_lint([tmp_path / "pkg"], baseline=baseline,
                      root=tmp_path)
    assert report.exit_code == 1
    assert rules_of(report.findings) == ["W002"]
    # The finding was still waived — W002 gates the *justification*.
    assert rules_of(report.waived) == ["D104"]


def test_malformed_baselines_are_hard_errors(tmp_path):
    for body in (
            "[[waiver]]\nrule = \"NOPE\"\npath = \"x.py\"\n",
            "[[waiver]]\npath = \"x.py\"\n",
            "[[waiver]]\nrule = \"D104\"\npath = \"x.py\"\ntypo = 1\n",
            "waiver = 3\n",
    ):
        with pytest.raises(BaselineError):
            load_baseline(_baseline(tmp_path, body))


def test_apply_baseline_scope_must_match_exactly():
    from repro.devtools.lint import Finding, Waiver
    finding = Finding(rule="D104", path="pkg/mod.py", line=3, col=0,
                      scope="other_function", message="m", hint="h")
    waiver = Waiver(rule="D104", path="pkg/mod.py", scope="stamp",
                    justification="j", index=1)
    kept, waived = apply_baseline([finding], [waiver], "baseline.toml")
    assert waived == []
    assert rules_of(kept) == ["D104", "W001"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_exit_codes_and_json(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text(textwrap.dedent(_DIRTY))

    assert main(["pkg", "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert [finding["rule"] for finding in report["findings"]] == ["D104"]
    assert report["files_checked"] == 1

    # A default-named baseline in the cwd is picked up automatically...
    _baseline(tmp_path, """
        [[waiver]]
        rule = "D104"
        path = "pkg/mod.py"
        scope = "stamp"
        justification = "documented provenance timestamp"
        """)
    assert main(["pkg"]) == 0
    assert "1 waived" in capsys.readouterr().out
    # ...and --no-baseline ignores it again.
    assert main(["pkg", "--no-baseline"]) == 1
    capsys.readouterr()

    assert main(["pkg", "--disable", "D104", "--no-baseline"]) == 0
    capsys.readouterr()

    assert main(["no/such/path"]) == 2
    assert main(["pkg", "--baseline", "missing.toml"]) == 2
    capsys.readouterr()

    assert main(["--list-rules"]) == 0
    listing = capsys.readouterr().out
    for rule_id in ("D101", "C201", "C203", "A301", "P401", "W001"):
        assert rule_id in listing


def test_cli_reports_syntax_errors(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "broken.py").write_text("def oops(:\n")
    assert main(["pkg", "--no-baseline"]) == 1
    assert "ERROR" in capsys.readouterr().out


# ----------------------------------------------------------------------
# The acceptance criterion: this repository is clean
# ----------------------------------------------------------------------
def test_repository_src_tree_is_clean_modulo_baseline():
    report = run_lint([REPO_ROOT / "src"],
                      baseline=REPO_ROOT / "lint-baseline.toml",
                      root=REPO_ROOT)
    assert report.errors == ()
    assert report.findings == (), "\n".join(
        f"{finding.path}:{finding.line}: {finding.rule} {finding.message}"
        for finding in report.findings)
    # Every waiver is exercised (W001 would have fired above otherwise)
    # and the analyzer actually walked the tree.
    assert report.files_checked > 50
    assert len(report.waived) >= 10
