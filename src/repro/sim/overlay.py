"""Fault overlays: non-destructive modifications applied during simulation.

A :class:`FaultOverlay` describes how a single configuration-memory upset
changes the behaviour of the compiled design — without rebuilding or
recompiling the netlist.  The fault-injection manager translates each flipped
bit into one overlay; the simulator interprets it.

Supported effects:

* LUT INIT overrides (a flipped LUT truth-table bit);
* gate-input / flip-flop-input source overrides — read a constant, read a
  different net, or read the wired-AND/wired-OR blend of two nets (routing
  *Open*, *Bridge* and input-mux rewiring effects);
* net overrides — replace a net's value right after its driver writes it
  (routing *Conflict*: two driven wires shorted);
* flip-flop configuration overrides (initial value, clock-enable stuck,
  reset stuck).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..cells import logic

#: Pin/net override kinds.
SOURCE_NET = "net"          # read another net
SOURCE_CONST = "const"      # read a constant (0 / 1 / X)
SOURCE_BLEND = "blend"      # combine two nets (wired-AND / wired-OR / X)

#: Blend modes for shorted signals.
#: ``short`` is the default physical model for two driven signals fighting
#: through a pass transistor: when they agree the value survives, when they
#: disagree the node floats to an indeterminate level and *both* readers see
#: an unknown — which is precisely how a single routing upset can corrupt two
#: TMR domains in the same clock cycle.
BLEND_SHORT = "short"
BLEND_WIRED_AND = "wired_and"
BLEND_WIRED_OR = "wired_or"
#: ``a AND NOT b`` — used when an antenna drives an unused LUT input whose
#: physical truth-table entries are zero (the output is forced low whenever
#: the stray signal is high).
BLEND_AND_NOT = "and_not"
BLEND_UNKNOWN = "unknown"


@dataclasses.dataclass(frozen=True)
class SourceOverride:
    """Replacement source for a gate input, flip-flop input or net value."""

    kind: str
    net_a: int = -1
    net_b: int = -1
    value: int = logic.UNKNOWN
    blend: str = BLEND_WIRED_AND

    @classmethod
    def constant(cls, value: int) -> "SourceOverride":
        return cls(SOURCE_CONST, value=value)

    @classmethod
    def floating(cls) -> "SourceOverride":
        """An open connection: the sink sees an unknown (floating) value."""
        return cls(SOURCE_CONST, value=logic.UNKNOWN)

    @classmethod
    def net(cls, net_index: int) -> "SourceOverride":
        return cls(SOURCE_NET, net_a=net_index)

    @classmethod
    def blend_of(cls, net_a: int, net_b: int,
                 mode: str = BLEND_SHORT) -> "SourceOverride":
        return cls(SOURCE_BLEND, net_a=net_a, net_b=net_b, blend=mode)

    def resolve(self, values: List[int]) -> int:
        """Compute the override value given the current net value array."""
        if self.kind == SOURCE_CONST:
            return self.value
        if self.kind == SOURCE_NET:
            return values[self.net_a] if self.net_a >= 0 else logic.UNKNOWN
        a = values[self.net_a] if self.net_a >= 0 else logic.UNKNOWN
        b = values[self.net_b] if self.net_b >= 0 else logic.UNKNOWN
        if self.blend == BLEND_SHORT:
            return logic.resolve_drivers([a, b])
        if self.blend == BLEND_WIRED_AND:
            return logic.and_(a, b)
        if self.blend == BLEND_WIRED_OR:
            return logic.or_(a, b)
        if self.blend == BLEND_AND_NOT:
            return logic.and_(a, logic.not_(b))
        return logic.UNKNOWN


@dataclasses.dataclass
class FaultOverlay:
    """The complete behavioural effect of one injected configuration upset."""

    #: human-readable description (resource + effect), for reports
    description: str = ""
    #: gate index -> replacement INIT
    lut_init_overrides: Dict[int, int] = dataclasses.field(default_factory=dict)
    #: (gate index, input position) -> override
    gate_pin_overrides: Dict[Tuple[int, int], SourceOverride] = \
        dataclasses.field(default_factory=dict)
    #: (flip-flop index, port name in {"D", "CE", "R"}) -> override
    ff_pin_overrides: Dict[Tuple[int, str], SourceOverride] = \
        dataclasses.field(default_factory=dict)
    #: flip-flop index -> replacement power-up value
    ff_init_overrides: Dict[int, int] = dataclasses.field(default_factory=dict)
    #: net index -> override applied right after the net's driver writes it
    net_overrides: Dict[int, SourceOverride] = \
        dataclasses.field(default_factory=dict)
    #: (output port name, bit) -> override applied when sampling outputs
    #: (models routing upsets between the last logic and the output pad)
    output_pin_overrides: Dict[Tuple[str, int], SourceOverride] = \
        dataclasses.field(default_factory=dict)
    #: number of combinational settle passes per cycle (shorts can create
    #: backward dependencies; extra passes let them converge)
    comb_passes: int = 1
    #: nets where the fault first manifests (seed of the fault cone)
    seed_nets: List[int] = dataclasses.field(default_factory=list)

    def is_empty(self) -> bool:
        """True when the upset provably cannot change any net value."""
        return not (self.lut_init_overrides or self.gate_pin_overrides or
                    self.ff_pin_overrides or self.ff_init_overrides or
                    self.net_overrides or self.output_pin_overrides)

    def required_passes(self) -> int:
        """Settle passes needed: more than one when shorts are present."""
        if self.net_overrides or any(
                o.kind == SOURCE_BLEND or o.kind == SOURCE_NET
                for o in list(self.gate_pin_overrides.values())
                + list(self.ff_pin_overrides.values())):
            return max(self.comb_passes, 3)
        return self.comb_passes
