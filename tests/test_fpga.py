"""Tests for the FPGA device model, routing fabric and configuration layout."""

import pytest

from repro.fpga import (LUT_BITS, SLICE_CFG_BITS, ConfigLayout, ConfigMemory,
                        Device, DeviceSpec, device_by_name, downhill,
                        incoming_wires, ipin, lut_bit, node_tile, opin,
                        pad_input, pad_output, pip_resource, pips_into_tile,
                        slice_cfg, smallest_device_for, wire)
from repro.fpga.config import TILE_LOGIC_BITS
from repro.fpga.routing import (node_name, opin_wire_indices, pip_tile,
                                wire_far_end)


@pytest.fixture(scope="module")
def tiny():
    return device_by_name("TINY")


@pytest.fixture(scope="module")
def layout(tiny):
    return ConfigLayout(tiny)


class TestDevice:
    def test_profiles_exist(self):
        for name in ("XC2S200E", "XC2S600E", "XC2S50E", "XC2S15E", "TINY"):
            device = device_by_name(name)
            assert device.spec.name == name
        with pytest.raises(KeyError):
            device_by_name("XCMISSING")

    def test_paper_profile_geometry(self):
        device = device_by_name("XC2S200E")
        # the paper: an array of 28 x 42 slices, frames of 576 bits
        assert device.spec.num_slices == 28 * 42
        assert device.spec.frame_bits == 576

    def test_bounds_and_neighbors(self, tiny):
        assert tiny.in_bounds(0, 0)
        assert not tiny.in_bounds(-1, 0)
        assert not tiny.in_bounds(tiny.columns, 0)
        assert tiny.neighbor(0, 0, "E") == (1, 0)
        assert tiny.neighbor(0, 0, "W") is None
        assert tiny.wire_exists(0, 0, "N")
        assert not tiny.wire_exists(0, 0, "S")

    def test_perimeter_and_pads(self, tiny):
        perimeter = tiny.perimeter_tiles()
        assert len(set(perimeter)) == len(perimeter)
        expected_tiles = 2 * tiny.columns + 2 * (tiny.rows - 2)
        assert len(perimeter) == expected_tiles
        assert tiny.num_pads == expected_tiles * tiny.spec.pads_per_tile
        corner_pads = tiny.pads_at(0, 0)
        assert len(corner_pads) == tiny.spec.pads_per_tile

    def test_manhattan(self, tiny):
        assert tiny.manhattan((0, 0), (3, 4)) == 7

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", columns=1, rows=5)
        with pytest.raises(ValueError):
            DeviceSpec("bad", columns=5, rows=5, wires_per_direction=1)

    def test_smallest_device_for(self):
        small = smallest_device_for(num_luts=50, num_ffs=10)
        large = smallest_device_for(num_luts=4000, num_ffs=500)
        assert small.spec.num_tiles < large.spec.num_tiles


class TestRoutingFabric:
    def test_wire_far_end(self, tiny):
        assert wire_far_end(tiny, wire(1, 1, "E", 0)) == (2, 1)
        assert wire_far_end(tiny, wire(0, 0, "W", 0)) is None

    def test_incoming_wires_interior_tile(self, tiny):
        arriving = incoming_wires(tiny, 2, 2)
        assert len(arriving) == 4 * tiny.spec.wires_per_direction
        # every arriving wire terminates here
        assert all(wire_far_end(tiny, node) == (2, 2) for node in arriving)

    def test_opin_downhill_reaches_wires_and_local_pins(self, tiny):
        neighbors = downhill(tiny, opin(2, 2, "X"))
        kinds = {node[0] for node in neighbors}
        assert "wire" in kinds and "ipin" in kinds
        wire_targets = [node for node in neighbors if node[0] == "wire"]
        assert all(node[1] == 2 and node[2] == 2 for node in wire_targets)

    def test_wire_downhill_no_uturn(self, tiny):
        neighbors = downhill(tiny, wire(1, 2, "E", 3))
        for node in neighbors:
            if node[0] == "wire":
                assert node[:3] == ("wire", 2, 2)
                assert node[3] != "W"   # no U-turn back towards (1, 2)

    def test_sink_nodes_have_no_downhill(self, tiny):
        assert downhill(tiny, ipin(2, 2, "F1")) == []
        assert downhill(tiny, pad_input(0)) == []

    def test_pad_output_drives_fabric(self, tiny):
        neighbors = downhill(tiny, pad_output(0))
        assert any(node[0] == "wire" for node in neighbors)

    def test_pips_into_tile_destinations_local(self, tiny):
        pips = pips_into_tile(tiny, 2, 2)
        assert pips
        assert len(set(pips)) == len(pips)    # canonical list has no dupes
        for source, destination in pips:
            assert node_tile(tiny, destination) == (2, 2)

    def test_downhill_consistent_with_pip_enumeration(self, tiny):
        """Every edge the router can take must own a configuration bit."""
        destination_tiles = {}
        for x, y in tiny.tiles():
            destination_tiles[(x, y)] = set(pips_into_tile(tiny, x, y))
        for node in (opin(2, 2, "X"), wire(1, 2, "E", 5), wire(2, 2, "N", 0),
                     pad_output(0)):
            for neighbor in downhill(tiny, node):
                tile = node_tile(tiny, neighbor)
                assert (node, neighbor) in destination_tiles[tile], \
                    f"PIP {node} -> {neighbor} has no configuration bit"

    def test_opin_wire_indices_width(self, tiny):
        for pin in ("X", "Y", "XQ", "YQ"):
            indices = opin_wire_indices(tiny, pin)
            assert len(indices) == 4
            assert all(0 <= i < tiny.spec.wires_per_direction
                       for i in indices)

    def test_node_name_and_pip_tile(self, tiny):
        assert "wire" in node_name(wire(1, 1, "N", 2))
        assert pip_tile(tiny, (opin(1, 1, "X"), wire(1, 1, "E", 0))) == (1, 1)


class TestConfigLayout:
    def test_total_bits_positive_and_routing_dominates(self, tiny, layout):
        assert layout.total_bits > 0
        routing_bits = layout.routing_bit_count()
        assert routing_bits / layout.total_bits > 0.75

    def test_frames(self, layout):
        assert layout.num_frames == (layout.total_bits +
                                     layout.frame_bits - 1) \
            // layout.frame_bits
        assert layout.frame_of(0) == 0

    def test_bit_resource_round_trip_logic(self, tiny, layout):
        resource = lut_bit(1, 1, "G", 7)
        bit = layout.bit_of(resource)
        assert layout.resource_of(bit) == resource
        cfg = slice_cfg(2, 3, "FFX_DMUX")
        assert layout.resource_of(layout.bit_of(cfg)) == cfg

    def test_bit_resource_round_trip_pips(self, tiny, layout):
        pips = pips_into_tile(tiny, 2, 2)
        for pip in (pips[0], pips[len(pips) // 2], pips[-1]):
            resource = pip_resource(pip)
            assert layout.resource_of(layout.bit_of(resource)) == resource

    def test_every_bit_decodes(self, tiny, layout):
        # exhaustively decode one tile's bit range
        base = layout.tile_base(1, 1)
        for offset in range(layout.tile_bits(1, 1)):
            resource = layout.resource_of(base + offset)
            if resource[0] == "pip":
                assert node_tile(tiny, resource[2]) == (1, 1)
            else:
                assert resource[1] == 1 and resource[2] == 1

    def test_out_of_range_rejected(self, layout):
        with pytest.raises(IndexError):
            layout.resource_of(layout.total_bits)
        with pytest.raises(KeyError):
            layout.bit_of(("pip", ("opin", 0, 0, "X"),
                           ("wire", 3, 3, "E", 0)))

    def test_tile_logic_bits_constant(self):
        assert TILE_LOGIC_BITS == 2 * LUT_BITS + len(SLICE_CFG_BITS)


class TestConfigMemory:
    def test_set_get_flip(self, layout):
        memory = ConfigMemory(layout)
        memory.set_bit(5)
        assert memory.get_bit(5) == 1
        assert memory.flip_bit(5) == 0
        assert memory.count_programmed() == 0

    def test_resource_access_and_difference(self, tiny, layout):
        memory = ConfigMemory(layout)
        resource = lut_bit(0, 0, "F", 3)
        memory.set_resource(resource)
        assert memory.get_resource(resource) == 1
        copy = memory.copy()
        copy.flip_bit(layout.bit_of(resource))
        assert memory.difference(copy) == [layout.bit_of(resource)]

    def test_programmed_bits_and_frame_view(self, layout):
        memory = ConfigMemory(layout)
        memory.set_bit(1)
        memory.set_bit(10)
        assert memory.programmed_bits() == [1, 10]
        frame = memory.frame_view(0)
        assert frame[1] == 1 and frame[2] == 0
