"""Benchmark: implementation-flow throughput (seed flow vs fast flow).

Measures, per suite design, the seed place-and-route flow (the tuple-based
PathFinder router, swap-and-recompute annealer and linear-scan bit
accounting preserved in :mod:`repro.pnr.reference`) against

* the **cold** fast flow — integer-indexed routing graph, incremental
  annealing, memoized PIP tables, nothing on disk yet, and
* the **warm** flow — a second run served entirely from the persistent
  flow-artifact store.

The numbers land in ``BENCH_flow.json`` at the repository root (per-design
seconds, route-iteration counts, totals and speedups) so the flow's
performance trajectory is tracked across PRs;
``benchmarks/check_regression.py`` gates CI on the normalized speedups.
Every measured implementation is also asserted bit-identical across the
three flows — the benchmark doubles as the suite-scale golden-equivalence
test.

Knobs: ``REPRO_BENCH_SCALE`` selects the suite scale (see conftest);
``REPRO_BENCH_FLOW_MIN_SPEEDUP`` / ``REPRO_BENCH_FLOW_WARM_MIN_SPEEDUP``
relax the local acceptance bars on noisy shared runners.
"""

import json
import os
import time

from repro.experiments import DESIGN_ORDER, device_for
from repro.fpga.bitgen import generate_bitstream
from repro.fpga.config import ConfigLayout, clear_layout_cache
from repro.fpga.routing import clear_routing_graph_cache
from repro.pnr import FlowArtifactStore, estimate_timing, implement, pack
from repro.pnr.reference import (reference_bit_stats, reference_place,
                                 reference_route_design)

#: Required cold-flow speedup over the seed flow (locally ~2.5x; shared CI
#: runners relax the bar via the env knob, the regression gate compares
#: normalized speedups instead).
MIN_COLD_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_FLOW_MIN_SPEEDUP", "2.0"))

#: Required warm (cache-hit) speedup over the seed flow: a hit unpickles
#: an artifact instead of placing and routing, locally 30x+.
MIN_WARM_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_FLOW_WARM_MIN_SPEEDUP", "10.0"))

#: written into the session's ``bench_out_dir`` (committed baselines are
#: only overwritten under ``--update-baselines``)
BENCH_NAME = "BENCH_flow.json"


def _seed_implement(suite, name):
    """The seed flow, stage by stage, on fresh per-design caches."""
    definition = suite.flat[name]
    device = device_for(suite, name)
    packed = pack(definition)
    placement = reference_place(
        definition, packed, device, seed=1,
        anneal_moves_per_slice=suite.scale.anneal_moves_per_slice)
    routing = reference_route_design(definition, packed, placement, device,
                                     max_iterations=20)
    timing = estimate_timing(definition, placement)
    layout = ConfigLayout(device)  # the seed built a fresh layout per design
    bitstream, resources, layout = generate_bitstream(
        definition, device, packed, placement, routing, layout)
    stats = reference_bit_stats(device, layout, resources.lut_sites,
                                resources.ff_sites, resources.used_slices,
                                routing)
    assert stats == resources.stats
    return {
        "placement": placement,
        "routing": routing,
        "timing": timing,
        "bitstream": bitstream,
        "stats": stats,
    }


def _fast_implement(suite, name, store):
    definition = suite.flat[name]
    device = device_for(suite, name)
    return implement(
        definition, device, seed=1,
        anneal_moves_per_slice=suite.scale.anneal_moves_per_slice,
        artifact_store=store)


def _timed(thunk):
    start = time.perf_counter()
    value = thunk()
    return value, time.perf_counter() - start


def test_flow_throughput(benchmark, design_suite, tmp_path_factory,
                         bench_out_dir):
    suite = design_suite
    store = FlowArtifactStore(tmp_path_factory.mktemp("flow-artifacts"))

    seed_results = {}
    seed_seconds = {}
    for name in DESIGN_ORDER:
        seed_results[name], seed_seconds[name] = _timed(
            lambda name=name: _seed_implement(suite, name))

    # Cold: empty artifact store, no memoized routing graphs or layouts.
    clear_routing_graph_cache()
    clear_layout_cache()
    cold_results = {}
    cold_seconds = {}
    for name in DESIGN_ORDER:
        cold_results[name], cold_seconds[name] = _timed(
            lambda name=name: _fast_implement(suite, name, store))
    assert store.stats.misses == len(DESIGN_ORDER)
    assert store.stats.stores == len(DESIGN_ORDER)

    # Warm: every design served from the on-disk store.
    warm_results = {}
    warm_seconds = {}
    for name in DESIGN_ORDER:
        warm_results[name], warm_seconds[name] = _timed(
            lambda name=name: _fast_implement(suite, name, store))
    assert store.stats.hits == len(DESIGN_ORDER)

    # Suite-scale golden equivalence: seed == cold == warm, bit for bit.
    for name in DESIGN_ORDER:
        seed = seed_results[name]
        cold = cold_results[name]
        warm = warm_results[name]
        assert seed["placement"].slice_tiles == cold.placement.slice_tiles
        assert seed["placement"].port_pads == cold.placement.port_pads
        assert {n: t.parent for n, t in seed["routing"].routes.items()} == \
            {n: t.parent for n, t in cold.routing.routes.items()}
        assert seed["routing"].pip_owner == cold.routing.pip_owner
        assert seed["stats"] == cold.resources.stats
        assert seed["timing"] == cold.timing
        assert bytes(seed["bitstream"].bits) == bytes(cold.bitstream.bits)
        assert bytes(warm.bitstream.bits) == bytes(cold.bitstream.bits)
        assert {n: t.parent for n, t in warm.routing.routes.items()} == \
            {n: t.parent for n, t in cold.routing.routes.items()}

    payload = {
        "scale": suite.scale.name,
        "anneal_moves_per_slice": suite.scale.anneal_moves_per_slice,
        "router_iterations": 20,
        "designs": {},
    }
    for name in DESIGN_ORDER:
        routing = cold_results[name].routing
        payload["designs"][name] = {
            "seed_seconds": round(seed_seconds[name], 4),
            "cold_seconds": round(cold_seconds[name], 4),
            "warm_seconds": round(warm_seconds[name], 4),
            "cold_speedup_vs_seed": round(
                seed_seconds[name] / cold_seconds[name], 2),
            "warm_speedup_vs_seed": round(
                seed_seconds[name] / warm_seconds[name], 2),
            "route_iterations": routing.iterations,
            "routed_nets": len(routing.routes),
            "slices": cold_results[name].slice_count,
        }
    seed_total = sum(seed_seconds.values())
    cold_total = sum(cold_seconds.values())
    warm_total = sum(warm_seconds.values())
    payload["totals"] = {
        "seed_seconds": round(seed_total, 4),
        "cold_seconds": round(cold_total, 4),
        "warm_seconds": round(warm_total, 4),
        "cold_speedup_vs_seed": round(seed_total / cold_total, 2),
        "warm_speedup_vs_seed": round(seed_total / warm_total, 2),
    }

    (bench_out_dir / BENCH_NAME).write_text(
        json.dumps(payload, indent=2) + "\n")
    benchmark.extra_info["flow"] = payload
    benchmark.pedantic(lambda: payload, rounds=1, iterations=1)

    assert payload["totals"]["cold_speedup_vs_seed"] >= MIN_COLD_SPEEDUP, \
        payload["totals"]
    assert payload["totals"]["warm_speedup_vs_seed"] >= MIN_WARM_SPEEDUP, \
        payload["totals"]
