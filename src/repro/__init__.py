"""repro — reproduction of "On the Optimal Design of Triple Modular
Redundancy Logic for SRAM-based FPGAs" (Kastensmidt, Sterpone, Carro,
Sonza Reorda — DATE 2005).

The package provides, bottom-up:

* :mod:`repro.netlist` — a SpyDrNet-style netlist IR with hierarchy,
  traversal and flattening;
* :mod:`repro.cells` — the FPGA primitive cell library (LUTs, flip-flops,
  I/O) with behavioural models;
* :mod:`repro.techmap` — gate-to-LUT lowering and LUT packing;
* :mod:`repro.rtl` — structural generators including the paper's 11-tap FIR
  filter case study;
* :mod:`repro.core` — the paper's contribution: TMR insertion with
  configurable voter partitioning;
* :mod:`repro.fpga` — an island-style FPGA device model with a
  frame-addressed configuration memory and bitstream generation;
* :mod:`repro.pnr` — packing, placement and routing onto the device model;
* :mod:`repro.sim` — a three-valued levelized simulator;
* :mod:`repro.faults` — bitstream fault injection, effect classification and
  campaign management;
* :mod:`repro.analysis` — resource/robustness reports (paper Tables 2-4);
* :mod:`repro.experiments` — drivers that regenerate every table and figure;
* :mod:`repro.pipeline` — the declarative experiment pipeline engine
  (fingerprint-keyed stages over flow/campaign caches);
* :mod:`repro.scenarios` — the scenario registry and ``run_scenario``
  (the ``python -m repro run <scenario>`` surface).

The pipeline/scenario surface is re-exported lazily at the package level::

    from repro import run_scenario
    report = run_scenario("table3-fir", scale="smoke")
"""

__version__ = "1.1.0"

#: Package-level name -> (module, attribute) for the lazy public API.
_PUBLIC_API = {
    "Pipeline": ("repro.pipeline", "Pipeline"),
    "PipelineContext": ("repro.pipeline", "PipelineContext"),
    "REPORT_SCHEMA": ("repro.pipeline", "REPORT_SCHEMA"),
    "Stage": ("repro.pipeline", "Stage"),
    "STAGE_LIBRARY": ("repro.pipeline", "STAGE_LIBRARY"),
    "pipeline_for": ("repro.pipeline", "pipeline_for"),
    "render_markdown": ("repro.pipeline", "render_markdown"),
    "stable_report": ("repro.pipeline", "stable_report"),
    "DefeatMap": ("repro.analysis.layout", "DefeatMap"),
    "LayoutAnalyzer": ("repro.analysis.layout", "LayoutAnalyzer"),
    "defeat_map_for": ("repro.analysis.layout", "defeat_map_for"),
    "Scenario": ("repro.scenarios", "Scenario"),
    "SCENARIOS": ("repro.scenarios", "SCENARIOS"),
    "list_scenarios": ("repro.scenarios", "list_scenarios"),
    "register_scenario": ("repro.scenarios", "register_scenario"),
    "run_scenario": ("repro.scenarios", "run_scenario"),
    "scenario_by_name": ("repro.scenarios", "scenario_by_name"),
}

__all__ = ["__version__"] + sorted(_PUBLIC_API)


def __getattr__(name):
    """Lazily resolve the pipeline/scenario API (keeps ``import repro``
    light for callers that only want the low-level layers)."""
    try:
        module_name, attribute = _PUBLIC_API[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)


def __dir__():
    return sorted(set(globals()) | set(_PUBLIC_API))
