"""Benchmark reproducing Table 3: fault-injection campaign results.

Paper numbers (wrong answers per injected upset): standard 97.10%,
TMR_p1 4.03%, TMR_p2 0.98%, TMR_p3 1.56%, TMR_p3_nv 12.60%.

Absolute percentages depend on the fault-list composition (our fault list
also contains provably benign bits, which dilutes every row — see
EXPERIMENTS.md); the claims checked here are the paper's qualitative ones:

* the unprotected filter is at least an order of magnitude more vulnerable
  than every TMR version;
* TMR with unvoted registers (TMR_p3_nv) is clearly the worst TMR version;
* the voted-register partitions (p1/p2/p3) keep the wrong-answer rate low;
* the medium partition is never beaten by the minimum partition by more than
  noise (the paper's optimum is TMR_p2).
"""

from repro.experiments import DESIGN_ORDER, PAPER_TABLE3_PERCENT
from repro.faults import table3_report


def test_table3_campaigns(benchmark, campaigns):
    results = benchmark.pedantic(lambda: campaigns, rounds=1, iterations=1)

    percent = {name: results[name].wrong_answer_percent
               for name in DESIGN_ORDER}
    benchmark.extra_info["table3_measured_percent"] = {
        name: round(value, 3) for name, value in percent.items()}
    benchmark.extra_info["table3_paper_percent"] = PAPER_TABLE3_PERCENT
    benchmark.extra_info["report"] = table3_report(
        results, order=DESIGN_ORDER, paper_reference=PAPER_TABLE3_PERCENT)

    # The unprotected filter is far worse than any TMR version (the paper
    # measures 97% vs 0.98-12.6%; our fault list contains more provably
    # benign bits, which shrinks every percentage but keeps the ordering).
    for name in ("TMR_p1", "TMR_p2", "TMR_p3", "TMR_p3_nv"):
        assert percent["standard"] > 3 * max(percent[name], 0.01), name

    # Unvoted registers are the weakest TMR configuration.
    assert percent["TMR_p3_nv"] >= percent["TMR_p2"]
    assert percent["TMR_p3_nv"] >= percent["TMR_p3"]

    # Voted-register TMR keeps the wrong-answer rate far below the
    # unprotected filter (paper: 0.98 - 4.03% vs 97%).  The factor is kept
    # modest because each TMR row contains only a handful of error events at
    # the default sampling rate.
    for name in ("TMR_p1", "TMR_p2", "TMR_p3"):
        assert percent[name] < percent["standard"] / 3

    # The medium partition is the paper's optimum; allow statistical noise
    # but it must never lose badly to the minimum partition.
    assert percent["TMR_p2"] <= percent["TMR_p3"] + 1.0


def test_headline_improvement_ratio(benchmark, campaigns):
    """Section 1/5 headline: the optimal partition reduces the uncovered
    routing upsets roughly four-fold versus the maximum partition and clearly
    versus the unpartitioned/unvoted version."""
    from repro.analysis import best_partition, improvement_factor

    def compute():
        tmr_only = {name: campaigns[name]
                    for name in ("TMR_p1", "TMR_p2", "TMR_p3", "TMR_p3_nv")}
        return {
            "best": best_partition(tmr_only),
            "p3nv_over_p2": improvement_factor(campaigns, "TMR_p3_nv",
                                               "TMR_p2"),
            "standard_over_p2": improvement_factor(campaigns, "standard",
                                                   "TMR_p2"),
        }

    derived = benchmark.pedantic(compute, rounds=1, iterations=1)
    benchmark.extra_info["headline"] = {
        key: (value if isinstance(value, str) else round(value, 2))
        for key, value in derived.items()}

    # The best partition is one of the voted-register versions, never the
    # unvoted one.
    assert derived["best"] != "TMR_p3_nv"
    # Partitioned, voted TMR beats the unvoted version by a clear factor.
    assert derived["p3nv_over_p2"] >= 1.5
    assert derived["standard_over_p2"] >= 10
