"""Tests for the primitive cell library, LUT INITs and behavioural models."""

import pytest

from repro.cells import (CELL_INFO, INIT_AND2, INIT_BUF, INIT_INV, INIT_MAJ3,
                         INIT_MUX2, INIT_VOTER, INIT_XOR2, INIT_XOR3,
                         build_cell_library, cell_info, combinational_output,
                         init_from_function, init_from_truth_table,
                         is_flip_flop, is_lut, logic, lut_cell_for_inputs,
                         lut_input_count, named_init, sequential_next_state,
                         shared_cell_library, truth_table)
from repro.netlist.ir import Definition, Direction


class TestLogic:
    def test_basic_gates(self):
        assert logic.and_(1, 1) == 1
        assert logic.and_(1, 0) == 0
        assert logic.or_(0, 0) == 0
        assert logic.or_(0, 1) == 1
        assert logic.xor_(1, 1) == 0
        assert logic.not_(0) == 1

    def test_is_known(self):
        assert logic.is_known(logic.ZERO)
        assert logic.is_known(logic.ONE)
        assert not logic.is_known(logic.UNKNOWN)
        # Equality, not identity: 2.0 is a distinct object (no small-int
        # interning for floats) that equals UNKNOWN, so it is unknown.
        assert 2.0 is not logic.UNKNOWN
        assert not logic.is_known(2.0)

    def test_unknown_propagation(self):
        x = logic.UNKNOWN
        assert logic.and_(x, 0) == 0          # controlled by the zero
        assert logic.and_(x, 1) == x
        assert logic.or_(x, 1) == 1
        assert logic.or_(x, 0) == x
        assert logic.xor_(x, 1) == x
        assert logic.not_(x) == x

    def test_majority_masks_single_unknown(self):
        x = logic.UNKNOWN
        assert logic.majority(1, 1, x) == 1
        assert logic.majority(0, x, 0) == 0
        assert logic.majority(x, x, 1) == x

    def test_majority_truth_table(self):
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    assert logic.majority(a, b, c) == \
                        (1 if a + b + c >= 2 else 0)

    def test_mux_with_unknown_select(self):
        x = logic.UNKNOWN
        assert logic.mux(x, 1, 1) == 1   # both branches agree
        assert logic.mux(x, 0, 1) == x

    def test_resolve_drivers(self):
        assert logic.resolve_drivers([]) == logic.UNKNOWN
        assert logic.resolve_drivers([1]) == 1
        assert logic.resolve_drivers([1, 1]) == 1
        assert logic.resolve_drivers([1, 0]) == logic.UNKNOWN

    def test_int_bit_conversions(self):
        assert logic.int_to_bits(5, 4) == [1, 0, 1, 0]
        assert logic.bits_to_int([1, 0, 1, 0]) == 5
        assert logic.int_to_bits(-1, 4) == [1, 1, 1, 1]
        with pytest.raises(ValueError):
            logic.bits_to_int([logic.UNKNOWN])

    def test_char_round_trip(self):
        for value in logic.VALUES:
            assert logic.from_char(logic.to_char(value)) == value
        with pytest.raises(ValueError):
            logic.from_char("z")

    def test_word_to_string_msb_first(self):
        assert logic.word_to_string([1, 0, logic.UNKNOWN]) == "X01"


class TestLutEval:
    def test_lut_eval_known(self):
        assert logic.lut_eval(INIT_AND2, [1, 1], 2) == 1
        assert logic.lut_eval(INIT_AND2, [1, 0], 2) == 0
        assert logic.lut_eval(INIT_XOR3, [1, 1, 1], 3) == 1

    def test_lut_eval_unknown_masked(self):
        x = logic.UNKNOWN
        # AND with a controlling zero: result known despite the X
        assert logic.lut_eval(INIT_AND2, [0, x], 2) == 0
        # XOR with an X: unknown
        assert logic.lut_eval(INIT_XOR2, [1, x], 2) == x
        # Majority voter with one X and two agreeing inputs: known
        assert logic.lut_eval(INIT_MAJ3, [1, 1, x], 3) == 1

    def test_lut_eval_wrong_arity(self):
        with pytest.raises(ValueError):
            logic.lut_eval(INIT_AND2, [1], 2)


class TestInits:
    def test_init_from_function_round_trip(self):
        init = init_from_function(lambda a, b: a | b, 2)
        assert truth_table(init, 2) == [0, 1, 1, 1]

    def test_init_from_truth_table(self):
        init = init_from_truth_table([0, 1, 1, 0], 2)
        assert init == INIT_XOR2
        with pytest.raises(ValueError):
            init_from_truth_table([0, 1], 2)

    def test_voter_is_majority(self):
        assert INIT_VOTER == INIT_MAJ3
        for address in range(8):
            bits = [(address >> k) & 1 for k in range(3)]
            expected = 1 if sum(bits) >= 2 else 0
            assert (INIT_MAJ3 >> address) & 1 == expected

    def test_mux_init(self):
        # I2 is the select: address = i0 + 2*i1 + 4*sel
        for i0 in (0, 1):
            for i1 in (0, 1):
                assert (INIT_MUX2 >> (i0 + 2 * i1)) & 1 == i0
                assert (INIT_MUX2 >> (i0 + 2 * i1 + 4)) & 1 == i1

    def test_named_init_lookup(self):
        assert named_init("XOR2") == INIT_XOR2
        with pytest.raises(ValueError):
            named_init("NOPE")

    def test_buffer_and_inverter(self):
        assert truth_table(INIT_BUF, 1) == [0, 1]
        assert truth_table(INIT_INV, 1) == [1, 0]


class TestCellLibrary:
    def test_all_cells_have_info(self):
        library = build_cell_library()
        for name in library.definitions:
            assert cell_info(name).name == name

    def test_lut_classification(self):
        assert is_lut("LUT4") and not is_lut("FD")
        assert is_flip_flop("FDRE") and not is_flip_flop("LUT1")
        assert lut_input_count("LUT3") == 3
        with pytest.raises(ValueError):
            lut_input_count("FD")

    def test_lut_cell_for_inputs(self):
        library = shared_cell_library()
        assert lut_cell_for_inputs(library, 2).name == "LUT2"
        with pytest.raises(ValueError):
            lut_cell_for_inputs(library, 5)

    def test_port_directions(self):
        library = build_cell_library()
        lut4 = library.definitions["LUT4"]
        assert lut4.ports["O"].direction is Direction.OUTPUT
        assert lut4.ports["I3"].direction is Direction.INPUT
        fd = library.definitions["FD"]
        assert set(fd.ports) == {"C", "D", "Q"}

    def test_shared_library_is_singleton(self):
        assert shared_cell_library() is shared_cell_library()


class TestEvaluate:
    def _instance(self, cell, **props):
        library = shared_cell_library()
        top = Definition("top")
        inst = top.add_instance(library.definitions[cell], "u")
        inst.properties.update(props)
        return inst

    def test_lut_output(self):
        inst = self._instance("LUT2", INIT=INIT_AND2)
        assert combinational_output(inst, {"I0": 1, "I1": 1}) == 1
        assert combinational_output(inst, {"I0": 1, "I1": 0}) == 0

    def test_constants_and_buffers(self):
        assert combinational_output(self._instance("GND"), {}) == 0
        assert combinational_output(self._instance("VCC"), {}) == 1
        assert combinational_output(self._instance("BUFG"), {"I": 1}) == 1

    def test_ff_returns_none_for_combinational(self):
        inst = self._instance("FD")
        assert combinational_output(inst, {}) is None

    def test_fd_next_state(self):
        inst = self._instance("FD")
        assert sequential_next_state(inst, {"D": 1}, 0) == 1

    def test_fdre_enable_and_reset(self):
        inst = self._instance("FDRE")
        assert sequential_next_state(inst, {"D": 1, "CE": 0, "R": 0}, 0) == 0
        assert sequential_next_state(inst, {"D": 1, "CE": 1, "R": 0}, 0) == 1
        assert sequential_next_state(inst, {"D": 1, "CE": 1, "R": 1}, 1) == 0

    def test_fdce_clear(self):
        inst = self._instance("FDCE")
        assert sequential_next_state(inst, {"D": 1, "CE": 1, "CLR": 1},
                                     1) == 0

    def test_string_init_accepted(self):
        inst = self._instance("LUT2", INIT="0x8")
        assert combinational_output(inst, {"I0": 1, "I1": 1}) == 1
