"""Tests for packing, placement, routing, timing and the implement flow."""

import pytest

from repro.fpga import device_by_name
from repro.fpga.device import FF_PAIRED_LUT
from repro.netlist import flatten
from repro.pnr import (Floorplan, RoutingError, estimate_timing, implement,
                       pack, place, route_design)
from repro.pnr.route import extract_routing_problem


class TestPack:
    def test_pack_counts(self, tiny_fir_flat):
        result = pack(tiny_fir_flat)
        counts = tiny_fir_flat.count_primitives()
        expected_luts = sum(v for k, v in counts.items()
                            if k.startswith("LUT"))
        expected_ffs = sum(v for k, v in counts.items() if k == "FD")
        assert result.num_luts == expected_luts
        assert result.num_ffs == expected_ffs
        assert result.num_slices <= expected_luts + expected_ffs

    def test_every_cell_has_a_unique_site(self, tiny_fir_flat):
        result = pack(tiny_fir_flat)
        sites = list(result.cell_site.values())
        assert len(sites) == len(set(sites))
        for slice_assignment in result.slices:
            assert slice_assignment.lut_count() <= 2
            assert slice_assignment.ff_count() <= 2

    def test_ff_paired_with_driving_lut(self):
        # The FIR delay line has no LUT->FF edges, so use a counter (the
        # increment LUT drives the state flip-flop directly).
        from repro.netlist import Netlist, flatten as flatten_netlist
        from repro.rtl import up_counter

        netlist = Netlist("pair")
        counter = up_counter(netlist, 4)
        netlist.set_top(counter)
        flat = flatten_netlist(netlist, counter)
        result = pack(flat)
        paired = 0
        for slice_assignment in result.slices:
            for ff_slot in slice_assignment.direct_ff_data:
                lut_slot = FF_PAIRED_LUT[ff_slot]
                assert lut_slot in slice_assignment.cells
                paired += 1
        assert paired > 0

    def test_pack_rejects_hierarchy(self, tiny_fir):
        _netlist, _spec, top, _components = tiny_fir
        with pytest.raises(Exception):
            pack(top)


class TestPlace:
    def test_all_slices_get_distinct_tiles(self, tiny_fir_flat, small_device):
        packed = pack(tiny_fir_flat)
        placement = place(tiny_fir_flat, packed, small_device)
        assert len(placement.slice_tiles) == packed.num_slices
        assert len(set(placement.slice_tiles)) == packed.num_slices
        for tile in placement.slice_tiles:
            assert small_device.in_bounds(*tile)

    def test_all_ports_get_distinct_pads(self, tiny_fir_flat, small_device):
        packed = pack(tiny_fir_flat)
        placement = place(tiny_fir_flat, packed, small_device)
        pads = list(placement.port_pads.values())
        assert len(pads) == len(set(pads))
        expected_bits = sum(port.width
                            for port in tiny_fir_flat.ports.values())
        assert len(pads) == expected_bits

    def test_annealing_does_not_increase_wirelength(self, tiny_fir_flat,
                                                    small_device):
        packed = pack(tiny_fir_flat)
        baseline = place(tiny_fir_flat, packed, small_device,
                         anneal_moves_per_slice=0)
        annealed = place(tiny_fir_flat, packed, small_device,
                         anneal_moves_per_slice=10)
        assert annealed.wirelength <= baseline.wirelength * 1.05

    def test_design_too_large_rejected(self, tiny_fir_flat, tiny_device):
        packed = pack(tiny_fir_flat)
        with pytest.raises(ValueError):
            place(tiny_fir_flat, packed, tiny_device)

    def test_floorplan_separates_domains(self, tiny_fir, tiny_tmr_suite):
        netlist, _spec, _top, _components = tiny_fir
        flat = flatten(netlist, tiny_tmr_suite["p3"].definition,
                       flat_name="floorplan_check")
        device = device_by_name("XC2S50E")
        packed = pack(flat)
        floorplan = Floorplan.vertical_thirds(device)
        placement = place(flat, packed, device, floorplan=floorplan)
        for slice_index, assignment in enumerate(packed.slices):
            domains = {flat.instances[c].properties.get("domain")
                       for c in assignment.cells.values()}
            domains.discard(None)
            if len(domains) == 1:
                domain = domains.pop()
                low, high = floorplan.domain_columns[domain]
                x, _y = placement.slice_tiles[slice_index]
                assert low <= x <= high


class TestRoute:
    def test_routing_problem_extraction(self, tiny_fir_flat, small_device):
        packed = pack(tiny_fir_flat)
        placement = place(tiny_fir_flat, packed, small_device)
        requests, skipped, direct = extract_routing_problem(
            tiny_fir_flat, packed, placement)
        reasons = {entry.reason for entry in skipped}
        assert "global-clock" in reasons
        assert "constant" in reasons
        assert requests
        # every request has a source and at least one sink
        assert all(request.sinks for request in requests)

    def test_route_tree_invariants(self, tiny_fir_implementation):
        routing = tiny_fir_implementation.routing
        assert routing.routes
        for tree in routing.routes.values():
            nodes = tree.nodes()
            assert tree.source in nodes
            for sink_node in tree.sinks:
                path = tree.path_to(sink_node)
                assert path[0] == tree.source
                assert path[-1] == sink_node
                assert set(path) <= nodes

    def test_no_wire_is_shared_between_nets(self, tiny_fir_implementation):
        seen = {}
        for name, tree in tiny_fir_implementation.routing.routes.items():
            for node in tree.nodes():
                if node[0] != "wire":
                    continue
                assert seen.setdefault(node, name) == name, \
                    f"wire {node} shared by {seen[node]} and {name}"

    def test_sinks_through_counts_downstream(self, tiny_fir_implementation):
        routing = tiny_fir_implementation.routing
        tree = max(routing.routes.values(), key=lambda t: len(t.sinks))
        total = len(tree.sinks)
        through_source_side = set()
        for sink_node in tree.sinks:
            path = tree.path_to(sink_node)
            assert tree.sinks_through(path[1])  # the first hop serves someone
        assert total >= 1

    def test_pip_owner_consistent(self, tiny_fir_implementation):
        routing = tiny_fir_implementation.routing
        for pip, net in routing.pip_owner.items():
            assert pip in routing.routes[net].pips()


class TestTimingAndFlow:
    def test_timing_reports_positive_fmax(self, tiny_fir_flat,
                                          tiny_fir_implementation):
        report = tiny_fir_implementation.timing
        assert report.fmax_mhz > 0
        assert report.critical_path_ns > 0
        assert report.logic_levels >= 1

    def test_timing_without_placement(self, tiny_fir_flat):
        report = estimate_timing(tiny_fir_flat)
        assert report.fmax_mhz > 0

    def test_tmr_slower_than_plain(self, tiny_fir_implementation,
                                   tiny_tmr_implementation):
        # Voter barriers add logic levels: the TMR filter cannot be faster.
        assert tiny_tmr_implementation.timing.fmax_mhz <= \
            tiny_fir_implementation.timing.fmax_mhz * 1.02

    def test_implementation_summary(self, tiny_fir_implementation):
        summary = tiny_fir_implementation.summary()
        assert summary["slices"] == tiny_fir_implementation.slice_count
        assert summary["routing_bits"] > summary["lut_bits"]

    def test_bitstream_programmed_bits(self, tiny_fir_implementation):
        bitstream = tiny_fir_implementation.bitstream
        assert bitstream.count_programmed() > 0
        assert bitstream.count_programmed() < bitstream.layout.total_bits

    def test_used_resources_site_lookup(self, tiny_fir_implementation):
        resources = tiny_fir_implementation.resources
        assert resources.lut_sites
        site = resources.lut_sites[0]
        assert resources.lut_site_at(site.x, site.y, site.slot) is site
        assert resources.lut_site_at(-1, -1, "F") is None

    def test_stats_routing_dominates(self, tiny_fir_implementation):
        stats = tiny_fir_implementation.resources.stats
        assert stats.routing_fraction() > 0.6
        assert stats.lut_bits == 16 * len(
            tiny_fir_implementation.resources.lut_sites)

    def test_tmr_uses_more_slices(self, tiny_fir_implementation,
                                  tiny_tmr_implementation):
        assert tiny_tmr_implementation.slice_count > \
            3 * tiny_fir_implementation.slice_count * 0.8
