"""Three-valued levelized cycle simulator.

The simulator evaluates a :class:`~repro.sim.compile.CompiledDesign` cycle by
cycle: primary inputs are applied, the combinational gates are evaluated in
topological order (optionally several settle passes when a fault overlay
introduces shorts), primary outputs are sampled, and flip-flops update at the
end of the cycle — matching the paper's fault-injection setup where the DUT
and the golden device are compared "every clock cycle".

Two execution modes exist:

* **full** — every gate is evaluated; used for golden (fault-free) runs,
  which also record every net value per cycle;
* **cone** — given a recorded golden trace and the fault's fan-out cone, only
  gates and flip-flops inside the cone are re-evaluated; everything outside
  provably keeps its golden value.  This is what makes software bitstream
  fault-injection campaigns tractable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..cells import logic
from .compile import KIND_BUF, KIND_CONST0, KIND_LUT, CompiledDesign, FaultCone
from .overlay import FaultOverlay


@dataclasses.dataclass
class SimulationTrace:
    """Result of a simulation run."""

    #: per cycle: {port name: list of bit values, LSB first}
    outputs: List[Dict[str, List[int]]]
    #: per cycle: full net value arrays (only recorded when requested)
    net_values: Optional[List[List[int]]] = None
    #: per cycle: flip-flop state *entering* the cycle
    ff_states: Optional[List[List[int]]] = None
    #: memoized ports provably free of X on every cycle (traces are
    #: immutable once a run returns, so one scan serves every consumer)
    _all_known_ports: Optional[frozenset] = dataclasses.field(
        default=None, repr=False, compare=False)

    def all_known_ports(self) -> frozenset:
        """Ports whose outputs are 0/1 on every recorded cycle.

        Golden traces are compared against thousands of faulty traces per
        campaign; scanning for X once here lets the comparison and the
        integer conversion skip the per-cycle per-bit re-scan entirely.
        """
        if self._all_known_ports is None:
            unknown_ports = set()
            unknown = logic.UNKNOWN
            for cycle in self.outputs:
                for port, bits in cycle.items():
                    if port not in unknown_ports and unknown in bits:
                        unknown_ports.add(port)
            ports = self.outputs[0].keys() if self.outputs else ()
            self._all_known_ports = frozenset(
                port for port in ports if port not in unknown_ports)
        return self._all_known_ports

    def output_ints(self, port: str, signed: bool = True) -> List[Optional[int]]:
        """Outputs of *port* per cycle as integers (None when any bit is X)."""
        result: List[Optional[int]] = []
        scan_for_unknown = port not in self.all_known_ports()
        for cycle in self.outputs:
            bits = cycle[port]
            if scan_for_unknown and any(b == logic.UNKNOWN for b in bits):
                result.append(None)
                continue
            value = logic.bits_to_int(bits)
            if signed and bits and bits[-1] == logic.ONE:
                value -= 1 << len(bits)
            result.append(value)
        return result


class Simulator:
    """Executes a compiled design, optionally under a fault overlay.

    Building the per-gate evaluation program is O(gates); fault-injection
    campaigns construct one simulator per fault, so two reuse paths exist:

    * *base_program* — the program of an overlay-free simulator on the same
      design; only the entries touched by this overlay's LUT-INIT and
      gate-pin overrides are rebuilt (O(overlay) instead of O(gates));
    * *program* — a fully prepared program, shared verbatim between faults
      whose overlays patch the identical set of gates (the batch backend
      groups faults by that signature).
    """

    def __init__(self, design: CompiledDesign,
                 overlay: Optional[FaultOverlay] = None,
                 base_program=None, program=None) -> None:
        self.design = design
        self.overlay = overlay if overlay is not None else FaultOverlay()
        if program is not None:
            self._gate_program = program
        elif base_program is not None:
            self._gate_program = self._patch_program(base_program)
        else:
            self._gate_program = self._build_program()
        self._passes = self.overlay.required_passes()

    @property
    def program(self):
        """The resolved per-gate evaluation program (shareable, read-only)."""
        return self._gate_program

    # ------------------------------------------------------------------
    def _patch_program(self, base_program):
        """Rebuild only the program entries this overlay touches."""
        overlay = self.overlay
        touched = set(overlay.lut_init_overrides)
        touched.update(index for index, _pos in overlay.gate_pin_overrides)
        if not touched:
            return base_program
        program = list(base_program)
        for index in touched:
            gate = self.design.gates[index]
            init = overlay.lut_init_overrides.get(index, gate.init)
            pins = tuple(
                (net, overlay.gate_pin_overrides.get((index, position)))
                for position, net in enumerate(gate.input_nets))
            program[index] = (gate.kind, init, pins, gate.output_net,
                              gate.index)
        return program

    def _build_program(self):
        """Pre-resolve per-gate evaluation records with overlay applied."""
        program = []
        overlay = self.overlay
        for gate in self.design.gates:
            init = overlay.lut_init_overrides.get(gate.index, gate.init)
            pins = []
            for position, net in enumerate(gate.input_nets):
                override = overlay.gate_pin_overrides.get(
                    (gate.index, position))
                pins.append((net, override))
            program.append((gate.kind, init, tuple(pins), gate.output_net,
                            gate.index))
        return program

    # ------------------------------------------------------------------
    def run(self, stimulus: Sequence[Dict[str, int]],
            record_nets: bool = False,
            golden: Optional[SimulationTrace] = None,
            cone: Optional[FaultCone] = None) -> SimulationTrace:
        """Simulate one cycle per stimulus entry.

        Each stimulus entry maps input port names to integer values (two's
        complement for signed buses).  When *golden* and *cone* are provided
        the simulator only re-evaluates the cone (fault mode).
        """
        design = self.design
        overlay = self.overlay
        num_nets = design.num_nets
        values = [logic.UNKNOWN] * num_nets

        cone_mode = golden is not None and cone is not None
        if cone_mode and (golden.net_values is None or
                          golden.ff_states is None):
            raise ValueError("cone simulation requires a golden trace "
                             "recorded with record_nets=True")

        if cone_mode:
            active_gates = cone.gate_set
            program = [entry for entry in self._gate_program
                       if entry[4] in active_gates]
            active_ffs = [design.flip_flops[i] for i in cone.ff_indices]
        else:
            program = self._gate_program
            active_ffs = design.flip_flops

        # Flip-flop state entering the first cycle.
        ff_state: Dict[int, int] = {}
        for flip_flop in design.flip_flops:
            init = overlay.ff_init_overrides.get(flip_flop.index,
                                                 flip_flop.init_value)
            ff_state[flip_flop.index] = logic.ONE if init else logic.ZERO

        net_override_items = list(overlay.net_overrides.items())
        outputs: List[Dict[str, List[int]]] = []
        recorded_nets: List[List[int]] = [] if record_nets else None
        recorded_ffs: List[List[int]] = [] if record_nets else None

        net_overrides = overlay.net_overrides
        for cycle, input_values in enumerate(stimulus):
            if cone_mode:
                values = list(golden.net_values[cycle])
            self._apply_inputs(values, input_values)
            # Present flip-flop state on Q nets.
            for flip_flop in active_ffs:
                if flip_flop.q_net >= 0:
                    values[flip_flop.q_net] = ff_state[flip_flop.index]
            if record_nets:
                recorded_ffs.append([ff_state[f.index]
                                     for f in design.flip_flops])
            for net, override in net_override_items:
                values[net] = override.resolve(values)

            for _ in range(self._passes):
                self._evaluate_pass(program, values, overlay, net_overrides)
                for net, override in net_override_items:
                    values[net] = override.resolve(values)

            outputs.append(self._sample_outputs(values))
            if record_nets:
                recorded_nets.append(list(values))

            # Clock edge: compute next states, then publish them.
            next_state: Dict[int, int] = {}
            for flip_flop in active_ffs:
                next_state[flip_flop.index] = self._ff_next(
                    flip_flop, values, ff_state[flip_flop.index], overlay)
            ff_state.update(next_state)

        return SimulationTrace(outputs, recorded_nets, recorded_ffs)

    # ------------------------------------------------------------------
    def _apply_inputs(self, values: List[int],
                      input_values: Dict[str, int]) -> None:
        for port_name, binding in self.design.inputs.items():
            if port_name not in input_values:
                continue
            value = input_values[port_name]
            if isinstance(value, (list, tuple)):
                bits = list(value)
            else:
                bits = logic.int_to_bits(int(value), binding.width)
            for position, net in enumerate(binding.net_indices):
                if net >= 0:
                    values[net] = bits[position]

    def _sample_outputs(self, values: List[int]) -> Dict[str, List[int]]:
        sampled: Dict[str, List[int]] = {}
        overrides = self.overlay.output_pin_overrides
        for port_name, binding in self.design.outputs.items():
            bits = []
            for position, net in enumerate(binding.net_indices):
                override = overrides.get((port_name, position)) \
                    if overrides else None
                if override is not None:
                    bits.append(override.resolve(values))
                else:
                    bits.append(values[net] if net >= 0 else logic.UNKNOWN)
            sampled[port_name] = bits
        return sampled

    @staticmethod
    def _evaluate_pass(program, values: List[int], overlay: FaultOverlay,
                       net_overrides=None) -> None:
        lut_eval = logic.lut_eval
        unknown = logic.UNKNOWN
        overrides = net_overrides if net_overrides else None
        for kind, init, pins, out_net, _gate_index in program:
            if out_net < 0:
                continue
            if kind == KIND_LUT:
                address = 0
                has_unknown = False
                input_values = []
                for position, (net, override) in enumerate(pins):
                    if override is not None:
                        value = override.resolve(values)
                    elif net >= 0:
                        value = values[net]
                    else:
                        value = unknown
                    input_values.append(value)
                    if value == unknown:
                        has_unknown = True
                    else:
                        address |= value << position
                if has_unknown:
                    values[out_net] = lut_eval(init, input_values, len(pins))
                else:
                    values[out_net] = (init >> address) & 1
            elif kind == KIND_BUF:
                net, override = pins[0]
                if override is not None:
                    values[out_net] = override.resolve(values)
                else:
                    values[out_net] = values[net] if net >= 0 else unknown
            elif kind == KIND_CONST0:
                values[out_net] = logic.ZERO
            else:  # KIND_CONST1
                values[out_net] = logic.ONE
            if overrides is not None:
                # A shorted / corrupted net takes its overridden value the
                # moment its driver writes it, so downstream gates evaluated
                # later in the same pass observe the fault.
                net_override = overrides.get(out_net)
                if net_override is not None:
                    values[out_net] = net_override.resolve(values)

    @staticmethod
    def _ff_next(flip_flop, values: List[int], current: int,
                 overlay: FaultOverlay) -> int:
        def read(port: str, net: int, default: int) -> int:
            override = overlay.ff_pin_overrides.get((flip_flop.index, port))
            if override is not None:
                return override.resolve(values)
            if net < 0:
                return default
            return values[net]

        data = read("D", flip_flop.d_net, logic.UNKNOWN)
        enable = read("CE", flip_flop.ce_net, logic.ONE)
        reset = read("R", flip_flop.reset_net, logic.ZERO)

        if reset == logic.ONE:
            return logic.ZERO
        if reset == logic.UNKNOWN:
            return logic.UNKNOWN
        if flip_flop.ce_net >= 0 or (flip_flop.index, "CE") in \
                overlay.ff_pin_overrides:
            return logic.mux(enable, current, data)
        return data


def simulate(design: CompiledDesign, stimulus: Sequence[Dict[str, int]],
             overlay: Optional[FaultOverlay] = None,
             record_nets: bool = False,
             golden: Optional[SimulationTrace] = None,
             cone: Optional[FaultCone] = None) -> SimulationTrace:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(design, overlay).run(stimulus, record_nets, golden, cone)
