"""Numpy-compiled (vectorized PPSFP) fault-simulation kernel.

:mod:`repro.sim.bitparallel` packs a fault shard into the bit lanes of
Python big integers, but still *interprets* the lane program one entry at
a time — at smoke scale the Python loop over the levelized gate list is
the floor, not the word arithmetic.  This module compiles that same lane
program into a short sequence of **vectorized numpy operations** over
``uint64[lanes/64]`` lane-word arrays:

* every net owns one row of a preallocated ``(nets, words)`` state matrix
  per mask plane (``v`` = known-1, ``k`` = known, exactly the two-mask
  encoding of :mod:`.bitparallel`);
* consecutive entries are greedily grouped into *conflict-free batches*
  (no entry reads a net another batch member writes, writes a net another
  member reads, or re-writes a written net), so each batch evaluates as a
  handful of gather → compute → scatter array operations instead of one
  Python iteration per gate;
* within a batch, same-shape work fuses: all AND2 gates become one
  fancy-indexed sweep, LUT mux trees sharing a postfix skeleton (every
  TMR voter, every adder column) evaluate as one stacked postfix run;
* overlay patching stays in :func:`.bitparallel.patch_program` — the
  patched entries are what gets compiled — and lane-masked overrides
  become masked row stores;
* settle passes beyond the first only re-evaluate the *override feedback
  cone* (entries transitively reading a net any override writes); every
  other entry provably recomputes its pass-1 value, so skipping it is
  exact, and shards that mix 1-pass and 3-pass faults stop paying the
  full sweep three times.

Because every lane word is a whole ``uint64`` (shard capacity rounds up
to 64), the big-int ``x ^ all_mask`` complement becomes plain ``~x``:
lanes past the shard population simulate the fault-free circuit, exactly
like the big-int kernel's ghost lanes, and are ignored at verdict demux.

Results are bit-identical to :func:`.bitparallel.simulate_lanes` (and
therefore to the scalar :class:`~repro.sim.simulator.Simulator`) — the
equivalence is enforced lane by lane in ``tests/test_npkernel.py``.

numpy is an optional dependency (``pip install repro[fast]``); import of
this module always succeeds and :func:`have_numpy` reports availability.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via have_numpy() on both paths
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..cells import logic
from .bitparallel import (LaneOutcome, VectorProgram, VectorResult,
                          _build_flip_flops, _E_AND2, _E_CONST0, _E_CONST1,
                          _E_CONSTM, _E_COPY, _E_NOT, _E_OR2, _E_PINS,
                          _E_TREE, _E_X, _E_XNOR2, _E_XOR2, _OP_AND,
                          _OP_CONST, _OP_MUX, _OP_MUXX, _OP_NOT, _OP_OR,
                          _OP_VAR, _OP_X, _OP_XOR, broadcast_inputs,
                          patch_program)
from .compile import CompiledDesign, FaultCone
from .overlay import (BLEND_AND_NOT, BLEND_SHORT, BLEND_WIRED_AND,
                      BLEND_WIRED_OR, SOURCE_CONST, SOURCE_NET,
                      FaultOverlay, SourceOverride)
from .simulator import SimulationTrace

_U64_MAX = _np.uint64(0xFFFFFFFFFFFFFFFF) if _np is not None else None
_U64_0 = _np.uint64(0) if _np is not None else None

#: pip hint surfaced by the engine's BackendUnavailableError
NUMPY_INSTALL_HINT = "pip install numpy  (or: pip install repro[fast])"


def have_numpy() -> bool:
    """True when the optional numpy dependency is importable."""
    return _np is not None


def _require_numpy() -> None:
    if _np is None:
        raise RuntimeError(
            f"repro.sim.npkernel needs numpy ({NUMPY_INSTALL_HINT})")


# ----------------------------------------------------------------------
# Lane-word <-> array conversion
# ----------------------------------------------------------------------
def _mask_words(mask: int, words: int):
    """Split a big-int lane word into little-endian uint64 words."""
    return _np.frombuffer(mask.to_bytes(words * 8, "little"),
                          dtype="<u8").astype(_np.uint64)


def _row_int(row) -> int:
    """Rebuild the big-int lane word of one state row (test demux)."""
    return int.from_bytes(_np.ascontiguousarray(row,
                                                dtype="<u8").tobytes(),
                          "little")


def broadcast_trace_numpy(golden: SimulationTrace):
    """Golden trace as per-cycle broadcast planes ``(gv, gk)``.

    ``gv[cycle]`` / ``gk[cycle]`` hold one uint64 per net (0 or all-ones)
    that the cone-mode sweep broadcasts across the shard's lane words —
    the array twin of :func:`.bitparallel.broadcast_trace`.
    """
    _require_numpy()
    if golden.net_values is None:
        raise ValueError("cone-mode lane simulation requires a golden "
                         "trace recorded with record_nets=True")
    values = _np.array(golden.net_values, dtype=_np.int64)
    gv = _np.where(values == logic.ONE, _U64_MAX, _U64_0)
    gk = _np.where(values == logic.UNKNOWN, _U64_0, _U64_MAX)
    return gv.astype(_np.uint64), gk.astype(_np.uint64)


def broadcast_inputs_numpy(design: CompiledDesign, stimulus):
    """Per-cycle ``(net_idx, v, k)`` input-store arrays for the sweep.

    Reuses the big-int decoder (one-lane nominal mask) so port/bit
    handling stays in exactly one place, then broadcasts each applied bit
    to a full uint64 word.
    """
    _require_numpy()
    per_cycle = []
    for triples in broadcast_inputs(design, stimulus, 1):
        idx = _np.array([net for net, _v, _k in triples], dtype=_np.intp)
        v = _np.array([_U64_MAX if v else 0 for _n, v, _k in triples],
                      dtype=_np.uint64).reshape(-1, 1)
        k = _np.array([_U64_MAX if k else 0 for _n, _v, k in triples],
                      dtype=_np.uint64).reshape(-1, 1)
        per_cycle.append((idx, v, k))
    return per_cycle


# ----------------------------------------------------------------------
# Sweep compilation: conflict-free batches -> fused array steps
# ----------------------------------------------------------------------
_TWO_KINDS = frozenset((_E_AND2, _E_OR2, _E_XOR2, _E_XNOR2))
_ONE_KINDS = frozenset((_E_COPY, _E_NOT))
_CONST_KINDS = frozenset((_E_CONST0, _E_CONST1, _E_CONSTM, _E_X))

# Step opcodes of the compiled sweep.
_ST_TWO = 0     # (code, kind, a_idx, b_idx, out_idx)
_ST_ONE = 1     # (code, kind, a_idx, out_idx)
_ST_CONST = 2   # (code, v_mat, k_mat, out_idx)
_ST_TREE = 3    # (code, compiled postfix ops, out_idx)
_ST_MTREE = 5   # (code, pin_specs, ops, out_idx) — masked-pin tree group
_ST_BLEND = 6   # (code, _BlendPlan) — deferred post overrides of a batch


def _override_read_nets(override: SourceOverride) -> Tuple[int, ...]:
    if override.kind == SOURCE_CONST:
        return ()
    if override.kind == SOURCE_NET:
        return (override.net_a,) if override.net_a >= 0 else ()
    return tuple(net for net in (override.net_a, override.net_b)
                 if net >= 0)


def _entry_reads(entry) -> set:
    """Nets whose value the entry observes during its evaluation."""
    reads: set = set()
    kind = entry.kind
    if kind in _ONE_KINDS:
        reads.add(entry.a)
    elif kind in _TWO_KINDS:
        reads.add(entry.a)
        reads.add(entry.b)
    elif kind == _E_TREE:
        for code, arg in entry.ops:
            if code == _OP_VAR or code == _OP_MUX:
                reads.add(arg)
    elif kind == _E_PINS:
        for net, lane_overrides in entry.pins:
            if net >= 0:
                reads.add(net)
            for _mask, override in lane_overrides:
                reads.update(_override_read_nets(override))
    if entry.post is not None:
        for _mask, override in entry.post:
            # The post blend reading the entry's own output sees the value
            # just written — satisfied by scatter-before-blend, not a
            # cross-entry dependency.
            reads.update(net for net in _override_read_nets(override)
                         if net != entry.out_net)
    return reads


def _compile_lane_masks(lane_overrides, words: int):
    """``(mask, override)`` pairs -> ``(keep, mask, override)`` rows."""
    compiled = []
    for mask, override in lane_overrides:
        mask_row = _mask_words(mask, words)
        compiled.append((~mask_row, mask_row, override))
    return tuple(compiled)


# Runtime-resolved override tags of the stacked blend groups.
_BK_NET = 0
_BK_SHORT = 1
_BK_WAND = 2
_BK_WOR = 3
_BK_ANDNOT = 4
_BLEND_TAGS = {BLEND_SHORT: _BK_SHORT, BLEND_WIRED_AND: _BK_WAND,
               BLEND_WIRED_OR: _BK_WOR, BLEND_AND_NOT: _BK_ANDNOT}


class _BlendPlan:
    """Ordered lane-masked overrides compiled into stacked array stores.

    Input is a sequence of ``(out_net, lane_mask, override)`` triples in
    their sequential application order.  The compiler splits them into
    *waves* — a triple opens a new wave when it reads a net an earlier
    triple of the wave writes, so every gather within a wave observes the
    pre-wave state exactly as the sequential big-int loop would.  Within
    a wave, constant overrides fold per target net into one masked
    scatter, and runtime overrides (net reroutes, shorts, wired blends)
    stack per blend kind into a single gather → formula → masked-scatter
    group; duplicate target nets (one per lane, disjoint masks) either
    merge at compile time or accumulate through ``ufunc.at`` scatters.
    """

    __slots__ = ("waves",)


def _compile_blend_plan(triples, words: int, x_slot: int, zrow,
                        frow) -> Optional[_BlendPlan]:
    if not triples:
        return None
    waves_raw: List[List[Tuple]] = []
    wave: List[Tuple] = []
    wave_writes: set = set()
    for out, mask, override in triples:
        if wave and (_override_read_nets(override) and
                     set(_override_read_nets(override)) & wave_writes):
            waves_raw.append(wave)
            wave = []
            wave_writes = set()
        wave.append((out, mask, override))
        wave_writes.add(out)
    waves_raw.append(wave)

    plan = _BlendPlan()
    plan.waves = []
    for raw in waves_raw:
        const_by_out: Dict[int, List] = {}
        runtime: Dict[int, List[Tuple]] = {}
        for out, mask, override in raw:
            fixed = _const_resolution(override)
            if fixed is not None:
                fold = const_by_out.get(out)
                if fold is None:
                    fold = [frow.copy(), zrow.copy(), zrow.copy()]
                    const_by_out[out] = fold
                mask_row = _mask_words(mask, words)
                fold[0] &= ~mask_row
                if fixed[0]:
                    fold[1] |= mask_row
                if fixed[1]:
                    fold[2] |= mask_row
            else:
                tag = _BK_NET if override.kind == SOURCE_NET \
                    else _BLEND_TAGS[override.blend]
                runtime.setdefault(tag, []).append((out, mask, override))

        stacked = []
        for tag, items in runtime.items():
            # An overlay holds at most one override per net, so triples
            # landing on the same target come from different lanes and
            # carry disjoint masks: merge identical (out, sources) pairs
            # by OR-ing masks; targets still duplicated (rerouted to
            # different sources on different lanes) fold per unique
            # target through a segment reduction before one store.
            merged: Dict[Tuple, int] = {}
            for out, mask, ov in items:
                key = (out,
                       ov.net_a if ov.net_a >= 0 else x_slot,
                       ov.net_b if ov.net_b >= 0 else x_slot)
                merged[key] = merged.get(key, 0) | mask
            keys = sorted(merged)
            mask_mat = _np.stack([_mask_words(merged[key], words)
                                  for key in keys])
            a_idx = _idx([a for _o, a, _b in keys])
            b_idx = _idx([b for _o, _a, b in keys])
            unique_outs = sorted(set(out for out, _a, _b in keys))
            if len(unique_outs) == len(keys):
                stacked.append((tag, None,
                                _idx([out for out, _a, _b in keys]),
                                a_idx, b_idx, ~mask_mat, mask_mat))
            else:
                seg = _idx([next(i for i, key in enumerate(keys)
                                 if key[0] == out) for out in unique_outs])
                keep = _np.stack([
                    _np.bitwise_and.reduce(
                        ~mask_mat[[i for i, key in enumerate(keys)
                                   if key[0] == out]], axis=0)
                    for out in unique_outs])
                stacked.append((tag, seg, _idx(unique_outs), a_idx, b_idx,
                                keep, mask_mat))
        const_scatter = None
        if const_by_out:
            const_scatter = (
                _idx(list(const_by_out)),
                _np.stack([fold[0] for fold in const_by_out.values()]),
                _np.stack([fold[1] for fold in const_by_out.values()]),
                _np.stack([fold[2] for fold in const_by_out.values()]))
        plan.waves.append((const_scatter, stacked))
    return plan


def _apply_blend_plan(plan: _BlendPlan, net_v, net_k) -> None:
    for const_scatter, stacked in plan.waves:
        for tag, seg, out_idx, a_idx, b_idx, keep, mask in stacked:
            va = net_v[a_idx]
            ka = net_k[a_idx]
            if tag == _BK_NET:
                ov, ok = va, ka
            else:
                vb = net_v[b_idx]
                kb = net_k[b_idx]
                if tag == _BK_SHORT:
                    same = ~(va ^ vb) & ~(ka ^ kb)
                    ov, ok = va & same, ka & same
                elif tag == _BK_WAND:
                    ov = va & vb
                    ok = (ka & kb) | (ka & ~va) | (kb & ~vb)
                elif tag == _BK_WOR:
                    ov = va | vb
                    ok = (ka & kb) | va | vb
                else:  # _BK_ANDNOT — wired-AND against b's complement
                    nv = kb & ~vb
                    ov = va & nv
                    ok = (ka & kb) | (ka & ~va) | (kb & ~nv)
            ov = ov & mask
            ok = ok & mask
            if seg is not None:
                ov = _np.bitwise_or.reduceat(ov, seg, axis=0)
                ok = _np.bitwise_or.reduceat(ok, seg, axis=0)
            net_v[out_idx] = net_v[out_idx] & keep | ov
            net_k[out_idx] = net_k[out_idx] & keep | ok
        if const_scatter is not None:
            out_idx, keep, set_v, set_k = const_scatter
            net_v[out_idx] = net_v[out_idx] & keep | set_v
            net_k[out_idx] = net_k[out_idx] & keep | set_k


def _const_rows(entry, all_mask: int, words: int, zrow, frow):
    kind = entry.kind
    if kind == _E_CONST0:
        return zrow, frow
    if kind == _E_CONST1:
        return frow, frow
    if kind == _E_CONSTM:
        return _mask_words(entry.a & all_mask, words), frow
    return zrow, zrow  # _E_X


def _idx(values):
    return _np.array(values, dtype=_np.intp)


def _const_resolution(override: SourceOverride):
    """The fixed ``(v, k)`` bit pair an override resolves to, or None.

    Mirrors :func:`_resolve_rows` on overrides that never read live
    state: declared constants, detached reroutes, unknown blend kinds
    and blends whose sources are both detached (every supported blend
    of two unknowns is unknown).
    """
    kind = override.kind
    if kind == SOURCE_CONST:
        if override.value == logic.ONE:
            return (1, 1)
        if override.value == logic.ZERO:
            return (0, 1)
        return (0, 0)
    if kind == SOURCE_NET:
        return (0, 0) if override.net_a < 0 else None
    if override.blend not in _BLEND_TAGS:
        return (0, 0)
    if override.net_a < 0 and override.net_b < 0:
        return (0, 0)
    return None


def _compile_pin_runtime(items, words: int, x_slot: int) -> Tuple:
    """Stack runtime pin overrides into masked scatter groups.

    *items* is a list of ``(row, lane_mask, override)`` for one pin
    position, every override reading live state.  Application order is
    immaterial: an overlay holds at most one override per gate pin, so
    overrides landing on the same gathered row always come from
    different lanes and carry disjoint masks.  The compiler merges
    identical ``(row, source)`` pairs by OR-ing their masks; rows that
    still repeat within a group (same pin rerouted to *different*
    sources on different lanes) compile into one segment-reduced store:
    ``bitwise_or.reduceat`` folds the disjoint masked resolves per
    unique row, exactly composing the per-lane replacements.
    """
    by_tag: Dict[int, Dict[Tuple, int]] = {}
    for row, mask, override in items:
        if override.kind == SOURCE_NET:
            tag, a, b = _BK_NET, override.net_a, None
        else:
            tag = _BLEND_TAGS[override.blend]
            a = override.net_a if override.net_a >= 0 else x_slot
            b = override.net_b if override.net_b >= 0 else x_slot
        merged = by_tag.setdefault(tag, {})
        key = (row, a, b)
        merged[key] = merged.get(key, 0) | mask
    steps: List[Tuple] = []
    for tag, merged in by_tag.items():
        keys = sorted(merged)
        mask_mat = _np.stack([_mask_words(merged[key], words)
                              for key in keys])
        p1 = _idx([a for _r, a, _b in keys])
        p2 = _idx([b for _r, _a, b in keys]) if tag != _BK_NET else None
        unique_rows = sorted(set(row for row, _a, _b in keys))
        if len(unique_rows) == len(keys):
            steps.append((tag, None, _idx([row for row, _a, _b in keys]),
                          ~mask_mat, mask_mat, p1, p2))
        else:
            seg = _idx([next(i for i, key in enumerate(keys)
                             if key[0] == row) for row in unique_rows])
            keep = _np.stack([
                _np.bitwise_and.reduce(
                    ~mask_mat[[i for i, key in enumerate(keys)
                               if key[0] == row]], axis=0)
                for row in unique_rows])
            steps.append((tag, seg, _idx(unique_rows), keep, mask_mat,
                          p1, p2))
    return tuple(steps)


def _emit_batch(batch, all_mask: int, words: int, x_slot: int, zrow, frow,
                steps: List[Tuple]) -> None:
    """Fuse one conflict-free batch into per-shape array steps.

    Post overrides (net faults attached to driver entries) are stripped
    off and applied as one stacked blend plan at the end of the batch:
    the batch rule guarantees no batch member reads a batch write, so no
    evaluation order within the batch can observe the difference, and the
    bearing entries fall back into their fused buckets instead of running
    as per-entry Python steps.
    """
    twos: Dict[int, List] = {}
    ones: Dict[int, List] = {}
    consts: List = []
    trees: Dict[Tuple[int, ...], List] = {}
    mtrees: Dict[Tuple, List] = {}
    posts: List[Tuple] = []
    for entry in batch:
        if entry.post is not None:
            for mask, override in entry.post:
                posts.append((entry.out_net, mask, override))
            entry = dataclasses.replace(entry, post=None)
        if entry.kind == _E_PINS:
            # VAR/MUX payloads are pin positions and must agree for
            # the group to share one compiled op list; CONST payloads
            # stack per entry and stay out of the key.
            mtrees.setdefault(
                (tuple((code, arg) if code == _OP_VAR
                       or code == _OP_MUX else (code, None)
                       for code, arg in entry.ops),
                 len(entry.pins)), []).append(entry)
        elif entry.kind in _TWO_KINDS:
            twos.setdefault(entry.kind, []).append(entry)
        elif entry.kind in _ONE_KINDS:
            ones.setdefault(entry.kind, []).append(entry)
        elif entry.kind in _CONST_KINDS:
            consts.append(entry)
        else:
            trees.setdefault(tuple(code for code, _arg in entry.ops),
                             []).append(entry)
    for kind, group in twos.items():
        steps.append((_ST_TWO, kind,
                      _idx([entry.a for entry in group]),
                      _idx([entry.b for entry in group]),
                      _idx([entry.out_net for entry in group])))
    for kind, group in ones.items():
        steps.append((_ST_ONE, kind,
                      _idx([entry.a for entry in group]),
                      _idx([entry.out_net for entry in group])))
    if consts:
        rows = [_const_rows(entry, all_mask, words, zrow, frow)
                for entry in consts]
        steps.append((_ST_CONST,
                      _np.stack([v for v, _k in rows]),
                      _np.stack([k for _v, k in rows]),
                      _idx([entry.out_net for entry in consts])))
    for codes, group in trees.items():
        count = len(group)
        ops: List[Tuple] = []
        # One shared index array per distinct slot vector, so the
        # evaluator's per-call selector cache (keyed by array identity)
        # hits for every MUX level switching on the same pins.
        arg_memo: Dict[Tuple[int, ...], object] = {}
        for position, code in enumerate(codes):
            if code == _OP_VAR or code == _OP_MUX:
                slots = tuple(entry.ops[position][1] for entry in group)
                arr = arg_memo.get(slots)
                if arr is None:
                    arr = arg_memo[slots] = _idx(slots)
                ops.append((code, arr))
            elif code == _OP_CONST:
                v_mat = _np.stack(
                    [_mask_words(entry.ops[position][1] & all_mask, words)
                     for entry in group])
                ops.append((_OP_CONST,
                            (v_mat, _np.full((count, words), _U64_MAX,
                                             dtype=_np.uint64))))
            elif code == _OP_X:
                zeros = _np.zeros((count, words), dtype=_np.uint64)
                ops.append((_OP_CONST, (zeros, zeros)))
            else:
                ops.append((code, None))
        steps.append((_ST_TREE, _fuse_ops(ops),
                      _idx([entry.out_net for entry in group])))
    for (keyed_ops, num_pins), group in mtrees.items():
        codes = tuple(code for code, _arg in keyed_ops)
        count = len(group)
        pin_specs: List[Tuple] = []
        for position in range(num_pins):
            net_idx = _idx([entry.pins[position][0]
                            if entry.pins[position][0] >= 0 else x_slot
                            for entry in group])
            keep = set_v = set_k = None
            runtime_items: List[Tuple] = []
            for row, entry in enumerate(group):
                for mask, override in entry.pins[position][1]:
                    fixed = _const_resolution(override)
                    if fixed is None:
                        # Reads live state — stacked runtime scatter.
                        runtime_items.append((row, mask, override))
                        continue
                    # Resolves at compile time; fold the disjoint
                    # replacements into one masked store.
                    if keep is None:
                        keep = _np.full((count, words), _U64_MAX,
                                        dtype=_np.uint64)
                        set_v = _np.zeros((count, words), dtype=_np.uint64)
                        set_k = _np.zeros((count, words), dtype=_np.uint64)
                    mask_row = _mask_words(mask, words)
                    keep[row] &= ~mask_row
                    set_v[row] |= mask_row if fixed[0] else 0
                    set_k[row] |= mask_row if fixed[1] else 0
            pin_specs.append((net_idx, keep, set_v, set_k,
                              _compile_pin_runtime(runtime_items, words,
                                                   x_slot)))
        ops = []
        for position, code in enumerate(codes):
            if code == _OP_CONST:
                v_mat = _np.stack(
                    [_mask_words(entry.ops[position][1] & all_mask, words)
                     for entry in group])
                ops.append((_OP_CONST,
                            (v_mat, _np.full((count, words), _U64_MAX,
                                             dtype=_np.uint64))))
            elif code == _OP_X:
                zeros = _np.zeros((count, words), dtype=_np.uint64)
                ops.append((_OP_CONST, (zeros, zeros)))
            else:
                # VAR/MUX payloads are pin positions, shared by the group.
                ops.append((code, group[0].ops[position][1]))
        steps.append((_ST_MTREE, tuple(pin_specs), _fuse_ops(ops),
                      _idx([entry.out_net for entry in group])))
    if posts:
        steps.append((_ST_BLEND,
                      _compile_blend_plan(posts, words, x_slot, zrow,
                                          frow)))


def _compile_sweep(entries, all_mask: int, words: int, x_slot: int, zrow,
                   frow) -> List[Tuple]:
    """Greedy conflict-free batching of the (patched) entry list.

    An entry joins the current batch only when it reads nothing the batch
    writes, and its output is neither read nor written by the batch.
    Within a batch every member therefore observes exactly the pre-batch
    state and writes a distinct net — gather/compute/scatter order across
    the fused steps cannot change any value, so the batched sweep equals
    the sequential big-int pass bit for bit.
    """
    steps: List[Tuple] = []
    batch: List = []
    batch_reads: set = set()
    batch_writes: set = set()
    for entry in entries:
        out = entry.out_net
        if out < 0:
            continue
        reads = _entry_reads(entry)
        if batch and ((reads & batch_writes) or out in batch_reads
                      or out in batch_writes):
            _emit_batch(batch, all_mask, words, x_slot, zrow, frow, steps)
            batch = []
            batch_reads = set()
            batch_writes = set()
        batch.append(entry)
        batch_reads |= reads
        batch_writes.add(out)
    if batch:
        _emit_batch(batch, all_mask, words, x_slot, zrow, frow, steps)
    return steps


def _reduced_entries(entries, seed_nets) -> List:
    """Entries that can change value after the first settle pass.

    Passes beyond the first exist to let override-induced backward
    dependencies (shorts, rewired pins, net conflicts) converge.  Only
    entries transitively reading a net some override writes — plus the
    override-bearing entries themselves — can compute a different value
    in pass 2+; everything else provably reproduces its pass-1 output,
    so the reduced list is exact, not an approximation.
    """
    dirty = set(seed_nets)
    for entry in entries:
        if entry.out_net >= 0 and (entry.kind == _E_PINS
                                   or entry.post is not None):
            dirty.add(entry.out_net)
    if not dirty:
        return []
    changed = True
    while changed:
        changed = False
        for entry in entries:
            out = entry.out_net
            if out < 0 or out in dirty:
                continue
            if _entry_reads(entry) & dirty:
                dirty.add(out)
                changed = True
    return [entry for entry in entries if entry.out_net in dirty]


# ----------------------------------------------------------------------
# Shard plans
# ----------------------------------------------------------------------
class _ShardPlan:
    """Everything overlay-dependent, compiled once per (shard, width)."""

    __slots__ = ("lanes", "words", "num_nets", "steps", "reduced_steps",
                 "pre_blend", "ff_d", "ff_ce", "ff_r", "ff_q",
                 "ff_state_v", "ff_state_k", "ff_overrides", "output_masks",
                 "pending0", "zrow", "frow")


def _build_shard_plan(program: VectorProgram,
                      overlays: Sequence[FaultOverlay],
                      width: Optional[int],
                      cone: Optional[FaultCone]) -> _ShardPlan:
    lanes = len(overlays)
    lane_width = width if width is not None else lanes
    if lane_width < lanes:
        raise ValueError(f"width {lane_width} cannot hold {lanes} lanes")
    words = max(1, (lane_width + 63) // 64)
    all_mask = (1 << (words * 64)) - 1
    design = program.design

    entries, pre_net_overrides = patch_program(program, overlays, all_mask)
    if cone is not None:
        active = cone.gate_set
        entries = [entry for entry in entries
                   if entry.gate_index in active]
        records = _build_flip_flops(design, overlays, cone.ff_indices,
                                    all_mask)
    else:
        records = _build_flip_flops(design, overlays, None, all_mask)

    plan = _ShardPlan()
    plan.lanes = lanes
    plan.words = words
    plan.num_nets = design.num_nets
    plan.zrow = _np.zeros(words, dtype=_np.uint64)
    plan.frow = _np.full(words, _U64_MAX, dtype=_np.uint64)
    plan.pending0 = _mask_words((1 << lanes) - 1, words)

    x_slot = design.num_nets
    plan.steps = _compile_sweep(entries, all_mask, words, x_slot,
                                plan.zrow, plan.frow)
    reduced = _reduced_entries(entries,
                               [net for net, _ in pre_net_overrides])
    plan.reduced_steps = _compile_sweep(reduced, all_mask, words, x_slot,
                                        plan.zrow, plan.frow) \
        if reduced else plan.steps
    plan.pre_blend = _compile_blend_plan(
        [(net, mask, override)
         for net, lane_overrides in pre_net_overrides
         for mask, override in lane_overrides],
        words, x_slot, plan.zrow, plan.frow)

    # Flip-flop index arrays; absent pins read the constant slot rows
    # (X / known-1 / known-0), absent outputs scatter into the trash row.
    num_nets = design.num_nets
    x_slot, one_slot, zero_slot, trash = (num_nets, num_nets + 1,
                                          num_nets + 2, num_nets + 3)
    plan.ff_d = _idx([r.d_net if r.d_net >= 0 else x_slot
                      for r in records])
    plan.ff_ce = _idx([r.ce_net if r.ce_net >= 0 else one_slot
                       for r in records])
    plan.ff_r = _idx([r.r_net if r.r_net >= 0 else zero_slot
                      for r in records])
    plan.ff_q = _idx([r.q_net if r.q_net >= 0 else trash
                      for r in records])
    if records:
        plan.ff_state_v = _np.stack([_mask_words(r.state_v, words)
                                     for r in records])
        plan.ff_state_k = _np.stack([_mask_words(r.state_k, words)
                                     for r in records])
    else:
        plan.ff_state_v = _np.zeros((0, words), dtype=_np.uint64)
        plan.ff_state_k = _np.zeros((0, words), dtype=_np.uint64)
    ff_overrides = []
    for position, record in enumerate(records):
        for port, lane_overrides in (("D", record.d_overrides),
                                     ("CE", record.ce_overrides),
                                     ("R", record.r_overrides)):
            if lane_overrides:
                ff_overrides.append(
                    (position, port,
                     _compile_lane_masks(lane_overrides, words)))
    plan.ff_overrides = tuple(ff_overrides)

    output_masks: Dict[Tuple[str, int], List] = {}
    for lane, overlay in enumerate(overlays):
        for key, override in overlay.output_pin_overrides.items():
            output_masks.setdefault(key, []).append((1 << lane, override))
    plan.output_masks = {
        key: _compile_lane_masks(lane_overrides, words)
        for key, lane_overrides in output_masks.items()}
    return plan


# ----------------------------------------------------------------------
# Golden comparison plans
# ----------------------------------------------------------------------
class _ComparePlan:
    """Per-cycle gather indices and expected words for output sampling."""

    __slots__ = ("positions", "cycles")


def _compile_compare(design: CompiledDesign, golden: SimulationTrace,
                     ports: Optional[Sequence[str]]) -> _ComparePlan:
    port_names = list(ports) if ports is not None else list(design.outputs)
    positions: List[Tuple[str, int, int]] = []
    for port_name in port_names:
        binding = design.outputs[port_name]
        for position, net in enumerate(binding.net_indices):
            positions.append((port_name, position, net))
    x_slot = design.num_nets  # a net-less output bit mismatches like X
    plan = _ComparePlan()
    plan.positions = tuple(positions)
    cycles = []
    for golden_out in golden.outputs:
        idx: List[int] = []
        expect: List[int] = []
        for port_name, position, net in positions:
            gold = golden_out[port_name][position]
            if gold == logic.UNKNOWN:
                continue
            idx.append(net if net >= 0 else x_slot)
            expect.append(0xFFFFFFFFFFFFFFFF if gold == logic.ONE else 0)
        cycles.append((_np.array(idx, dtype=_np.intp),
                       _np.array(expect, dtype=_np.uint64).reshape(-1, 1)))
    plan.cycles = cycles
    return plan


# ----------------------------------------------------------------------
# Row-wise primitives (lane-masked overrides, postfix programs)
# ----------------------------------------------------------------------
def _resolve_rows(override: SourceOverride, net_v, net_k, zrow, frow):
    """Array twin of :func:`.bitparallel._resolve_lanes` on state rows."""
    kind = override.kind
    if kind == SOURCE_CONST:
        value = override.value
        if value == logic.ONE:
            return frow, frow
        if value == logic.ZERO:
            return zrow, frow
        return zrow, zrow
    if kind == SOURCE_NET:
        net = override.net_a
        if net < 0:
            return zrow, zrow
        return net_v[net], net_k[net]
    net_a, net_b = override.net_a, override.net_b
    va, ka = (net_v[net_a], net_k[net_a]) if net_a >= 0 else (zrow, zrow)
    vb, kb = (net_v[net_b], net_k[net_b]) if net_b >= 0 else (zrow, zrow)
    blend = override.blend
    if blend == BLEND_SHORT:
        same = ~(va ^ vb) & ~(ka ^ kb)
        return va & same, ka & same
    if blend == BLEND_WIRED_AND:
        return va & vb, (ka & kb) | (ka & ~va) | (kb & ~vb)
    if blend == BLEND_WIRED_OR:
        return va | vb, (ka & kb) | va | vb
    if blend == BLEND_AND_NOT:
        nv, nk = kb & ~vb, kb
        return va & nv, (ka & nk) | (ka & ~va) | (nk & ~nv)
    return zrow, zrow


def _blend_rows(v, k, lane_overrides, net_v, net_k, zrow, frow):
    """Replace the lanes selected by each compiled (keep, mask, override)."""
    for keep, mask, override in lane_overrides:
        ov, ok = _resolve_rows(override, net_v, net_k, zrow, frow)
        v = (v & keep) | (ov & mask)
        k = (k & keep) | (ok & mask)
    return v, k


#: Fused ``CONST, CONST, MUX`` triple over fully-known constant leaves —
#: the bottom level of every LUT Shannon tree.  Payload carries the
#: selector slot plus precomputed leaf matrices (see :func:`_fuse_ops`).
_OP_MUXC = 9


def _fuse_ops(ops) -> Tuple:
    """Peephole-fuse constant-leaf MUXes in a stacked postfix program.

    A ``CONST c0, CONST c1, MUX sel`` triple with both leaves fully
    known (LUT INIT bits always are) needs none of the general
    three-valued agreement machinery per op: the disagreement mask and
    the X-select fallback value are constants.  The fused payload is
    ``(sel, c0v, c1v, agree, agree & c0v)``.
    """
    fused: List[Tuple] = []
    for code, payload in ops:
        if code == _OP_MUX and len(fused) >= 2 \
                and fused[-1][0] == _OP_CONST \
                and fused[-2][0] == _OP_CONST:
            (c1v, c1k) = fused[-1][1]
            (c0v, c0k) = fused[-2][1]
            if bool((c0k == _U64_MAX).all()) and \
                    bool((c1k == _U64_MAX).all()):
                agree = ~(c0v ^ c1v)
                del fused[-2:]
                fused.append((_OP_MUXC,
                              (payload, c0v, c1v, agree, agree & c0v)))
                continue
        fused.append((code, payload))
    return tuple(fused)


def _run_ops_compiled(ops, slot_v, slot_k):
    """Postfix machine over rows or stacked row matrices.

    ``slot_v`` / ``slot_k`` index net rows (tree entries), per-pin rows
    (pin-override entries) or — with per-op index arrays — whole stacked
    gather matrices (skeleton-grouped trees); the op formulas are the
    big-int kernel's with ``~`` in place of ``^ all_mask``.  Selector
    masks are memoized per selector slot: every MUX of one Shannon-tree
    level switches on the same pin.
    """
    stack: List[Tuple] = []
    push = stack.append
    pop = stack.pop
    sel_cache: Dict = {}
    for code, payload in ops:
        if code == _OP_VAR:
            push((slot_v[payload], slot_k[payload]))
        elif code == _OP_MUXC:
            sel, c0v, c1v, agreec, ac = payload
            key = sel if sel.__class__ is int else id(sel)
            got = sel_cache.get(key)
            if got is None:
                vs, ks = slot_v[sel], slot_k[sel]
                got = (ks & vs, ks & ~vs, ~ks, ks)
                sel_cache[key] = got
            sel1, sel0, unk, ks = got
            push(((sel1 & c1v) | (sel0 & c0v) | (unk & ac),
                  ks | (unk & agreec)))
        elif code == _OP_MUX:
            v1, k1 = pop()
            v0, k0 = pop()
            key = payload if payload.__class__ is int else id(payload)
            got = sel_cache.get(key)
            if got is None:
                vs, ks = slot_v[payload], slot_k[payload]
                got = (ks & vs, ks & ~vs, ~ks, ks)
                sel_cache[key] = got
            sel1, sel0, unk, _ks = got
            agree = k0 & k1 & ~(v0 ^ v1)
            u = unk & agree
            push(((sel1 & v1) | (sel0 & v0) | (u & v0),
                  (sel1 & k1) | (sel0 & k0) | u))
        elif code == _OP_AND:
            vb, kb = pop()
            va, ka = pop()
            push((va & vb, (ka & kb) | (ka & ~va) | (kb & ~vb)))
        elif code == _OP_OR:
            vb, kb = pop()
            va, ka = pop()
            push((va | vb, (ka & kb) | va | vb))
        elif code == _OP_XOR:
            vb, kb = pop()
            va, ka = pop()
            k = ka & kb
            push(((va ^ vb) & k, k))
        elif code == _OP_NOT:
            va, ka = pop()
            push((ka & ~va, ka))
        elif code == _OP_MUXX:
            v1, k1 = pop()
            v0, k0 = pop()
            agree = k0 & k1 & ~(v0 ^ v1)
            push((agree & v0, agree))
        else:  # _OP_CONST — payload is a prebuilt (v, k) pair
            push(payload)
    return stack[-1]


def _run_pass(steps, net_v, net_k, zrow, frow) -> None:
    """One settle pass: every fused step, gather -> compute -> scatter."""
    for step in steps:
        code = step[0]
        if code == _ST_TWO:
            _, kind, a, b, out = step
            va = net_v[a]
            vb = net_v[b]
            if kind == _E_AND2:
                ka = net_k[a]
                kb = net_k[b]
                net_v[out] = va & vb
                net_k[out] = (ka & kb) | (ka & ~va) | (kb & ~vb)
            elif kind == _E_OR2:
                net_v[out] = va | vb
                net_k[out] = (net_k[a] & net_k[b]) | va | vb
            elif kind == _E_XOR2:
                k = net_k[a] & net_k[b]
                net_v[out] = (va ^ vb) & k
                net_k[out] = k
            else:  # _E_XNOR2
                k = net_k[a] & net_k[b]
                net_v[out] = ~(va ^ vb) & k
                net_k[out] = k
        elif code == _ST_ONE:
            _, kind, a, out = step
            if kind == _E_COPY:
                net_v[out] = net_v[a]
                net_k[out] = net_k[a]
            else:  # _E_NOT
                k = net_k[a]
                net_v[out] = k & ~net_v[a]
                net_k[out] = k
        elif code == _ST_TREE:
            _, ops, out = step
            v, k = _run_ops_compiled(ops, net_v, net_k)
            net_v[out] = v
            net_k[out] = k
        elif code == _ST_MTREE:
            _, pin_specs, ops, out = step
            pins_v: List = []
            pins_k: List = []
            for net_idx, keep, set_v, set_k, runtime in pin_specs:
                # The gather is a fancy-index copy, so the runtime
                # scatters below mutate a private matrix, never state.
                bv = net_v[net_idx]
                bk = net_k[net_idx]
                if keep is not None:
                    bv = bv & keep | set_v
                    bk = bk & keep | set_k
                for tag, seg, rows, keepm, maskm, p1, p2 in runtime:
                    va = net_v[p1]
                    ka = net_k[p1]
                    if tag == _BK_NET:
                        ov, ok = va, ka
                    else:
                        vb = net_v[p2]
                        kb = net_k[p2]
                        if tag == _BK_SHORT:
                            same = ~(va ^ vb) & ~(ka ^ kb)
                            ov, ok = va & same, ka & same
                        elif tag == _BK_WAND:
                            ov = va & vb
                            ok = (ka & kb) | (ka & ~va) | (kb & ~vb)
                        elif tag == _BK_WOR:
                            ov = va | vb
                            ok = (ka & kb) | va | vb
                        else:  # _BK_ANDNOT
                            nv = kb & ~vb
                            ov = va & nv
                            ok = (ka & kb) | (ka & ~va) | (kb & ~nv)
                    ov = ov & maskm
                    ok = ok & maskm
                    if seg is not None:
                        # Same pin rerouted to different sources on
                        # different lanes: the disjoint masked resolves
                        # fold per unique row before one plain store.
                        ov = _np.bitwise_or.reduceat(ov, seg, axis=0)
                        ok = _np.bitwise_or.reduceat(ok, seg, axis=0)
                    bv[rows] = bv[rows] & keepm | ov
                    bk[rows] = bk[rows] & keepm | ok
                pins_v.append(bv)
                pins_k.append(bk)
            v, k = _run_ops_compiled(ops, pins_v, pins_k)
            net_v[out] = v
            net_k[out] = k
        elif code == _ST_CONST:
            _, v_mat, k_mat, out = step
            net_v[out] = v_mat
            net_k[out] = k_mat
        else:  # _ST_BLEND
            _apply_blend_plan(step[1], net_v, net_k)


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def _run_shard_plan(plan: _ShardPlan, golden: SimulationTrace,
                    compare: _ComparePlan, passes: int, skip_cycles: int,
                    reseed, inputs,
                    record_lane_outputs: bool) -> VectorResult:
    np = _np
    words = plan.words
    num_nets = plan.num_nets
    zrow, frow = plan.zrow, plan.frow
    net_v = np.zeros((num_nets + 4, words), dtype=np.uint64)
    net_k = np.zeros((num_nets + 4, words), dtype=np.uint64)
    net_v[num_nets + 1] = _U64_MAX   # known-1 slot (absent CE)
    net_k[num_nets + 1] = _U64_MAX
    net_k[num_nets + 2] = _U64_MAX   # known-0 slot (absent reset)

    state_v = plan.ff_state_v.copy()
    state_k = plan.ff_state_k.copy()
    has_ffs = plan.ff_q.size > 0
    pending = plan.pending0.copy()
    first_mismatch: List[Optional[int]] = [None] * plan.lanes
    lane_outputs: Optional[List[Dict[str, List[Tuple[int, int]]]]] = \
        [] if record_lane_outputs else None
    slow_sample = record_lane_outputs or bool(plan.output_masks)
    gv = gk = None
    if reseed is not None:
        gv, gk = reseed
    cycles_simulated = 0

    for cycle in range(len(inputs)):
        cycles_simulated = cycle + 1
        if gv is not None:
            net_v[:num_nets] = gv[cycle][:, None]
            net_k[:num_nets] = gk[cycle][:, None]
        in_idx, in_v, in_k = inputs[cycle]
        if in_idx.size:
            net_v[in_idx] = in_v
            net_k[in_idx] = in_k
        if has_ffs:
            net_v[plan.ff_q] = state_v
            net_k[plan.ff_q] = state_k
        if plan.pre_blend is not None:
            _apply_blend_plan(plan.pre_blend, net_v, net_k)

        _run_pass(plan.steps, net_v, net_k, zrow, frow)
        if plan.pre_blend is not None:
            _apply_blend_plan(plan.pre_blend, net_v, net_k)
        for _ in range(passes - 1):
            # Later passes only re-settle the override feedback cone,
            # and stop early at the fixed point: an unchanged state
            # would make the next pass recompute exactly itself.
            prev_v = net_v.copy()
            prev_k = net_k.copy()
            _run_pass(plan.reduced_steps, net_v, net_k, zrow, frow)
            if plan.pre_blend is not None:
                _apply_blend_plan(plan.pre_blend, net_v, net_k)
            if np.array_equal(net_v, prev_v) and \
                    np.array_equal(net_k, prev_k):
                break

        # Sample outputs; fold golden disagreement into per-word masks.
        if slow_sample:
            golden_out = golden.outputs[cycle]
            mismatch = zrow
            sampled: Optional[Dict[str, List[Tuple[int, int]]]] = \
                {} if record_lane_outputs else None
            for port_name, position, net in compare.positions:
                if net >= 0:
                    v, k = net_v[net], net_k[net]
                else:
                    v, k = zrow, zrow
                lane_overrides = plan.output_masks.get((port_name,
                                                       position))
                if lane_overrides is not None:
                    v, k = _blend_rows(v, k, lane_overrides, net_v, net_k,
                                       zrow, frow)
                if sampled is not None:
                    sampled.setdefault(port_name, []).append(
                        (_row_int(v), _row_int(k)))
                if cycle < skip_cycles:
                    continue
                gold = golden_out[port_name][position]
                if gold == logic.UNKNOWN:
                    continue
                expect = _U64_MAX if gold == logic.ONE else _U64_0
                mismatch = mismatch | ~k | (v ^ expect)
            if sampled is not None:
                lane_outputs.append(sampled)
        elif cycle >= skip_cycles:
            idx, expect = compare.cycles[cycle]
            if idx.size:
                mismatch = np.bitwise_or.reduce(
                    ~net_k[idx] | (net_v[idx] ^ expect), axis=0)
            else:
                mismatch = zrow
        else:
            mismatch = zrow

        fresh = mismatch & pending
        if fresh.any():
            pending = pending & ~fresh
            for word_index in np.nonzero(fresh)[0]:
                word = int(fresh[word_index])
                base = int(word_index) << 6
                while word:
                    low = word & -word
                    first_mismatch[base + low.bit_length() - 1] = cycle
                    word ^= low

        # Clock edge: gather pins, blend lane overrides, advance states.
        if has_ffs:
            dv = net_v[plan.ff_d]
            dk = net_k[plan.ff_d]
            ev = net_v[plan.ff_ce]
            ek = net_k[plan.ff_ce]
            rv = net_v[plan.ff_r]
            rk = net_k[plan.ff_r]
            for position, port, lane_overrides in plan.ff_overrides:
                if port == "D":
                    dv[position], dk[position] = _blend_rows(
                        dv[position], dk[position], lane_overrides,
                        net_v, net_k, zrow, frow)
                elif port == "CE":
                    ev[position], ek[position] = _blend_rows(
                        ev[position], ek[position], lane_overrides,
                        net_v, net_k, zrow, frow)
                else:
                    rv[position], rk[position] = _blend_rows(
                        rv[position], rk[position], lane_overrides,
                        net_v, net_k, zrow, frow)
            sel1 = ek & ev
            sel0 = ek & ~ev
            unk = ~ek
            agree = state_k & dk & ~(state_v ^ dv)
            next_v = (sel1 & dv) | (sel0 & state_v) | (unk & agree
                                                       & state_v)
            next_k = (sel1 & dk) | (sel0 & state_k) | (unk & agree)
            keep = rk & ~rv
            state_v = next_v & keep
            state_k = (next_k & keep) | (rk & rv)

        if not record_lane_outputs and not pending.any():
            break

    outcomes = [LaneOutcome(first_mismatch[lane] is not None,
                            first_mismatch[lane])
                for lane in range(plan.lanes)]
    return VectorResult(outcomes, cycles_simulated, lane_outputs)


# ----------------------------------------------------------------------
# Program wrapper with campaign-lifetime memos
# ----------------------------------------------------------------------
class NumpyProgram:
    """A design's lane program plus compiled-artefact memos.

    Campaigns memoize one instance per implementation fingerprint (see
    :meth:`repro.faults.cache.CampaignCacheEntry.numpy_program`), so
    repeated runs reuse shard plans (the patched, batch-compiled sweeps),
    golden broadcasts, input stores and comparison plans.  Memo keys pin
    their keyed objects, which keeps ``id()``-based keys collision-free.
    """

    #: shard plans kept per program (LRU)
    MAX_PLANS = 512
    #: golden / stimulus derived memos kept per program
    MAX_AUX = 8

    def __init__(self, program: VectorProgram) -> None:
        _require_numpy()
        self.program = program
        self.design = program.design
        self._plans: "OrderedDict[Tuple, Tuple]" = OrderedDict()
        self._reseeds: "OrderedDict[int, Tuple]" = OrderedDict()
        self._inputs: "OrderedDict[int, Tuple]" = OrderedDict()
        self._compares: "OrderedDict[Tuple, Tuple]" = OrderedDict()

    # ------------------------------------------------------------------
    def shard_plan(self, overlays: Sequence[FaultOverlay],
                   width: Optional[int] = None,
                   cone: Optional[FaultCone] = None,
                   key: Optional[Tuple] = None) -> _ShardPlan:
        if key is not None:
            hit = self._plans.get(key)
            if hit is not None:
                self._plans.move_to_end(key)
                return hit[0]
        plan = _build_shard_plan(self.program, overlays, width, cone)
        if key is not None:
            self._plans[key] = (plan, cone)
            while len(self._plans) > self.MAX_PLANS:
                self._plans.popitem(last=False)
        return plan

    def reseed_for(self, golden: SimulationTrace):
        hit = self._reseeds.get(id(golden))
        if hit is None:
            hit = (golden, broadcast_trace_numpy(golden))
            self._reseeds[id(golden)] = hit
            while len(self._reseeds) > self.MAX_AUX:
                self._reseeds.popitem(last=False)
        return hit[1]

    def inputs_for(self, stimulus):
        hit = self._inputs.get(id(stimulus))
        if hit is None:
            hit = (stimulus, broadcast_inputs_numpy(self.design, stimulus))
            self._inputs[id(stimulus)] = hit
            while len(self._inputs) > self.MAX_AUX:
                self._inputs.popitem(last=False)
        return hit[1]

    def compare_for(self, golden: SimulationTrace,
                    ports: Optional[Sequence[str]]) -> _ComparePlan:
        key = (id(golden), tuple(ports) if ports is not None else None)
        hit = self._compares.get(key)
        if hit is None:
            hit = (golden, _compile_compare(self.design, golden, ports))
            self._compares[key] = hit
            while len(self._compares) > self.MAX_AUX:
                self._compares.popitem(last=False)
        return hit[1]

    # ------------------------------------------------------------------
    def simulate_shard(self, overlays: Sequence[FaultOverlay], stimulus,
                       golden: SimulationTrace,
                       passes: Optional[int] = None,
                       skip_cycles: int = 0,
                       ports: Optional[Sequence[str]] = None,
                       cone: Optional[FaultCone] = None,
                       width: Optional[int] = None,
                       plan_key: Optional[Tuple] = None,
                       record_lane_outputs: bool = False) -> VectorResult:
        """Memo-backed equivalent of :func:`simulate_lanes_numpy`."""
        if passes is None:
            passes = max((overlay.required_passes()
                          for overlay in overlays), default=1)
        plan = self.shard_plan(overlays, width, cone, key=plan_key)
        reseed = self.reseed_for(golden) if cone is not None else None
        inputs = self.inputs_for(stimulus)
        compare = self.compare_for(golden, ports)
        return _run_shard_plan(plan, golden, compare, passes, skip_cycles,
                               reseed, inputs, record_lane_outputs)


def compile_numpy_program(program: VectorProgram) -> NumpyProgram:
    """Wrap a lane program for numpy-compiled shard sweeps."""
    return NumpyProgram(program)


def simulate_lanes_numpy(program: VectorProgram,
                         overlays: Sequence[FaultOverlay],
                         stimulus,
                         golden: SimulationTrace,
                         passes: Optional[int] = None,
                         skip_cycles: int = 0,
                         ports: Optional[Sequence[str]] = None,
                         cone: Optional[FaultCone] = None,
                         width: Optional[int] = None,
                         reseed=None,
                         inputs=None,
                         record_lane_outputs: bool = False) -> VectorResult:
    """Drop-in twin of :func:`.bitparallel.simulate_lanes`.

    Same contract, same semantics, same :class:`VectorResult` — evaluated
    through the compiled numpy sweep.  *reseed* / *inputs*, when given,
    are the array forms built by :func:`broadcast_trace_numpy` /
    :func:`broadcast_inputs_numpy`.
    """
    _require_numpy()
    if isinstance(program, NumpyProgram):
        program = program.program
    if passes is None:
        passes = max((overlay.required_passes() for overlay in overlays),
                     default=1)
    plan = _build_shard_plan(program, overlays, width, cone)
    if cone is not None and reseed is None:
        reseed = broadcast_trace_numpy(golden)
    if inputs is None:
        inputs = broadcast_inputs_numpy(program.design, stimulus)
    compare = _compile_compare(program.design, golden, ports)
    return _run_shard_plan(plan, golden, compare, passes, skip_cycles,
                           reseed, inputs, record_lane_outputs)
