"""Fault-injection campaigns: the experiment of the paper's Tables 3 and 4.

A campaign takes one implemented design, builds its fault list, samples a
configurable number of bits, evaluates them through a pluggable execution
backend (see :mod:`repro.faults.engine`) and aggregates the results: the
fraction of upsets producing wrong answers (Table 3) and the breakdown of
error-causing upsets by effect category (Table 4).

``run_campaign`` keeps its historical signature; the ``backend=`` knob
selects the execution strategy (``"serial"`` — the seed semantics and the
default, ``"batch"`` — shared simulator programs per overlay signature,
``"process"`` — sharded ``multiprocessing`` workers, ``"vector"`` — whole
fault shards packed into big-int lanes and swept bit-parallel through
:mod:`repro.sim.bitparallel`, ``"numpy"`` — the same lane sweep compiled
to vectorized ``uint64`` array kernels with cross-cone packing through
:mod:`repro.sim.npkernel`; needs the optional numpy dependency) and
``use_cache=`` controls the golden-trace
/ fault-effect cache (:mod:`repro.faults.cache`).  All backends produce
bit-identical aggregates for the same seed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from typing import Dict, List, Optional, Sequence

from ..pnr.flow import Implementation
from ..sim.compile import CompiledDesign
from ..sim.vectors import campaign_workload, stimulus_from_samples, \
    tmr_stimulus_from_samples
from . import categories
from .cache import get_cache
from .engine import (BackendLike, CampaignContext, FaultTask, FaultVerdict,
                     ProgressCallback, resolve_backend)
from .fault_list import FaultListManager
from .injector import FaultResult
from .upsets import UpsetModelLike, resolve_upset_model

#: Campaign prefilter modes: ``"none"`` evaluates every sampled injection;
#: ``"static"`` synthesizes the verdicts of injections whose every bit the
#: layout analyzer (:mod:`repro.analysis.layout`) proved silent, so the
#: backends only simulate faults that can possibly change an output.
PREFILTER_CHOICES = ("none", "static")


@dataclasses.dataclass
class CampaignConfig:
    """Parameters of one fault-injection campaign."""

    #: number of upsets to inject (the paper injects ~10% of the relevant
    #: bits; ``None`` means "sample_fraction of the fault list")
    num_faults: Optional[int] = None
    #: fraction of the fault list to sample when ``num_faults`` is None
    sample_fraction: float = 0.10
    #: random seed for fault sampling (publication year by default)
    seed: int = 2005
    #: workload length in clock cycles
    workload_cycles: int = 12
    #: workload seed (same stream for every design of an experiment)
    workload_seed: int = 2005
    #: fault list selection mode (see :mod:`repro.faults.fault_list`)
    fault_list_mode: str = "design"
    #: cycles ignored at the start of the comparison
    skip_cycles: int = 0
    #: how many bits one injection flips (see :mod:`repro.faults.upsets`):
    #: ``"single"`` (seed semantics), ``"mbu[:k]"`` (adjacent multi-bit
    #: clusters) or ``"accumulate[:k]"`` (upsets accrue between scrubs)
    upset_model: UpsetModelLike = "single"
    #: ``"static"`` skips provably-silent bits via the layout analyzer's
    #: defeat map; verdicts and aggregates stay bit-identical to ``"none"``
    prefilter: str = "none"


@dataclasses.dataclass
class CategoryCount:
    """Occurrences of one effect category within a campaign."""

    injected: int = 0
    wrong: int = 0


@dataclasses.dataclass
class CampaignResult:
    """Aggregated outcome of one campaign (one row of Table 3)."""

    design: str
    mode: str
    fault_list_size: int
    injected: int
    wrong_answers: int
    results: List[FaultResult]
    by_category: Dict[str, CategoryCount]
    duration_seconds: float
    #: name of the execution backend that evaluated the campaign
    backend: str = "serial"
    #: parameterized name of the upset model that built the injections
    upset_model: str = "single"
    #: fault-sampling seed of the campaign (provenance for reports)
    seed: int = 2005
    #: prefilter mode the campaign ran under (``"none"`` / ``"static"``)
    prefilter: str = "none"
    #: injections skipped as provably silent (verdicts synthesized)
    skipped_silent: int = 0

    @property
    def simulated(self) -> int:
        """Injections actually evaluated by the execution backend."""
        return self.injected - self.skipped_silent

    @property
    def wrong_answer_percent(self) -> float:
        if not self.injected:
            return 0.0
        return 100.0 * self.wrong_answers / self.injected

    @property
    def faults_per_second(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.injected / self.duration_seconds

    def effect_table(self) -> Dict[str, int]:
        """Error-causing upsets per category (one column of Table 4)."""
        return {category: count.wrong
                for category, count in self.by_category.items()}

    def summary_row(self) -> Dict[str, object]:
        return {
            "design": self.design,
            "injected": self.injected,
            "wrong": self.wrong_answers,
            "wrong_percent": round(self.wrong_answer_percent, 2),
        }


def _synthesized_silent_verdict(task: FaultTask) -> FaultVerdict:
    """The verdict a provably-silent injection would simulate to.

    Matches :meth:`~repro.faults.engine.CampaignContext.evaluate` exactly:
    the category/resource/detail surface comes from the modelled effect,
    and a fault whose taint never reaches an output can neither produce a
    wrong answer nor a first mismatch cycle.
    """
    effect = task.effect
    return FaultVerdict(
        index=task.index,
        bit=task.bit,
        resource_kind=effect.resource[0],
        category=effect.category,
        has_effect=effect.has_effect,
        wrong_answer=False,
        first_mismatch_cycle=None,
        detail=effect.detail,
    )


def _checkpoint_key(implementation: Implementation,
                    config: CampaignConfig,
                    context, model, num_groups: int,
                    stimulus: Optional[Sequence[Dict[str, int]]],
                    fault_bits: Optional[Sequence[int]]) -> str:
    """Content digest identifying a campaign for shard checkpointing.

    Two campaigns share shard checkpoints only when this digest matches —
    it must therefore cover everything that can change a verdict: the
    implemented bitstream, the upset model and its sampling seed, the
    fault-list mode, the comparison window, the prefilter (which changes
    the *task list* the backend sees) and any explicitly supplied
    stimulus or bit list.  Deliberately excluded: the backend (all
    backends are bit-identical) and delivery knobs like timeouts.
    """
    from .cache import implementation_fingerprint

    if context.cache_entry is not None:
        fingerprint = context.cache_entry.fingerprint
    else:
        fingerprint = implementation_fingerprint(implementation)
    digest = hashlib.sha256()
    parts = [
        fingerprint,
        model.describe(),
        str(config.seed),
        config.fault_list_mode,
        str(config.skip_cycles),
        config.prefilter,
        str(num_groups),
        str(config.workload_cycles),
        str(config.workload_seed),
    ]
    if stimulus is not None:
        parts.append(repr([sorted(cycle.items()) for cycle in stimulus]))
    if fault_bits is not None:
        parts.append(repr(tuple(fault_bits)))
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def default_stimulus(implementation: Implementation,
                     config: CampaignConfig) -> List[Dict[str, int]]:
    """Build the campaign workload for a design.

    TMR designs expose triplicated data inputs (``DIN_tr0`` ...); the same
    sample stream is applied to all three copies, as the three domains share
    the external signal in the paper's setup.  Ports are scanned in sorted
    order and the *first* sorted data port (or first ``_tr0`` port) drives
    the workload — deliberately replacing the seed's insertion-order
    dependent pick, which could land on an arbitrary late port for
    multi-input designs.
    """
    ports = implementation.design.ports
    data_ports = sorted(name for name in ports
                        if ports[name].direction.value == "input"
                        and not name.upper().startswith("CLK"))
    if not data_ports:
        return [{} for _ in range(config.workload_cycles)]
    tmr_style = any(name.endswith("_tr0") for name in data_ports)
    base_port = None
    width = 0
    if tmr_style:
        for name in data_ports:
            if name.endswith("_tr0"):
                base_port = name[:-4]
                width = ports[name].width
                break
    if base_port is None:
        base_port = data_ports[0]
        width = ports[base_port].width
    samples = campaign_workload(width, config.workload_cycles,
                                config.workload_seed)
    if tmr_style:
        return tmr_stimulus_from_samples(samples, base_port)
    return stimulus_from_samples(samples, base_port)


def run_campaign(implementation: Implementation,
                 config: Optional[CampaignConfig] = None,
                 compiled: Optional[CompiledDesign] = None,
                 stimulus: Optional[Sequence[Dict[str, int]]] = None,
                 fault_bits: Optional[Sequence[int]] = None,
                 progress: Optional[ProgressCallback] = None,
                 backend: BackendLike = None,
                 use_cache: bool = True,
                 defeat_map=None) -> CampaignResult:
    """Run one fault-injection campaign on an implemented design.

    *defeat_map* optionally supplies a prebuilt static defeat map
    (:class:`repro.analysis.layout.DefeatMap`) for the ``"static"``
    prefilter; without one the map is built (or read from the campaign
    cache) on first use.
    """
    config = config if config is not None else CampaignConfig()
    engine = resolve_backend(backend)
    model = resolve_upset_model(config.upset_model)
    start = time.time()

    # Remember the last verdict count the backend reported so the final
    # 100% tick (below) fires exactly once per campaign.
    reported = [0]
    if progress is not None:
        caller_progress = progress

        def progress(done: int, total: int) -> None:
            reported[0] = done
            caller_progress(done, total)

    cache_entry = get_cache().entry_for(implementation) if use_cache else None
    if use_cache:
        stats = get_cache().stats
    else:
        stats = None
    context = CampaignContext(
        implementation, compiled=compiled,
        stimulus=list(stimulus) if stimulus is not None
        else default_stimulus(implementation, config),
        skip_cycles=config.skip_cycles,
        cache_entry=cache_entry, stats=stats)

    if cache_entry is not None:
        fault_list = cache_entry.fault_list(config.fault_list_mode,
                                            context.stats)
    else:
        fault_list = FaultListManager(implementation).build(
            config.fault_list_mode)
    if fault_bits is None:
        count = config.num_faults if config.num_faults is not None else \
            max(1, int(len(fault_list) * config.sample_fraction))
        groups = model.injections(
            fault_list, count, config.seed,
            total_bits=implementation.layout.total_bits)
    else:
        # An explicit bit list bypasses the model's sampling but keeps
        # the historical one-bit-per-injection semantics.
        groups = [(bit,) for bit in fault_bits]

    if config.prefilter not in PREFILTER_CHOICES:
        raise ValueError(f"unknown campaign prefilter "
                         f"{config.prefilter!r}; choose from "
                         f"{PREFILTER_CHOICES}")
    # Arm shard-level checkpointing: sharding backends persist completed
    # shards under this key (when a cache tier is active) so interrupted
    # campaigns resume instead of recomputing.
    context.checkpoint_key = _checkpoint_key(
        implementation, config, context, model, len(groups),
        stimulus, fault_bits)
    skipped_silent = 0
    if config.prefilter == "static" and groups:
        if defeat_map is None:
            from ..analysis.layout import defeat_map_for

            defeat_map = defeat_map_for(
                implementation, mode=config.fault_list_mode,
                compiled=context.compiled, modeler=context.modeler,
                effect_lookup=context.effect_of_bit, use_cache=use_cache)
        # Split the injections *before* modeling them into tasks: silent
        # single-bit injections synthesize their verdicts straight from
        # the map's predictions (which carry the effect's verdict
        # surface), so the campaign never touches their fault models.
        live_groups: List[tuple] = []      # (original index, bit tuple)
        silent_groups: List[tuple] = []
        for index, group in enumerate(groups):
            bits = tuple(group)
            # A multi-bit injection is skippable only when *every* bit of
            # the cluster is proved silent: taint closures are unions, so
            # the merged overlay's closure misses the outputs too.
            if all(defeat_map.is_silent(bit) for bit in bits):
                silent_groups.append((index, bits))
            else:
                live_groups.append((index, bits))
        skipped_silent = len(silent_groups)
        # Backends index scratch arrays by task.index, so the live subset
        # is modeled with dense indices; verdicts are mapped back to the
        # original injection indices before aggregation.
        live_tasks = context.tasks_for_groups(
            [bits for _index, bits in live_groups])
        live_verdicts = engine.run(context, live_tasks, progress)
        verdicts = [
            dataclasses.replace(verdict, index=index)
            for (index, _bits), verdict in zip(live_groups, live_verdicts)]
        for index, bits in silent_groups:
            if len(bits) == 1:
                prediction = defeat_map.predictions[bits[0]]
                verdicts.append(FaultVerdict(
                    index=index, bit=bits[0],
                    resource_kind=prediction.resource_kind,
                    category=prediction.category,
                    has_effect=prediction.has_effect,
                    wrong_answer=False, first_mismatch_cycle=None,
                    detail=prediction.detail))
            else:
                # Multi-bit clusters need the merged effect's category /
                # detail surface; per-bit effects are cache-backed.
                task = context.tasks_for_groups([bits])[0]
                verdicts.append(dataclasses.replace(
                    _synthesized_silent_verdict(task), index=index))
        verdicts.sort(key=lambda verdict: verdict.index)
    else:
        tasks = context.tasks_for_groups(groups)
        verdicts = engine.run(context, tasks, progress)

    # Backends only tick the callback every PROGRESS_INTERVAL tasks, so a
    # small campaign would otherwise finish without ever reporting; status
    # consumers (the service's job progress) rely on the final 100% tick.
    # Campaigns whose last backend tick already reported every verdict
    # (task counts that are exact interval multiples) must not tick twice.
    if progress is not None and reported[0] != len(verdicts):
        progress(len(verdicts), len(verdicts))

    results: List[FaultResult] = []
    by_category: Dict[str, CategoryCount] = {
        category: CategoryCount() for category in categories.TABLE4_ORDER}
    wrong_answers = 0
    for verdict in verdicts:
        results.append(verdict.to_result())
        bucket = by_category.setdefault(verdict.category, CategoryCount())
        bucket.injected += 1
        if verdict.wrong_answer:
            bucket.wrong += 1
            wrong_answers += 1

    return CampaignResult(
        design=implementation.design.name,
        mode=config.fault_list_mode,
        fault_list_size=len(fault_list),
        injected=len(results),
        wrong_answers=wrong_answers,
        results=results,
        by_category=by_category,
        duration_seconds=time.time() - start,
        backend=engine.name,
        upset_model=model.describe(),
        seed=config.seed,
        prefilter=config.prefilter,
        skipped_silent=skipped_silent,
    )


def run_campaigns(implementations: Dict[str, Implementation],
                  config: Optional[CampaignConfig] = None,
                  progress: Optional[ProgressCallback] = None,
                  backend: BackendLike = None,
                  use_cache: bool = True) -> Dict[str, CampaignResult]:
    """Run the same campaign over several designs (the five filter versions)."""
    engine = resolve_backend(backend)
    results: Dict[str, CampaignResult] = {}
    for name, implementation in implementations.items():
        results[name] = run_campaign(implementation, config,
                                     progress=progress, backend=engine,
                                     use_cache=use_cache)
    return results
