"""Campaign execution engine: pluggable backends over pure fault units.

A fault-injection campaign is a batch workload: an immutable golden
reference (the fault-free device), a list of independent single-bit upsets,
and one verdict per upset.  This module splits that workload into pure,
picklable units and executes them behind interchangeable backends:

* :class:`FaultTask` — one sampled configuration bit together with its
  modelled :class:`~repro.faults.models.FaultEffect`;
* :class:`FaultVerdict` — the classified outcome of evaluating one task;
* :class:`CampaignContext` — the shared immutable context (implementation,
  compiled design, stimulus, golden trace) plus memoized derived artefacts,
  optionally backed by the process-wide :mod:`repro.faults.cache`;
* :class:`ExecutionBackend` — the strategy interface, with three
  implementations:

  - :class:`SerialBackend` — one task at a time, the seed semantics;
  - :class:`BatchBackend` — groups tasks whose overlays patch the simulator
    program identically and reuses one prepared program per group (opens on
    one net, and the large population of upsets that leave the gate program
    untouched, all share programs);
  - :class:`ProcessPoolBackend` — shards the task list across
    ``multiprocessing`` workers; each worker holds the compiled design once
    and streams verdicts back;
  - :class:`VectorBackend` — packs whole fault shards into the bit lanes of
    Python big integers and simulates them in one PPSFP-style sweep
    through the :mod:`repro.sim.bitparallel` kernel;
  - :class:`NumpyBackend` — compiles the lane program into vectorized
    numpy sweeps (:mod:`repro.sim.npkernel`) and packs lanes *across*
    cones under one union cone, so shards run near-full instead of
    fragmenting per fault group (requires the optional numpy dependency);
  - :class:`ShardedBackend` — the campaign service's executor: splits the
    task list into the deterministic :func:`~repro.faults.seeds.split_shards`
    schedule and runs each shard through a *vectorized* backend inside a
    ``concurrent.futures`` worker process, so process-level sharding and
    the numpy kernel stack multiplicatively.

Every backend must produce bit-identical campaign aggregates for the same
sampled fault list — the equivalence is enforced by the test suite.
"""

from __future__ import annotations

import abc
import dataclasses
import logging
import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..pnr.flow import Implementation
from ..sim import npkernel
from ..sim.bitparallel import (VectorProgram, broadcast_inputs,
                               broadcast_trace, compile_vector_program,
                               simulate_lanes)
from ..sim.compile import CompiledDesign, FaultCone
from ..sim.golden import compare_traces
from ..sim.simulator import SimulationTrace, Simulator
from .cache import CacheStats, CampaignCacheEntry
from .injector import FaultResult
from .models import FaultEffect, FaultModeler
from .seeds import split_shards

#: ``progress(done, total)`` callback signature shared by the engine API.
ProgressCallback = Callable[[int, int], None]

#: How often (in completed faults) the progress callback fires.
PROGRESS_INTERVAL = 250

LOGGER = logging.getLogger(__name__)


class BackendUnavailableError(RuntimeError):
    """A requested execution backend cannot run in this environment.

    Raised with an install hint when an optional dependency (numpy for
    ``--backend numpy``) is missing, so callers can distinguish "not
    installed here" from "no such backend".
    """


@dataclasses.dataclass(frozen=True, slots=True)
class FaultTask:
    """One unit of campaign work: an injection and its modelled effect.

    ``bit`` is the primary sampled bit (the seed semantics); under a
    multi-bit :mod:`~repro.faults.upsets` model ``bits`` carries the whole
    cluster flipped by this injection and ``effect`` is their merged
    overlay.  An empty ``bits`` means a classic single-bit task.
    """

    index: int
    bit: int
    effect: FaultEffect
    #: full injection cluster (debugging/provenance; empty for single-bit)
    bits: Tuple[int, ...] = ()


@dataclasses.dataclass(frozen=True, slots=True)
class FaultVerdict:
    """The classified outcome of one evaluated fault task."""

    index: int
    bit: int
    resource_kind: str
    category: str
    has_effect: bool
    wrong_answer: bool
    first_mismatch_cycle: Optional[int]
    detail: str = ""

    def to_result(self) -> FaultResult:
        """The campaign-level record (backward-compatible surface)."""
        return FaultResult(
            bit=self.bit,
            resource_kind=self.resource_kind,
            category=self.category,
            has_effect=self.has_effect,
            wrong_answer=self.wrong_answer,
            first_mismatch_cycle=self.first_mismatch_cycle,
            detail=self.detail,
        )


def program_signature(effect: FaultEffect) -> Tuple:
    """Identity of the simulator-program modifications of one overlay.

    Two overlays with the same signature patch the identical program
    entries, so their faults can share one prepared gate program.
    """
    overlay = effect.overlay
    return (tuple(sorted(overlay.lut_init_overrides.items())),
            tuple(sorted(overlay.gate_pin_overrides.items())))


class CampaignContext:
    """Shared, read-only context of one campaign plus memoized artefacts.

    When *cache_entry* is provided, golden traces, fault effects and fault
    cones are read through (and stored into) the process-wide campaign
    cache; otherwise the context keeps private memos for the duration of
    the campaign.
    """

    def __init__(self, implementation: Implementation,
                 compiled: Optional[CompiledDesign] = None,
                 stimulus: Optional[Sequence[Dict[str, int]]] = None,
                 skip_cycles: int = 0,
                 output_ports: Optional[Sequence[str]] = None,
                 cache_entry: Optional[CampaignCacheEntry] = None,
                 stats: Optional[CacheStats] = None) -> None:
        self.implementation = implementation
        self.cache_entry = cache_entry
        self.stats = stats if stats is not None else CacheStats()
        #: content digest of the exact task list this campaign hands to
        #: its backend (set by ``run_campaign``); checkpoint-capable
        #: backends persist completed shards under it so an interrupted
        #: campaign resumes instead of recomputing.  ``None`` disables
        #: checkpointing.
        self.checkpoint_key: Optional[str] = None
        if compiled is None:
            if cache_entry is not None:
                compiled = cache_entry.compiled_design(self.stats)
            else:
                compiled = CompiledDesign(implementation.design)
        elif cache_entry is not None:
            compiled = cache_entry.compiled_design(self.stats, compiled)
        self.compiled = compiled
        self.stimulus = list(stimulus) if stimulus is not None else []
        self.skip_cycles = skip_cycles
        self.output_ports = list(output_ports) if output_ports else None
        self._modeler: Optional[FaultModeler] = None
        self._golden: Optional[SimulationTrace] = None
        self._base_program = None
        self._vector_program: Optional[VectorProgram] = None
        self._numpy_program: Optional["npkernel.NumpyProgram"] = None
        self._local_cones: Dict[Tuple[int, ...], FaultCone] = {}

    # ------------------------------------------------------------------
    @property
    def modeler(self) -> FaultModeler:
        if self._modeler is None:
            self._modeler = FaultModeler(self.implementation, self.compiled)
        return self._modeler

    def detached(self) -> "CampaignContext":
        """A picklable clone without the process-wide cache attached.

        Cache entries hold weak references (unpicklable), so worker
        processes created under the ``spawn`` start method receive this
        detached copy; the golden trace and base program travel with it.
        """
        clone = CampaignContext(
            self.implementation, compiled=self.compiled,
            stimulus=self.stimulus, skip_cycles=self.skip_cycles,
            output_ports=self.output_ports)
        self._ensure_golden()
        clone._golden = self._golden
        clone._base_program = self._base_program
        clone._vector_program = self._vector_program
        return clone

    def prepare(self) -> None:
        """Force the golden trace and base program into existence."""
        self._ensure_golden()

    def _ensure_golden(self) -> None:
        if self._golden is not None:
            return
        if self.cache_entry is not None:
            self._golden, self._base_program = self.cache_entry.golden(
                self.compiled, self.stimulus, self.stats)
        else:
            simulator = Simulator(self.compiled)
            self._golden = simulator.run(self.stimulus, record_nets=True)
            self._base_program = simulator.program

    @property
    def golden(self) -> SimulationTrace:
        self._ensure_golden()
        return self._golden

    @property
    def base_program(self) -> object:
        """The overlay-free gate program shared by every faulty run."""
        self._ensure_golden()
        return self._base_program

    @property
    def vector_program(self) -> VectorProgram:
        """The compiled bit-parallel lane program of this design."""
        if self._vector_program is None:
            if self.cache_entry is not None:
                self._vector_program = self.cache_entry.vector_program(
                    self.compiled, self.stats)
            else:
                self._vector_program = compile_vector_program(self.compiled)
        return self._vector_program

    @property
    def numpy_program(self) -> "npkernel.NumpyProgram":
        """The numpy-compiled lane program (plans memoized per campaign)."""
        if self._numpy_program is None:
            if self.cache_entry is not None:
                self._numpy_program = self.cache_entry.numpy_program(
                    self.compiled, self.stats)
            else:
                self._numpy_program = npkernel.compile_numpy_program(
                    self.vector_program)
        return self._numpy_program

    # ------------------------------------------------------------------
    def effect_of_bit(self, bit: int) -> FaultEffect:
        if self.cache_entry is not None:
            return self.cache_entry.effect_of_bit(bit, self.modeler,
                                                  self.stats)
        return self.modeler.effect_of_bit(bit)

    def tasks_for(self, fault_bits: Sequence[int]) -> List[FaultTask]:
        """Model every sampled bit into an executable task list."""
        return [FaultTask(index, bit, self.effect_of_bit(bit))
                for index, bit in enumerate(fault_bits)]

    def tasks_for_groups(self, groups: Sequence[Sequence[int]]
                         ) -> List[FaultTask]:
        """Model a list of injections (one bit tuple each) into tasks.

        Single-bit groups produce tasks equal to :meth:`tasks_for`'s
        (same cached effects, same contents, empty ``bits``), so the
        ``single`` upset model stays bit-identical to the seed campaign;
        multi-bit groups carry their cluster in ``bits`` and merge the
        per-bit effects through
        :func:`repro.faults.upsets.merged_effect`.
        """
        from .upsets import merged_effect

        # Samples beyond the population size repeat bits; memoizing the
        # effect lookup locally keeps huge-scale task modelling linear in
        # the number of *distinct* bits.
        effects: Dict[int, FaultEffect] = {}

        def effect_of(bit: int) -> FaultEffect:
            effect = effects.get(bit)
            if effect is None:
                effect = effects[bit] = self.effect_of_bit(bit)
            return effect

        tasks: List[FaultTask] = []
        for index, group in enumerate(groups):
            bits = tuple(group)
            if len(bits) == 1:
                tasks.append(FaultTask(index, bits[0], effect_of(bits[0])))
            else:
                effect = merged_effect(
                    bits, [effect_of(bit) for bit in bits],
                    self.compiled)
                tasks.append(FaultTask(index, bits[0], effect, bits=bits))
        return tasks

    def cone_for(self, effect: FaultEffect) -> Optional[FaultCone]:
        return self.cone_for_nets(effect.overlay.seed_nets)

    def cone_for_nets(self,
                      seed_nets: Sequence[int]) -> Optional[FaultCone]:
        """Memoized fan-out cone of a seed-net set.

        Serves both per-fault cones and the per-shard union cones of the
        vector backend: repeated campaigns produce the same shards, so
        union cones hit the cache like any other cone.
        """
        if not seed_nets:
            return None
        if self.cache_entry is not None:
            return self.cache_entry.cone(seed_nets, self.compiled,
                                         self.stats)
        key = tuple(seed_nets)
        cone = self._local_cones.get(key)
        if cone is None:
            self.stats.cone_misses += 1
            cone = self.compiled.fault_cone(seed_nets)
            self._local_cones[key] = cone
        else:
            self.stats.cone_hits += 1
        return cone

    # ------------------------------------------------------------------
    def evaluate(self, task: FaultTask,
                 simulator: Optional[Simulator] = None) -> FaultVerdict:
        """Evaluate one task against the golden reference."""
        effect = task.effect
        resource_kind = effect.resource[0]
        if not effect.has_effect:
            return FaultVerdict(
                index=task.index,
                bit=task.bit,
                resource_kind=resource_kind,
                category=effect.category,
                has_effect=False,
                wrong_answer=False,
                first_mismatch_cycle=None,
                detail=effect.detail,
            )
        cone = self.cone_for(effect)
        if simulator is None:
            simulator = Simulator(self.compiled, effect.overlay,
                                  base_program=self.base_program)
        if cone is not None:
            trace = simulator.run(self.stimulus, golden=self.golden,
                                  cone=cone)
        else:
            trace = simulator.run(self.stimulus)
        comparison = compare_traces(trace, self.golden,
                                    ports=self.output_ports,
                                    skip_cycles=self.skip_cycles)
        return FaultVerdict(
            index=task.index,
            bit=task.bit,
            resource_kind=resource_kind,
            category=effect.category,
            has_effect=True,
            wrong_answer=comparison.wrong_answer,
            first_mismatch_cycle=comparison.first_mismatch_cycle,
            detail=effect.detail,
        )


class ExecutionBackend(abc.ABC):
    """Strategy interface: evaluate a task list within a campaign context."""

    #: registry name, also used in reports
    name: str = "abstract"

    @abc.abstractmethod
    def run(self, context: CampaignContext, tasks: Sequence[FaultTask],
            progress: Optional[ProgressCallback] = None
            ) -> List[FaultVerdict]:
        """Evaluate *tasks*, returning verdicts in task order."""

    @staticmethod
    def _tick(progress: Optional[ProgressCallback], done: int,
              total: int) -> None:
        if progress is not None and done % PROGRESS_INTERVAL == 0:
            progress(done, total)


class SerialBackend(ExecutionBackend):
    """One fault at a time — the seed campaign loop, factored out."""

    name = "serial"

    def run(self, context: CampaignContext, tasks: Sequence[FaultTask],
            progress: Optional[ProgressCallback] = None
            ) -> List[FaultVerdict]:
        context.prepare()
        verdicts: List[FaultVerdict] = []
        total = len(tasks)
        for done, task in enumerate(tasks, start=1):
            verdicts.append(context.evaluate(task))
            self._tick(progress, done, total)
        return verdicts


class BatchBackend(ExecutionBackend):
    """Group faults by program signature, one prepared simulator per group.

    The simulator program only depends on an overlay's LUT-INIT and
    gate-pin overrides; faults sharing that signature (repeated opens on
    one route, and the large population of flip-flop / net / output-level
    upsets whose programs are untouched) reuse one prepared program instead
    of re-deriving it per fault.
    """

    name = "batch"

    def run(self, context: CampaignContext, tasks: Sequence[FaultTask],
            progress: Optional[ProgressCallback] = None
            ) -> List[FaultVerdict]:
        context.prepare()
        groups: Dict[Tuple, List[FaultTask]] = {}
        for task in tasks:
            groups.setdefault(program_signature(task.effect),
                              []).append(task)

        verdicts: List[Optional[FaultVerdict]] = [None] * len(tasks)
        total = len(tasks)
        done = 0
        for group in groups.values():
            shared_program = None
            for task in group:
                simulator = None
                if task.effect.has_effect:
                    if shared_program is None:
                        simulator = Simulator(
                            context.compiled, task.effect.overlay,
                            base_program=context.base_program)
                        shared_program = simulator.program
                    else:
                        simulator = Simulator(context.compiled,
                                              task.effect.overlay,
                                              program=shared_program)
                verdicts[task.index] = context.evaluate(task, simulator)
                done += 1
                self._tick(progress, done, total)
        return [verdict for verdict in verdicts if verdict is not None]


class VectorBackend(ExecutionBackend):
    """Bit-parallel (PPSFP-style) shard evaluation over integer lanes.

    Effectful tasks are grouped by the two shard invariants that must be
    homogeneous for bit-identical results — the number of combinational
    settle passes and whether a fault cone exists — then packed
    ``lane_width`` faults at a time into the big-int lanes of the
    :mod:`repro.sim.bitparallel` kernel.  One sweep over the levelized
    lane program simulates the whole shard against the cached golden
    trace; per-lane output divergence masks are demuxed back into
    :class:`FaultVerdict`\\ s, and a lane-retirement mask stops the sweep
    early once every lane of the shard has produced a wrong answer.

    ``last_run_stats`` records shard sizes and lane utilization of the
    most recent :meth:`run`, so benchmarks can report how full the lanes
    actually were.
    """

    name = "vector"

    def __init__(self, lane_width: int = 256) -> None:
        if lane_width < 1:
            raise ValueError("lane_width must be at least 1")
        self.lane_width = lane_width
        self.last_run_stats: Dict[str, object] = {}

    def run(self, context: CampaignContext, tasks: Sequence[FaultTask],
            progress: Optional[ProgressCallback] = None
            ) -> List[FaultVerdict]:
        context.prepare()
        program = context.vector_program
        total = len(tasks)
        done = 0
        verdicts: List[Optional[FaultVerdict]] = [None] * total

        groups: Dict[Tuple[int, bool], List[FaultTask]] = {}
        for task in tasks:
            overlay = task.effect.overlay
            if not task.effect.has_effect:
                verdicts[task.index] = context.evaluate(task)
                done += 1
                self._tick(progress, done, total)
                continue
            key = (overlay.required_passes(), bool(overlay.seed_nets))
            groups.setdefault(key, []).append(task)

        width = self.lane_width
        reseed = None
        inputs = None
        if groups:
            # Built once per campaign: every shard shares the stimulus
            # broadcast (and, for coned shards, the golden broadcast).
            inputs = broadcast_inputs(context.compiled, context.stimulus,
                                      (1 << width) - 1)
        shard_stats: List[Dict[str, object]] = []
        for (passes, coned), group in groups.items():
            for start in range(0, len(group), width):
                shard = group[start:start + width]
                overlays = [task.effect.overlay for task in shard]
                cone = None
                if coned:
                    seeds = sorted({net for overlay in overlays
                                    for net in overlay.seed_nets})
                    cone = context.cone_for_nets(seeds)
                    if reseed is None:
                        reseed = broadcast_trace(context.golden,
                                                 (1 << width) - 1)
                result = simulate_lanes(
                    program, overlays, context.stimulus, context.golden,
                    passes=passes, skip_cycles=context.skip_cycles,
                    ports=context.output_ports, cone=cone, width=width,
                    reseed=reseed if coned else None, inputs=inputs)
                for task, outcome in zip(shard, result.outcomes):
                    effect = task.effect
                    verdicts[task.index] = FaultVerdict(
                        index=task.index,
                        bit=task.bit,
                        resource_kind=effect.resource[0],
                        category=effect.category,
                        has_effect=True,
                        wrong_answer=outcome.wrong_answer,
                        first_mismatch_cycle=outcome.first_mismatch_cycle,
                        detail=effect.detail,
                    )
                    done += 1
                    self._tick(progress, done, total)
                shard_stats.append({
                    "lanes": len(shard),
                    "passes": passes,
                    "coned": coned,
                    "cone_gates": len(cone.gate_indices)
                    if cone is not None else len(program.entries),
                    "cycles_simulated": result.cycles_simulated,
                })
        used = sum(stat["lanes"] for stat in shard_stats)
        self.last_run_stats = {
            "lane_width": width,
            "shards": shard_stats,
            "packed_faults": used,
            "peak_lane_utilization": max(
                (stat["lanes"] / width for stat in shard_stats),
                default=0.0),
            "mean_lane_utilization": (used / (len(shard_stats) * width))
            if shard_stats else 0.0,
        }
        return [verdict for verdict in verdicts if verdict is not None]


class NumpyBackend(ExecutionBackend):
    """Numpy-compiled PPSFP sweeps with cross-cone lane packing.

    Three things distinguish this from :class:`VectorBackend`:

    * shards evaluate through :mod:`repro.sim.npkernel` — the lane
      program compiled into fused array operations instead of a Python
      loop interpreting one entry per gate;
    * identical injections are evaluated **once**: tasks are deduplicated
      by their flipped-bit cluster, one representative lane simulates,
      and every duplicate receives a re-indexed copy of its verdict (a
      10^6-injection campaign over a ~10^4-bit fault list collapses to
      the unique-bit population);
    * lanes pack **across** cones: effectful faults are only split by
      whether they have a cone at all, sorted by seed nets so
      neighbouring lanes share fan-out, and each shard simulates the
      union cone at the maximum pass count of its members.  Simulating a
      lane under a superset cone (or extra settle passes) cannot change
      its outcome — nets outside a lane's own cone carry golden values —
      so packing trades no accuracy for near-full lanes.

    Verdicts are bit-identical to :class:`SerialBackend` (enforced by the
    test suite).  Requires the optional numpy dependency; constructing
    the backend without it raises :class:`BackendUnavailableError`.

    ``last_run_stats`` reports shard sizes and lane utilization (lanes
    over word-quantized capacity, i.e. ``ceil(lanes/64)*64``) of the most
    recent :meth:`run` for the benchmark harness.
    """

    name = "numpy"

    def __init__(self, lane_width: int = 1024) -> None:
        if not npkernel.have_numpy():
            raise BackendUnavailableError(
                "the numpy campaign backend needs the optional numpy "
                f"dependency ({npkernel.NUMPY_INSTALL_HINT}); "
                "or pick --backend vector")
        if lane_width < 1:
            raise ValueError("lane_width must be at least 1")
        self.lane_width = lane_width
        self.last_run_stats: Dict[str, object] = {}

    def run(self, context: CampaignContext, tasks: Sequence[FaultTask],
            progress: Optional[ProgressCallback] = None
            ) -> List[FaultVerdict]:
        context.prepare()
        program = context.numpy_program
        total = len(tasks)
        done = 0
        verdicts: List[Optional[FaultVerdict]] = [None] * total

        # Injections flipping the same bit cluster are the same physical
        # fault; evaluate one representative per cluster.
        unique: Dict[Tuple[int, ...], List[FaultTask]] = {}
        for task in tasks:
            unique.setdefault(task.bits or (task.bit,), []).append(task)

        def settle(rep_verdict: FaultVerdict,
                   bucket: List[FaultTask]) -> None:
            nonlocal done
            r = rep_verdict
            for task in bucket:
                verdicts[task.index] = r if task.index == r.index \
                    else FaultVerdict(
                        index=task.index, bit=r.bit,
                        resource_kind=r.resource_kind, category=r.category,
                        has_effect=r.has_effect, wrong_answer=r.wrong_answer,
                        first_mismatch_cycle=r.first_mismatch_cycle,
                        detail=r.detail)
                done += 1
                self._tick(progress, done, total)

        # Members are decorated (passes, seeds, key, rep) so the sort and
        # the per-shard pass maximum reuse one required_passes() call per
        # overlay; `key` is unique, so `rep` never gets compared.
        groups: Dict[bool, List[Tuple[int, Tuple[int, ...],
                                      Tuple[int, ...], FaultTask]]] = {}
        for key, bucket in unique.items():
            rep = bucket[0]
            if not rep.effect.has_effect:
                settle(context.evaluate(rep), bucket)
                continue
            overlay = rep.effect.overlay
            coned = bool(overlay.seed_nets)
            groups.setdefault(coned, []).append(
                (overlay.required_passes(), tuple(sorted(overlay.seed_nets)),
                 key, rep))

        shard_stats: List[Dict[str, object]] = []
        packed = 0
        capacity_total = 0
        for coned in sorted(groups):
            members = groups[coned]
            # A shard settles every lane with the worst member's pass
            # count, so lanes pack in pass-count order first — chunks
            # stay (mostly) pass-homogeneous without fragmenting shards.
            # The seed-net sort below it keeps neighbouring lanes in
            # overlapping fan-out, which keeps union cones tight.
            members.sort()
            for start in range(0, len(members), self.lane_width):
                shard = members[start:start + self.lane_width]
                overlays = [rep.effect.overlay
                            for _p, _s, _key, rep in shard]
                passes = shard[-1][0]
                cone = None
                if coned:
                    seeds = sorted({net for overlay in overlays
                                    for net in overlay.seed_nets})
                    cone = context.cone_for_nets(seeds)
                plan_key = ((id(cone) if cone is not None else None,)
                            + tuple(key for _p, _s, key, _rep in shard))
                result = program.simulate_shard(
                    overlays, context.stimulus, context.golden,
                    passes=passes, skip_cycles=context.skip_cycles,
                    ports=context.output_ports, cone=cone,
                    plan_key=plan_key)
                for (_p, _s, key, rep), outcome in zip(shard,
                                                       result.outcomes):
                    effect = rep.effect
                    settle(FaultVerdict(
                        index=rep.index,
                        bit=rep.bit,
                        resource_kind=effect.resource[0],
                        category=effect.category,
                        has_effect=True,
                        wrong_answer=outcome.wrong_answer,
                        first_mismatch_cycle=outcome.first_mismatch_cycle,
                        detail=effect.detail,
                    ), unique[key])
                lanes = len(shard)
                capacity = ((lanes + 63) // 64) * 64
                packed += lanes
                capacity_total += capacity
                shard_stats.append({
                    "lanes": lanes,
                    "capacity": capacity,
                    "passes": passes,
                    "coned": coned,
                    "cone_gates": len(cone.gate_indices)
                    if cone is not None
                    else len(program.program.entries),
                    "cycles_simulated": result.cycles_simulated,
                })
        self.last_run_stats = {
            "lane_width": self.lane_width,
            "shards": shard_stats,
            "packed_faults": packed,
            "unique_faults": len(unique),
            "demuxed_faults": total,
            "peak_lane_utilization": max(
                (stat["lanes"] / stat["capacity"]
                 for stat in shard_stats), default=0.0),
            "mean_lane_utilization": (packed / capacity_total)
            if capacity_total else 0.0,
        }
        return [verdict for verdict in verdicts if verdict is not None]


# ----------------------------------------------------------------------
# Process-pool backend.  Workers are primed through a fork-inherited (or,
# under spawn, pickled) context; already-modelled tasks travel in shards
# and verdicts stream back through the result queue.
_WORKER_CONTEXT: Optional[CampaignContext] = None


def _init_worker(context: CampaignContext) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context
    context.prepare()


def _run_shard(shard: List[FaultTask]) -> List[FaultVerdict]:
    context = _WORKER_CONTEXT
    assert context is not None, "worker used before initialization"
    return [context.evaluate(task) for task in shard]


class ProcessPoolBackend(ExecutionBackend):
    """Shard the sampled fault list across ``multiprocessing`` workers.

    Each worker receives the campaign context once (inherited on fork,
    pickled on spawn), holds the compiled design and golden reference,
    then evaluates shards of already-modelled :class:`FaultTask`s and
    streams verdicts back.  Verdict order — and therefore every campaign
    aggregate — is independent of the scheduling, so results are
    bit-identical to the serial backend.

    Small campaigns fall back to the serial path: BENCH_campaign.json
    shows the pool *losing* to serial at smoke scale (1.41x vs 2.33x at
    400 faults) because pool spin-up and context pickling dominate, while
    paper-scale campaigns (6000 faults) amortize them.  ``min_tasks``
    (default 1000, between those two measured points) is the cut-over;
    pass 0 to force the pool.
    """

    name = "process"

    def __init__(self, processes: Optional[int] = None,
                 shard_size: Optional[int] = None,
                 min_tasks: int = 1000) -> None:
        self.processes = processes
        self.shard_size = shard_size
        self.min_tasks = min_tasks

    def _process_count(self, num_tasks: int) -> int:
        if self.processes is not None:
            return max(1, self.processes)
        return max(1, min(os.cpu_count() or 1, num_tasks))

    def run(self, context: CampaignContext, tasks: Sequence[FaultTask],
            progress: Optional[ProgressCallback] = None
            ) -> List[FaultVerdict]:
        import multiprocessing

        processes = self._process_count(len(tasks))
        if not tasks or processes == 1 or len(tasks) < self.min_tasks:
            if tasks and processes > 1:
                LOGGER.info(
                    "process backend: %d tasks is below the %d-task "
                    "cut-over where pool spin-up stops paying for "
                    "itself; evaluating serially",
                    len(tasks), self.min_tasks)
            # Degrading to the serial path must be visible in reports
            # (benchmarks attribute faults/sec to the backend name).
            self.name = "process:serial-fallback"
            return SerialBackend().run(context, tasks, progress)
        self.name = ProcessPoolBackend.name

        try:
            mp_context = multiprocessing.get_context("fork")
        except ValueError:
            mp_context = multiprocessing.get_context()

        # Compute the golden reference before the workers start so they
        # inherit it (fork) or receive it pickled (spawn) instead of each
        # re-simulating it.  Under spawn the context must not carry the
        # process-wide cache entry (weak references are unpicklable).
        context.prepare()
        worker_context = context
        if mp_context.get_start_method() != "fork":
            worker_context = context.detached()

        shard_size = self.shard_size or max(
            1, (len(tasks) + 4 * processes - 1) // (4 * processes))
        task_list = list(tasks)
        shards = [task_list[start:start + shard_size]
                  for start in range(0, len(task_list), shard_size)]

        verdicts: List[Optional[FaultVerdict]] = [None] * len(tasks)
        total = len(tasks)
        done = 0
        with mp_context.Pool(processes=processes, initializer=_init_worker,
                             initargs=(worker_context,)) as pool:
            for shard_verdicts in pool.imap(_run_shard, shards):
                for verdict in shard_verdicts:
                    verdicts[verdict.index] = verdict
                    done += 1
                    self._tick(progress, done, total)
        return [verdict for verdict in verdicts if verdict is not None]


# ----------------------------------------------------------------------
# Sharded backend: the campaign service's executor.  Unlike the plain
# process pool (whose workers evaluate serially), each sharded worker
# runs a *vectorized* inner backend over its slice of the task list, so
# process parallelism and lane packing stack.
class CampaignWorkerError(RuntimeError):
    """A sharded campaign worker process died mid-campaign.

    Raised instead of the raw ``BrokenProcessPool`` so the service can
    fail the owning job with an actionable message (which backend, how
    many tasks in flight) rather than hanging or surfacing a bare pool
    error.
    """


_SHARD_INNER: Optional[ExecutionBackend] = None


def _init_shard_worker(context: CampaignContext, inner_spec: str) -> None:
    global _WORKER_CONTEXT, _SHARD_INNER
    _WORKER_CONTEXT = context
    _SHARD_INNER = resolve_backend(inner_spec)
    context.prepare()


def _run_task_shard(shard_index: int,
                    shard: List[FaultTask]) -> List[FaultVerdict]:
    context = _WORKER_CONTEXT
    assert context is not None and _SHARD_INNER is not None, \
        "sharded worker used before initialization"
    from ..service import chaos

    chaos.on_shard_start(shard_index)
    return _evaluate_shard_locally(_SHARD_INNER, context, shard)


def _evaluate_shard_locally(inner: ExecutionBackend,
                            context: CampaignContext,
                            shard: Sequence[FaultTask]
                            ) -> List[FaultVerdict]:
    # Inner backends place verdicts by task index into a list sized to
    # the tasks they were handed, so a shard must be locally re-indexed
    # before the run and its verdicts restored to global indices after.
    local = [dataclasses.replace(task, index=position)
             for position, task in enumerate(shard)]
    verdicts = inner.run(context, local)
    return [dataclasses.replace(verdict, index=shard[verdict.index].index)
            for verdict in verdicts]


class _ShardCheckpoints:
    """Parent-side shard-checkpoint view of one campaign's task list.

    Checkpoint identity chains three things: the campaign's content
    digest (``CampaignContext.checkpoint_key``, covering implementation,
    sampling and workload), the shard *schedule* (task count and shard
    count — a rerun with a different worker count simply misses), and
    the shard's position.  Payloads additionally carry their own
    ``[start, stop)`` range and are validated against the expected slice
    before reuse, so a checkpoint can never resume foreign work.
    """

    def __init__(self, tier: object, campaign_key: str, num_tasks: int,
                 num_shards: int) -> None:
        self.tier = tier
        self.prefix = f"{campaign_key}-{num_tasks}-{num_shards}"
        self.hits = 0
        self.stores = 0

    def _key(self, shard_index: int) -> str:
        return f"{self.prefix}-{shard_index}"

    def load(self, shard_index: int, start: int,
             stop: int) -> Optional[List[FaultVerdict]]:
        payload = self.tier.load_shard_verdicts(self._key(shard_index))
        if not isinstance(payload, dict) \
                or payload.get("start") != start \
                or payload.get("stop") != stop:
            return None
        verdicts = payload.get("verdicts")
        if not isinstance(verdicts, list) \
                or len(verdicts) != stop - start \
                or any(not isinstance(verdict, FaultVerdict)
                       for verdict in verdicts):
            return None
        self.hits += 1
        return verdicts

    def store(self, shard_index: int, start: int, stop: int,
              verdicts: Sequence[FaultVerdict]) -> None:
        ok = self.tier.store_shard_verdicts(
            self._key(shard_index),
            {"start": start, "stop": stop, "verdicts": list(verdicts)})
        if ok:
            self.stores += 1
            from ..service import chaos

            chaos.on_shard_checkpointed(self.stores)


class ShardedBackend(ExecutionBackend):
    """Shard the task list across worker processes running a vector kernel.

    The shard schedule is :func:`~repro.faults.seeds.split_shards` —
    contiguous, non-overlapping, covering — so any worker can re-derive
    its slice from ``(len(tasks), shards, index)`` and the sharding is
    reproducible independent of pool scheduling.  Verdicts are placed by
    their task index, making the result order (and every campaign
    aggregate) bit-identical to the serial backend regardless of which
    worker finishes first.

    ``inner`` names the per-worker backend (default: ``numpy`` when the
    optional dependency is importable, else ``vector``) — each worker
    holds the compiled design once and sweeps its whole shard through the
    vectorized kernel, so saturated lane sweeps stack with process
    parallelism instead of replacing it.

    Small campaigns (below ``min_tasks``) skip the pool entirely and run
    the inner backend inline — same cut-over rationale as
    :class:`ProcessPoolBackend`, visible in reports as
    ``sharded:inline-fallback``.

    **Supervision and crash-safety.**  Shards are submitted as individual
    futures and supervised: a shard whose worker dies (the pool breaks)
    is retried up to ``max_shard_retries`` times with exponential backoff
    plus deterministic jitter, respawning the executor each round.  A
    shard that keeps failing degrades *inline* through the backend chain
    ``inner → numpy → vector → serial`` (every step is bit-identical, so
    degradation changes provenance, never results); only when even the
    serial path fails does the campaign abort with
    :class:`CampaignWorkerError`.  When the campaign context carries a
    ``checkpoint_key`` and a shared cache tier is active, every completed
    shard's verdicts are persisted as a checkpoint and an interrupted
    campaign's rerun reloads them instead of recomputing — the resume
    path of the campaign service.  All of it is recorded in
    ``last_run_stats`` (``retries``, ``degradations``,
    ``checkpoint_hits``/``checkpoint_stores``), which the pipeline
    surfaces as volatile report provenance.

    ``REPRO_SHARD_WORKERS`` / ``REPRO_SHARD_MIN_TASKS`` /
    ``REPRO_SHARD_RETRIES`` override the construction defaults from the
    environment — chiefly so chaos tests and the service can pin a
    deterministic shard schedule without threading knobs through every
    layer.
    """

    name = "sharded"

    #: degradation order after the configured inner backend fails
    DEGRADATION_CHAIN = ("numpy", "vector", "serial")

    def __init__(self, workers: Optional[int] = None,
                 inner: Optional[str] = None,
                 shards_per_worker: int = 2,
                 min_tasks: Optional[int] = None,
                 max_shard_retries: Optional[int] = None,
                 retry_backoff_s: float = 0.25) -> None:
        if workers is None and os.environ.get("REPRO_SHARD_WORKERS"):
            workers = int(os.environ["REPRO_SHARD_WORKERS"])
        if min_tasks is None:
            min_tasks = int(os.environ.get("REPRO_SHARD_MIN_TASKS", "1000"))
        if max_shard_retries is None:
            max_shard_retries = int(os.environ.get("REPRO_SHARD_RETRIES",
                                                   "2"))
        self.workers = workers
        self.inner = inner
        self.shards_per_worker = max(1, shards_per_worker)
        self.min_tasks = min_tasks
        self.max_shard_retries = max(0, max_shard_retries)
        self.retry_backoff_s = max(0.0, retry_backoff_s)
        self.last_run_stats: Dict[str, object] = {}

    def inner_spec(self) -> str:
        if self.inner is not None:
            return self.inner
        return "numpy" if npkernel.have_numpy() else "vector"

    def _worker_count(self, num_tasks: int) -> int:
        if self.workers is not None:
            return max(1, self.workers)
        return max(1, min(os.cpu_count() or 1, num_tasks))

    # ------------------------------------------------------------------
    def _degradation_chain(self, inner_spec: str) -> List[str]:
        chain = [inner_spec]
        for fallback in self.DEGRADATION_CHAIN:
            if fallback not in chain:
                chain.append(fallback)
        return chain

    def _resolve_inner(self, inner_spec: str,
                       degradations: List[Dict[str, object]]
                       ) -> ExecutionBackend:
        """Resolve the inner backend, degrading when it is unavailable.

        Catches :class:`BackendUnavailableError` only — an explicitly
        requested ``inner="numpy"`` without numpy installed degrades to
        ``vector`` (recorded in provenance) instead of failing the
        campaign, matching the tentpole's "graceful when numpy is
        unavailable" contract.
        """
        last: Optional[Exception] = None
        for candidate in self._degradation_chain(inner_spec):
            try:
                backend = resolve_backend(candidate)
            except BackendUnavailableError as exc:
                last = exc
                continue
            if candidate != inner_spec:
                degradations.append({
                    "shard": None, "from": inner_spec, "to": candidate,
                    "reason": str(last)})
            return backend
        raise BackendUnavailableError(
            f"no usable inner backend for {inner_spec!r}") from last

    def _checkpoints_for(self, context: CampaignContext, num_tasks: int,
                         num_shards: int) -> Optional[_ShardCheckpoints]:
        key = getattr(context, "checkpoint_key", None)
        if key is None or not num_tasks:
            return None
        from ..service.tier import active_tier

        tier = active_tier()
        if tier is None:
            return None
        return _ShardCheckpoints(tier, key, num_tasks, num_shards)

    def _degrade_shard(self, context: CampaignContext,
                       shard: Sequence[FaultTask], shard_index: int,
                       inner_spec: str,
                       degradations: List[Dict[str, object]],
                       cause: Exception) -> List[FaultVerdict]:
        """Evaluate a repeatedly-failing shard inline, degrading backends.

        Runs in the parent process — whatever killed the workers (an OOM
        kill, a poisoned kernel, chaos) cannot break the pool again from
        here, and each chain step is bit-identical by the engine's
        equivalence contract.
        """
        reason = f"{type(cause).__name__}: {cause}"
        last: Exception = cause
        for candidate in self._degradation_chain(inner_spec):
            try:
                backend = resolve_backend(candidate)
                verdicts = _evaluate_shard_locally(backend, context, shard)
            except Exception as exc:
                last = exc
                continue
            degradations.append({
                "shard": shard_index, "from": inner_spec,
                "to": f"inline:{backend.name}", "reason": reason})
            LOGGER.warning(
                "sharded backend: shard %d exhausted %d retries (%s); "
                "degraded to inline %s", shard_index,
                self.max_shard_retries, reason, backend.name)
            return verdicts
        raise CampaignWorkerError(
            f"shard {shard_index} failed after {self.max_shard_retries} "
            f"retries and every degradation fallback "
            f"({' -> '.join(self._degradation_chain(inner_spec))}); "
            f"last error: {type(last).__name__}: {last}") from last

    # ------------------------------------------------------------------
    def run(self, context: CampaignContext, tasks: Sequence[FaultTask],
            progress: Optional[ProgressCallback] = None
            ) -> List[FaultVerdict]:
        import multiprocessing
        import time as _time
        from concurrent.futures import ProcessPoolExecutor, as_completed
        from concurrent.futures.process import BrokenProcessPool

        from .seeds import substream

        inner_spec = self.inner_spec()
        workers = self._worker_count(len(tasks))
        degradations: List[Dict[str, object]] = []
        if not tasks or workers == 1 or len(tasks) < self.min_tasks:
            # Degrading must stay visible in reports (benchmarks attribute
            # faults/sec to the backend name) — same contract as the
            # process backend's serial fallback.
            self.name = "sharded:inline-fallback"
            inner = self._resolve_inner(inner_spec, degradations)
            stats: Dict[str, object] = {
                "workers": 1, "shards": 1, "inner": inner.name,
                "inline": True, "retries": 0,
                "checkpoint_hits": 0, "checkpoint_stores": 0,
                "degradations": degradations,
            }
            # The inline path is one shard of the trivial one-shard
            # schedule, checkpointed like any other so even small service
            # campaigns resume instead of recomputing.
            checkpoints = self._checkpoints_for(context, len(tasks), 1)
            if checkpoints is not None:
                cached = checkpoints.load(0, 0, len(tasks))
                if cached is not None:
                    stats["checkpoint_hits"] = 1
                    self.last_run_stats = stats
                    return list(cached)
            verdicts = inner.run(context, tasks, progress)
            if checkpoints is not None and len(verdicts) == len(tasks):
                checkpoints.store(0, 0, len(tasks), verdicts)
                stats["checkpoint_stores"] = checkpoints.stores
            self.last_run_stats = stats
            return verdicts
        self.name = ShardedBackend.name

        try:
            mp_context = multiprocessing.get_context("fork")
        except ValueError:
            mp_context = multiprocessing.get_context()

        # Same worker-priming strategy as ProcessPoolBackend: golden
        # trace computed once before the pool starts, cache entry
        # detached under spawn (weak references are unpicklable).
        context.prepare()
        worker_context = context
        if mp_context.get_start_method() != "fork":
            worker_context = context.detached()

        task_list = list(tasks)
        ranges = split_shards(len(task_list),
                              workers * self.shards_per_worker)
        descriptors = [(index, start, stop)
                       for index, (start, stop) in enumerate(ranges)
                       if stop > start]
        checkpoints = self._checkpoints_for(context, len(task_list),
                                            len(ranges))

        verdicts: List[Optional[FaultVerdict]] = [None] * len(task_list)
        total = len(task_list)
        done = 0

        def place(shard_verdicts: Sequence[FaultVerdict]) -> None:
            nonlocal done
            for verdict in shard_verdicts:
                verdicts[verdict.index] = verdict
                done += 1
                self._tick(progress, done, total)

        pending: List[Tuple[int, int, int]] = []
        for index, start, stop in descriptors:
            cached = checkpoints.load(index, start, stop) \
                if checkpoints is not None else None
            if cached is not None:
                place(cached)
            else:
                pending.append((index, start, stop))

        retries = 0
        attempts: Dict[int, int] = {}
        # Jitter decorrelates retry rounds without breaking determinism:
        # the stream is a labeled substream of the task count, so a rerun
        # sleeps the same schedule.
        jitter = substream(len(task_list), "shard-retry-jitter")
        executor: Optional[ProcessPoolExecutor] = None
        try:
            while pending:
                if executor is None:
                    executor = ProcessPoolExecutor(
                        max_workers=workers, mp_context=mp_context,
                        initializer=_init_shard_worker,
                        initargs=(worker_context, inner_spec))
                futures = {
                    executor.submit(_run_task_shard, index,
                                    task_list[start:stop]):
                    (index, start, stop)
                    for index, start, stop in pending}
                pending = []
                failed: List[Tuple[Tuple[int, int, int], Exception]] = []
                broken = False
                for future in as_completed(futures):
                    descriptor = futures[future]
                    try:
                        shard_verdicts = future.result()
                    except Exception as exc:
                        failed.append((descriptor, exc))
                        broken = broken or isinstance(exc,
                                                      BrokenProcessPool)
                        continue
                    place(shard_verdicts)
                    if checkpoints is not None:
                        index, start, stop = descriptor
                        checkpoints.store(index, start, stop,
                                          shard_verdicts)
                for (index, start, stop), exc in failed:
                    count = attempts.get(index, 0) + 1
                    attempts[index] = count
                    if count <= self.max_shard_retries:
                        retries += 1
                        pending.append((index, start, stop))
                    else:
                        shard_verdicts = self._degrade_shard(
                            context, task_list[start:stop], index,
                            inner_spec, degradations, exc)
                        place(shard_verdicts)
                        if checkpoints is not None:
                            checkpoints.store(index, start, stop,
                                              shard_verdicts)
                if broken and executor is not None:
                    # A broken pool can run nothing more; dead-worker
                    # respawn is a fresh executor on the next round.
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = None
                if pending and failed:
                    backoff = self.retry_backoff_s * (
                        2 ** (max(attempts.values()) - 1))
                    _time.sleep(min(2.0, backoff) * (0.5 + jitter.random()))
        finally:
            if executor is not None:
                executor.shutdown(wait=True, cancel_futures=True)
        self.last_run_stats = {
            "workers": workers,
            "shards": len(descriptors),
            "shard_sizes": [stop - start for start, stop in ranges],
            "inner": inner_spec,
            "inline": False,
            "retries": retries,
            "checkpoint_hits": checkpoints.hits
            if checkpoints is not None else 0,
            "checkpoint_stores": checkpoints.stores
            if checkpoints is not None else 0,
            "degradations": degradations,
        }
        return [verdict for verdict in verdicts if verdict is not None]


#: Registry of backend names accepted by the ``backend=`` knob.
BACKENDS = {
    SerialBackend.name: SerialBackend,
    BatchBackend.name: BatchBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    VectorBackend.name: VectorBackend,
    NumpyBackend.name: NumpyBackend,
    ShardedBackend.name: ShardedBackend,
    # convenience aliases
    "processpool": ProcessPoolBackend,
    "pool": ProcessPoolBackend,
    "service": ShardedBackend,
    "bitparallel": VectorBackend,
    "ppsfp": VectorBackend,
    "np": NumpyBackend,
    "compiled": NumpyBackend,
}

#: The documented backend names, for CLI ``choices=`` (the registry also
#: accepts aliases, but they are not part of the public surface).
BACKEND_CHOICES = (SerialBackend.name, BatchBackend.name,
                   ProcessPoolBackend.name, VectorBackend.name,
                   NumpyBackend.name, ShardedBackend.name)

BackendLike = Union[None, str, ExecutionBackend]


def resolve_backend(backend: BackendLike = None) -> ExecutionBackend:
    """Normalize the ``backend=`` knob into an :class:`ExecutionBackend`.

    Accepts ``None`` (serial, the seed semantics), a registry name, a
    backend class or a ready instance.
    """
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, type) and issubclass(backend, ExecutionBackend):
        return backend()
    if isinstance(backend, str):
        key = backend.strip().lower()
        if key in BACKENDS:
            return BACKENDS[key]()
        raise ValueError(f"unknown campaign backend {backend!r}; choose "
                         f"from {sorted(set(BACKENDS))}")
    raise TypeError(f"backend must be None, a name or an ExecutionBackend, "
                    f"got {type(backend).__name__}")
