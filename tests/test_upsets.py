"""Tests for the upset-model axis (single / mbu / accumulate).

The satellite requirements: multi-bit fault lists are deterministic under
a fixed seed and sampled without replacement, and the ``single`` model
stays bit-identical to the seed campaign across every engine backend.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.faults import (AccumulatedUpset, CampaignConfig, FaultList,
                          MultiBitUpset, SingleUpset, UpsetModel,
                          merged_effect, resolve_upset_model, run_campaign)
from repro.faults.engine import CampaignContext
from repro.fpga.config import LUT_BITS, lut_bit


@pytest.fixture()
def fault_list():
    return FaultList("design", bits=list(range(0, 600, 3)), composition={})


class TestResolveUpsetModel:
    def test_default_is_single(self):
        assert isinstance(resolve_upset_model(None), SingleUpset)
        assert resolve_upset_model(None).describe() == "single"

    def test_names_and_parameters(self):
        assert isinstance(resolve_upset_model("single"), SingleUpset)
        model = resolve_upset_model("mbu:3")
        assert isinstance(model, MultiBitUpset) and model.size == 3
        model = resolve_upset_model("accumulate:8")
        assert isinstance(model, AccumulatedUpset) and model.interval == 8
        assert resolve_upset_model("mbu").size == 2
        assert resolve_upset_model("accumulate").interval == 4

    def test_aliases_instances_and_classes(self):
        assert isinstance(resolve_upset_model("mcu:2"), MultiBitUpset)
        assert isinstance(resolve_upset_model("scrub"), AccumulatedUpset)
        instance = MultiBitUpset(5)
        assert resolve_upset_model(instance) is instance
        assert isinstance(resolve_upset_model(SingleUpset), SingleUpset)

    def test_errors(self):
        with pytest.raises(ValueError, match="unknown upset model"):
            resolve_upset_model("massive")
        with pytest.raises(ValueError, match="integer"):
            resolve_upset_model("mbu:lots")
        with pytest.raises(ValueError, match="no parameter"):
            resolve_upset_model("single:2")
        with pytest.raises(TypeError):
            resolve_upset_model(3.14)
        with pytest.raises(ValueError):
            MultiBitUpset(0)
        with pytest.raises(ValueError):
            AccumulatedUpset(0)


class TestInjectionSampling:
    def test_single_matches_seed_sampling(self, fault_list):
        groups = SingleUpset().injections(fault_list, 40, seed=7)
        assert groups == [(bit,) for bit in fault_list.sample(40, 7)]

    def test_deterministic_under_fixed_seed(self, fault_list):
        for model in (SingleUpset(), MultiBitUpset(3), AccumulatedUpset(5)):
            first = model.injections(fault_list, 50, seed=11, total_bits=600)
            second = model.injections(fault_list, 50, seed=11,
                                      total_bits=600)
            assert first == second
            other = model.injections(fault_list, 50, seed=12, total_bits=600)
            assert first != other

    def test_sampled_without_replacement(self, fault_list):
        for model in (SingleUpset(), MultiBitUpset(2), AccumulatedUpset(4)):
            groups = model.injections(fault_list, 60, seed=3,
                                      total_bits=600)
            primaries = [group[0] for group in groups] \
                if not isinstance(model, AccumulatedUpset) \
                else [bit for group in groups for bit in group]
            assert len(primaries) == len(set(primaries))

    def test_mbu_clusters_are_contiguous(self, fault_list):
        model = MultiBitUpset(3)
        for group in model.injections(fault_list, 40, seed=5,
                                      total_bits=600):
            assert 1 <= len(group) <= 3
            ordered = sorted(group)
            # a physical strike flips a contiguous window of cells
            assert ordered == list(range(ordered[0], ordered[-1] + 1))
            assert group[0] in ordered

    def test_mbu_stays_contiguous_at_address_space_top(self):
        narrow = FaultList("design", bits=[9], composition={})
        assert MultiBitUpset(2).injections(narrow, 1, seed=1,
                                           total_bits=10) == [(9, 8)]
        # size 3 at the edge grows downward without holes (9,8,7 — not
        # the reflected-with-a-gap 9,?,7 pattern)
        assert MultiBitUpset(3).injections(narrow, 1, seed=1,
                                           total_bits=10) == [(9, 8, 7)]
        # a one-bit address space cannot grow at all
        assert MultiBitUpset(4).injections(narrow, 1, seed=1,
                                           total_bits=10) == [(9, 8, 7, 6)]

    def test_accumulate_partitions_the_sample(self, fault_list):
        model = AccumulatedUpset(4)
        groups = model.injections(fault_list, 42, seed=9)
        flattened = [bit for group in groups for bit in group]
        assert flattened == fault_list.sample(42, 9)
        assert [len(group) for group in groups] == [4] * 10 + [2]

    def test_custom_model_plugs_in(self, fault_list,
                                   tiny_fir_implementation):
        class EveryOther(UpsetModel):
            name = "every-other"

            def injections(self, fault_list, count, seed, total_bits=None):
                sample = fault_list.sample(count, seed)
                return [tuple(sample[i:i + 2])
                        for i in range(0, len(sample), 2)]

        config = CampaignConfig(num_faults=12, workload_cycles=6,
                                upset_model=EveryOther())
        result = run_campaign(tiny_fir_implementation, config)
        assert result.injected == 6
        assert result.upset_model == "every-other"


class TestMergedEffect:
    def test_lut_flips_compose_by_xor(self, tiny_fir_implementation):
        implementation = tiny_fir_implementation
        context = CampaignContext(implementation)
        site = implementation.resources.lut_sites[0]
        layout = implementation.layout
        bits = [layout.bit_of(lut_bit(site.x, site.y, site.slot, table_bit))
                for table_bit in range(2)]
        effects = [context.effect_of_bit(bit) for bit in bits]
        merged = merged_effect(tuple(bits), effects, context.compiled)
        (gate_index,) = set(effects[0].overlay.lut_init_overrides) \
            | set(effects[1].overlay.lut_init_overrides)
        base = context.compiled.gates[gate_index].init
        assert merged.overlay.lut_init_overrides[gate_index] == base ^ 0b11
        assert merged.category == effects[0].category
        assert "2-bit upset" in merged.detail

    def test_single_constituent_passes_through(self, tiny_fir_implementation):
        context = CampaignContext(tiny_fir_implementation)
        effect = context.effect_of_bit(0)
        assert merged_effect((0,), [effect], context.compiled) is effect

    def test_seed_nets_union_and_passes(self, tiny_fir_implementation):
        context = CampaignContext(tiny_fir_implementation)
        fault_list = context.cache_entry.fault_list("design",
                                                    context.stats) \
            if context.cache_entry else None
        # Any two distinct effectful bits will do.
        from repro.faults import FaultListManager

        bits = FaultListManager(tiny_fir_implementation).build("design").bits
        effectful = []
        for bit in bits:
            effect = context.effect_of_bit(bit)
            if effect.has_effect and effect.overlay.seed_nets:
                effectful.append((bit, effect))
            if len(effectful) == 2:
                break
        (bit_a, effect_a), (bit_b, effect_b) = effectful
        merged = merged_effect((bit_a, bit_b), [effect_a, effect_b],
                               context.compiled)
        assert set(merged.overlay.seed_nets) == \
            set(effect_a.overlay.seed_nets) | set(effect_b.overlay.seed_nets)
        assert merged.overlay.comb_passes == max(
            effect_a.overlay.comb_passes, effect_b.overlay.comb_passes)


class TestCampaignIntegration:
    """End-to-end campaigns under every model, across engine backends."""

    BACKENDS = ("serial", "batch", "vector")

    def _results(self, implementation, model, backend, num_faults=50):
        config = CampaignConfig(num_faults=num_faults, workload_cycles=6,
                                upset_model=model)
        result = run_campaign(implementation, config, backend=backend)
        return result, [dataclasses.asdict(r) for r in result.results]

    def test_single_bit_identical_to_seed_semantics(
            self, tiny_tmr_implementation):
        """``single`` must reproduce the historical explicit-bit path."""
        config = CampaignConfig(num_faults=50, workload_cycles=6)
        from repro.faults import FaultListManager

        fault_list = FaultListManager(tiny_tmr_implementation).build(
            "design")
        explicit = run_campaign(
            tiny_tmr_implementation, config,
            fault_bits=fault_list.sample(50, config.seed))
        for backend in self.BACKENDS:
            modeled, rows = self._results(tiny_tmr_implementation,
                                          "single", backend)
            assert rows == [dataclasses.asdict(r)
                            for r in explicit.results]
            assert modeled.wrong_answers == explicit.wrong_answers
            assert modeled.upset_model == "single"

    @pytest.mark.parametrize("model", ("mbu:2", "accumulate:4"))
    def test_multi_bit_backends_agree(self, tiny_tmr_implementation, model):
        reference, reference_rows = self._results(tiny_tmr_implementation,
                                                  model, "serial")
        for backend in ("batch", "vector"):
            result, rows = self._results(tiny_tmr_implementation, model,
                                         backend)
            assert rows == reference_rows
            assert result.wrong_answers == reference.wrong_answers

    def test_multi_bit_deterministic_and_seed_stable(
            self, tiny_fir_implementation):
        first, first_rows = self._results(tiny_fir_implementation, "mbu:2",
                                          "vector")
        second, second_rows = self._results(tiny_fir_implementation,
                                            "mbu:2", "vector")
        assert first_rows == second_rows
        config = CampaignConfig(num_faults=50, workload_cycles=6,
                                upset_model="mbu:2", seed=99)
        other = run_campaign(tiny_fir_implementation, config,
                             backend="vector")
        assert [r.bit for r in other.results] != \
            [r["bit"] for r in first_rows]

    def test_accumulate_groups_count(self, tiny_fir_implementation):
        config = CampaignConfig(num_faults=50, workload_cycles=6,
                                upset_model="accumulate:8")
        result = run_campaign(tiny_fir_implementation, config)
        assert result.injected == 7  # ceil(50 / 8)
        assert result.upset_model == "accumulate:8"
        assert result.seed == config.seed

    def test_denser_upsets_do_not_reduce_vulnerability(
            self, tiny_fir_implementation):
        """Accumulated upsets can only hurt: per-injection wrong-answer
        probability under accumulation >= the single-bit one."""
        single = run_campaign(
            tiny_fir_implementation,
            CampaignConfig(num_faults=60, workload_cycles=6),
            backend="vector")
        accumulated = run_campaign(
            tiny_fir_implementation,
            CampaignConfig(num_faults=60, workload_cycles=6,
                           upset_model="accumulate:6"),
            backend="vector")
        assert accumulated.wrong_answer_percent >= \
            single.wrong_answer_percent
