"""Structural validation of netlists.

The checker reports problems rather than raising, so callers can decide which
issues are fatal for their flow (a floating LUT output is harmless, an
undriven flip-flop clock is not).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from .ir import Definition, Direction, Netlist
from .traversal import (floating_nets, multiply_driven_nets, topological_levels, undriven_nets)
from .ir import NetlistError


@dataclasses.dataclass
class ValidationIssue:
    """A single problem found by :func:`validate_definition`."""

    severity: str          # "error" or "warning"
    kind: str              # machine readable category
    message: str           # human readable description
    subject: Optional[str] = None   # name of the offending object

    def __str__(self) -> str:
        subject = f" [{self.subject}]" if self.subject else ""
        return f"{self.severity.upper()}: {self.kind}{subject}: {self.message}"


@dataclasses.dataclass
class ValidationReport:
    """Aggregated result of a validation pass."""

    issues: List[ValidationIssue] = dataclasses.field(default_factory=list)

    @property
    def errors(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def add(self, severity: str, kind: str, message: str,
            subject: Optional[str] = None) -> None:
        self.issues.append(ValidationIssue(severity, kind, message, subject))

    def raise_if_errors(self) -> None:
        if not self.ok:
            summary = "; ".join(str(e) for e in self.errors[:5])
            raise NetlistError(f"netlist validation failed: {summary}")

    def __str__(self) -> str:
        if not self.issues:
            return "validation: clean"
        return "\n".join(str(i) for i in self.issues)


def validate_definition(definition: Definition,
                        allow_floating_outputs: bool = True,
                        check_cycles: bool = True) -> ValidationReport:
    """Validate a (typically flat) definition.

    Checks performed:

    * every net with sinks has exactly one driver;
    * no net has multiple drivers;
    * primitive input pins are connected (warning if not);
    * output ports of the definition are driven;
    * the combinational portion is acyclic (if *check_cycles*).
    """
    report = ValidationReport()

    for net in undriven_nets(definition):
        report.add("error", "undriven-net",
                   f"net has {len(net.sinks())} sink(s) but no driver",
                   net.name)

    for net in multiply_driven_nets(definition):
        drivers = ", ".join(repr(d) for d in net.drivers()[:4])
        report.add("error", "multiple-drivers",
                   f"net has {len(net.drivers())} drivers: {drivers}", net.name)

    if not allow_floating_outputs:
        for net in floating_nets(definition):
            report.add("warning", "floating-net",
                       "net has a driver but no sinks", net.name)

    for inst in definition.instances.values():
        if not inst.is_primitive:
            continue
        for port in inst.reference.ports.values():
            if port.direction is not Direction.INPUT:
                continue
            for bit in port.bits():
                if inst.net_of(port.name, bit) is None:
                    report.add("warning", "unconnected-input",
                               f"input {port.name}[{bit}] is unconnected",
                               inst.name)

    for port in definition.output_ports():
        for bit in port.bits():
            pin = definition.top_pin(port.name, bit)
            if pin.net is None:
                report.add("error", "undriven-output",
                           f"top output port bit {port.name}[{bit}] is not "
                           "connected to any net", definition.name)

    if check_cycles:
        try:
            topological_levels(definition)
        except NetlistError as exc:
            report.add("error", "combinational-loop", str(exc), definition.name)

    return report


def validate_netlist(netlist: Netlist, **kwargs) -> ValidationReport:
    """Validate the top definition of *netlist*."""
    if netlist.top is None:
        report = ValidationReport()
        report.add("error", "no-top", "netlist has no top definition")
        return report
    return validate_definition(netlist.top, **kwargs)
