"""Routing-fabric model: wires, programmable interconnect points (PIPs) and
the connectivity rules that generate them.

Routing resources are identified by plain tuples so they can be used as
dictionary keys and serialized cheaply:

* ``("opin", x, y, pin)``  — a slice output pin (``X``/``Y``/``XQ``/``YQ``)
* ``("ipin", x, y, pin)``  — a slice input pin (``F1``..``G4``, ``BX``,
  ``BY``, ``CE``, ``SR``)
* ``("wire", x, y, d, i)`` — general routing wire *i* leaving tile ``(x, y)``
  in direction *d* and terminating in the adjacent tile
* ``("pad_o", k)``         — the fabric-driving side of I/O pad *k* (used
  when the pad is an input of the design)
* ``("pad_i", k)``         — the fabric-reading side of I/O pad *k* (used
  when the pad is an output of the design)

A PIP is a directed ``(source_node, sink_node)`` pair controlled by one
configuration bit.  The connectivity rules below are deterministic functions
of the device geometry, so the full routing graph never needs to be stored:
the router asks for the *downhill* PIPs of a node on demand and the
configuration-layout code enumerates the PIPs owned by one tile on demand.

All PIP bits are modelled as independent pass-transistor-style bits.  This is
the simplification that lets a single flipped bit produce the paper's four
routing-upset effects directly: turning a used PIP off is an *Open*; turning
an unused PIP on can create a *Bridge*, a *Conflict* or an *Input-Antenna*
depending on whether its two ends are used (see
:mod:`repro.faults.models`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .device import (DIRECTIONS, OPPOSITE, SLICE_INPUT_PINS, SLICE_OUTPUT_PINS, Device)

Node = Tuple
Pip = Tuple[Node, Node]

_OPIN_ORDINAL = {pin: index for index, pin in enumerate(SLICE_OUTPUT_PINS)}
_IPIN_ORDINAL = {pin: index for index, pin in enumerate(SLICE_INPUT_PINS)}


# ----------------------------------------------------------------------
# Node constructors / predicates
# ----------------------------------------------------------------------
def opin(x: int, y: int, pin: str) -> Node:
    return ("opin", x, y, pin)


def ipin(x: int, y: int, pin: str) -> Node:
    return ("ipin", x, y, pin)


def wire(x: int, y: int, direction: str, index: int) -> Node:
    return ("wire", x, y, direction, index)


def pad_output(pad_index: int) -> Node:
    return ("pad_o", pad_index)


def pad_input(pad_index: int) -> Node:
    return ("pad_i", pad_index)


def node_kind(node: Node) -> str:
    return node[0]


def node_tile(device: Device, node: Node) -> Tuple[int, int]:
    """The tile a node belongs to (a pad belongs to its perimeter tile)."""
    kind = node[0]
    if kind in ("opin", "ipin", "wire"):
        return (node[1], node[2])
    pad = device.pads[node[1]]
    return (pad.x, pad.y)


def wire_far_end(device: Device, node: Node) -> Optional[Tuple[int, int]]:
    """The tile a wire terminates in (None if it would leave the array)."""
    _, x, y, direction, _index = node
    return device.neighbor(x, y, direction)


# ----------------------------------------------------------------------
# Connectivity rules
# ----------------------------------------------------------------------
def opin_wire_indices(device: Device, pin: str) -> List[int]:
    """Wire indices a slice output pin may drive (4 consecutive indices)."""
    width = device.spec.wires_per_direction
    base = (2 * _OPIN_ORDINAL[pin]) % width
    return [(base + offset) % width for offset in range(min(4, width))]


def pad_wire_indices(device: Device, pad_index: int) -> List[int]:
    """Wire indices an input pad may drive."""
    width = device.spec.wires_per_direction
    base = (3 * pad_index) % width
    return [(base + offset) % width for offset in range(min(4, width))]


def ipin_accepts(device: Device, pin: str, wire_index: int) -> bool:
    """Whether a slice input pin's mux has a PIP from wires of this index.

    Input muxes are fully populated (every arriving wire index is a
    candidate), which mirrors the large input multiplexers of the Spartan-II
    CLB and keeps the fabric easily routable.
    """
    return True


def pad_accepts(pad_index: int, wire_index: int) -> bool:
    """Whether an output pad's mux has a PIP from wires of this index."""
    return True


def spip_out_indices(device: Device, in_direction: str, out_direction: str,
                     wire_index: int) -> List[int]:
    """Outgoing wire indices reachable from an arriving wire in a switch box.

    Turning connections keep the wire index ("subset" switch box); the
    straight-through connection additionally offers ``index + 2``, giving the
    router some track mobility along long straight runs.
    """
    width = device.spec.wires_per_direction
    if out_direction == in_direction:
        return [wire_index, (wire_index + 2) % width]
    return [wire_index]


def opin_feeds_ipin(pin_out: str, pin_in: str) -> bool:
    """Whether a local feedback PIP exists from an output pin to an input pin.

    The dedicated LUT→FF data path inside the slice is *not* a PIP (it is the
    DMUX slice configuration bit); these feedback PIPs model the local lines
    that let a slice output reach the inputs of its own tile without using
    general routing.
    """
    return (_OPIN_ORDINAL[pin_out] + _IPIN_ORDINAL[pin_in]) % 2 == 0


def incoming_wires(device: Device, x: int, y: int) -> List[Node]:
    """Wires owned by neighbouring tiles that terminate in tile ``(x, y)``."""
    result: List[Node] = []
    width = device.spec.wires_per_direction
    for direction, (dx, dy) in DIRECTIONS.items():
        # A wire arriving here travels in `direction` from the tile at the
        # opposite offset.
        source_x, source_y = x - dx, y - dy
        if not device.in_bounds(source_x, source_y):
            continue
        for index in range(width):
            result.append(wire(source_x, source_y, direction, index))
    return result


def downhill(device: Device, node: Node) -> List[Node]:
    """All nodes reachable from *node* through exactly one PIP."""
    kind = node[0]
    width = device.spec.wires_per_direction
    result: List[Node] = []

    if kind == "opin":
        _, x, y, pin = node
        indices = opin_wire_indices(device, pin)
        for direction in DIRECTIONS:
            if device.wire_exists(x, y, direction):
                for index in indices:
                    result.append(wire(x, y, direction, index))
        for pin_in in SLICE_INPUT_PINS:
            if opin_feeds_ipin(pin, pin_in):
                result.append(ipin(x, y, pin_in))
        for pad in device.pads_at(x, y):
            result.append(pad_input(pad.index))
        return result

    if kind == "pad_o":
        pad = device.pads[node[1]]
        indices = pad_wire_indices(device, node[1])
        for direction in DIRECTIONS:
            if device.wire_exists(pad.x, pad.y, direction):
                for index in indices:
                    result.append(wire(pad.x, pad.y, direction, index))
        for pin_in in SLICE_INPUT_PINS:
            if (node[1] + _IPIN_ORDINAL[pin_in]) % 2 == 0:
                result.append(ipin(pad.x, pad.y, pin_in))
        return result

    if kind == "wire":
        _, x, y, direction, index = node
        target = device.neighbor(x, y, direction)
        if target is None:
            return result
        tx, ty = target
        comes_from = OPPOSITE[direction]
        for out_direction in DIRECTIONS:
            if out_direction == comes_from:
                continue
            if device.wire_exists(tx, ty, out_direction):
                for out_index in spip_out_indices(device, direction,
                                                  out_direction, index):
                    result.append(wire(tx, ty, out_direction, out_index))
        for pin_in in SLICE_INPUT_PINS:
            if ipin_accepts(device, pin_in, index):
                result.append(ipin(tx, ty, pin_in))
        for pad in device.pads_at(tx, ty):
            if pad_accepts(pad.index, index):
                result.append(pad_input(pad.index))
        return result

    # ipin and pad_i nodes are sinks: nothing downhill.
    return result


# ----------------------------------------------------------------------
# Flat indexed routing-resource graph
# ----------------------------------------------------------------------
class RoutingGraph:
    """The device's routing resources as flat integer-indexed arrays.

    The router's A* search spends nearly all of its time hashing node
    tuples into cost/occupancy dictionaries and re-deriving neighbour
    lists.  This class enumerates the full node universe once per device,
    assigns every node an integer id, and exposes

    * ``node_id`` / ``nodes`` — the tuple <-> id bijection,
    * ``tile_x`` / ``tile_y`` — per-id tile coordinates (a pad maps to its
      perimeter tile),
    * ``is_sink`` / ``is_wire`` / ``is_pad_in`` — per-id kind predicates,
    * ``downhill_ids`` — per-id neighbour ids, computed lazily in exactly
      the order :func:`downhill` emits them (so heap tie-breaking, and
      therefore every route tree, is bit-identical to the tuple router).

    Ids are assigned in sorted node-tuple order, so sorting ids is the
    same as sorting tuples — the property the router's deterministic
    frontier seeding relies on.

    Graphs are memoized per :class:`~repro.fpga.device.DeviceSpec` via
    :func:`routing_graph`; one graph serves every net, negotiation
    iteration, design and placement attempt on that device profile.
    """

    def __init__(self, device: Device) -> None:
        self.device = device
        width = device.spec.wires_per_direction
        nodes: List[Node] = []
        for x in range(device.columns):
            for y in range(device.rows):
                for pin in SLICE_OUTPUT_PINS:
                    nodes.append(opin(x, y, pin))
                for pin in SLICE_INPUT_PINS:
                    nodes.append(ipin(x, y, pin))
                for direction in DIRECTIONS:
                    if device.wire_exists(x, y, direction):
                        for index in range(width):
                            nodes.append(wire(x, y, direction, index))
        for pad in device.pads:
            nodes.append(pad_output(pad.index))
            nodes.append(pad_input(pad.index))
        nodes.sort()
        self.nodes: List[Node] = nodes
        self.node_id: Dict[Node, int] = {
            node: index for index, node in enumerate(nodes)}
        count = len(nodes)
        self.tile_x: List[int] = [0] * count
        self.tile_y: List[int] = [0] * count
        self.is_sink: List[bool] = [False] * count
        self.is_wire: List[bool] = [False] * count
        self.is_pad_in: List[bool] = [False] * count
        for index, node in enumerate(nodes):
            tile = node_tile(device, node)
            self.tile_x[index] = tile[0]
            self.tile_y[index] = tile[1]
            kind = node[0]
            self.is_sink[index] = kind in ("ipin", "pad_i")
            self.is_wire[index] = kind == "wire"
            self.is_pad_in[index] = kind == "pad_i"
        #: lazily filled per-id neighbour lists (None until first visited)
        self._adjacency: List[Optional[List[int]]] = [None] * count
        self._adjacency_complete = False
        self._np_tables: Optional[Dict[str, object]] = None

    def __len__(self) -> int:
        return len(self.nodes)

    def id_of(self, node: Node) -> int:
        return self.node_id[node]

    def downhill_ids(self, node_id: int) -> List[int]:
        """Neighbour ids of a node, in :func:`downhill` order."""
        adjacency = self._adjacency[node_id]
        if adjacency is None:
            lookup = self.node_id
            adjacency = [lookup[neighbor] for neighbor
                         in downhill(self.device, self.nodes[node_id])]
            self._adjacency[node_id] = adjacency
        return adjacency

    # --------------------------------------------------------------
    def build_adjacency(self) -> None:
        """Fill the whole adjacency table in one bulk pass.

        Produces, for every node, exactly the id list
        :meth:`downhill_ids` would compute — same neighbours, same order
        (asserted by the equivalence tests) — but via integer grid
        lookups instead of constructing and hashing one node tuple per
        neighbour, which makes the cold build several times cheaper than
        letting the router fault the table in lazily.
        """
        if self._adjacency_complete:
            return
        device = self.device
        width = device.spec.wires_per_direction
        nodes = self.nodes
        count = len(nodes)
        columns, rows = device.columns, device.rows
        dir_list = list(DIRECTIONS)
        dir_ordinal = {d: i for i, d in enumerate(dir_list)}
        num_ipins = len(SLICE_INPUT_PINS)

        # Integer id grids, filled from the already-sorted node universe.
        wire_grid = [-1] * (columns * rows * len(dir_list) * width)
        ipin_grid = [-1] * (columns * rows * num_ipins)
        pad_in_id: Dict[int, int] = {}
        for node_id, node in enumerate(nodes):
            kind = node[0]
            if kind == "wire":
                _, x, y, direction, index = node
                wire_grid[((x * rows + y) * len(dir_list)
                           + dir_ordinal[direction]) * width + index] = \
                    node_id
            elif kind == "ipin":
                _, x, y, pin = node
                ipin_grid[(x * rows + y) * num_ipins
                          + _IPIN_ORDINAL[pin]] = node_id
            elif kind == "pad_i":
                pad_in_id[node[1]] = node_id

        # Small rule tables, evaluated once instead of per node.
        opin_indices = {pin: opin_wire_indices(device, pin)
                        for pin in SLICE_OUTPUT_PINS}
        spip_table = {
            (d_in, d_out): [spip_out_indices(device, d_in, d_out, index)
                            for index in range(width)]
            for d_in in dir_list for d_out in dir_list
            if d_out != OPPOSITE[d_in]}
        feedback = {pin: [_IPIN_ORDINAL[pin_in]
                          for pin_in in SLICE_INPUT_PINS
                          if opin_feeds_ipin(pin, pin_in)]
                    for pin in SLICE_OUTPUT_PINS}
        pads_at = {}
        for pad in device.pads:
            pads_at.setdefault((pad.x, pad.y), []).append(pad.index)

        adjacency = self._adjacency
        for node_id, node in enumerate(nodes):
            if adjacency[node_id] is not None:
                continue
            kind = node[0]
            result: List[int] = []
            if kind == "opin":
                _, x, y, pin = node
                tile = (x * rows + y) * len(dir_list)
                for d_index in range(len(dir_list)):
                    base = (tile + d_index) * width
                    if wire_grid[base] >= 0:
                        for index in opin_indices[pin]:
                            result.append(wire_grid[base + index])
                ipin_base = (x * rows + y) * num_ipins
                for ordinal in feedback[pin]:
                    result.append(ipin_grid[ipin_base + ordinal])
                for pad_index in pads_at.get((x, y), ()):
                    result.append(pad_in_id[pad_index])
            elif kind == "pad_o":
                pad_index = node[1]
                pad = device.pads[pad_index]
                indices = pad_wire_indices(device, pad_index)
                tile = (pad.x * rows + pad.y) * len(dir_list)
                for d_index in range(len(dir_list)):
                    base = (tile + d_index) * width
                    if wire_grid[base] >= 0:
                        for index in indices:
                            result.append(wire_grid[base + index])
                ipin_base = (pad.x * rows + pad.y) * num_ipins
                for ordinal in range(num_ipins):
                    if (pad_index + ordinal) % 2 == 0:
                        result.append(ipin_grid[ipin_base + ordinal])
            elif kind == "wire":
                _, x, y, direction, index = node
                target = device.neighbor(x, y, direction)
                if target is not None:
                    tx, ty = target
                    tile = (tx * rows + ty) * len(dir_list)
                    for out_direction in dir_list:
                        key = (direction, out_direction)
                        if key not in spip_table:
                            continue
                        base = (tile + dir_ordinal[out_direction]) * width
                        if wire_grid[base] >= 0:
                            for out_index in spip_table[key][index]:
                                result.append(wire_grid[base + out_index])
                    ipin_base = (tx * rows + ty) * num_ipins
                    for ordinal in range(num_ipins):
                        result.append(ipin_grid[ipin_base + ordinal])
                    for pad_index in pads_at.get((tx, ty), ()):
                        result.append(pad_in_id[pad_index])
            # ipin / pad_i are sinks: empty list.
            adjacency[node_id] = result
        self._adjacency_complete = True

    def np_tables(self) -> Optional[Dict[str, object]]:
        """Numpy copies of the per-id tables (None without numpy).

        Used by the router to compute per-net candidate masks in one
        vectorized pass; the list tables stay authoritative.
        """
        if self._np_tables is None:
            try:
                import numpy
            except ImportError:
                return None
            self._np_tables = {
                "tile_x": numpy.asarray(self.tile_x, dtype=numpy.int32),
                "tile_y": numpy.asarray(self.tile_y, dtype=numpy.int32),
                "is_sink": numpy.asarray(self.is_sink, dtype=bool),
                "is_wire": numpy.asarray(self.is_wire, dtype=bool),
                # The unbounded-search mask: only foreign sinks blocked.
                "sink_blocked": numpy.asarray(self.is_sink,
                                              dtype=bool).tobytes(),
            }
        return self._np_tables


#: RoutingGraph per DeviceSpec; specs are frozen dataclasses, and the
#: handful of device profiles bounds this cache naturally.
_GRAPH_CACHE: Dict[object, RoutingGraph] = {}


def routing_graph(device: Device) -> RoutingGraph:
    """The memoized flat routing graph of a device profile."""
    graph = _GRAPH_CACHE.get(device.spec)
    if graph is None:
        graph = RoutingGraph(device)
        _GRAPH_CACHE[device.spec] = graph
    return graph


def clear_routing_graph_cache() -> None:
    """Drop memoized routing graphs (used by cold-start benchmarks)."""
    _GRAPH_CACHE.clear()
    _TILE_PIP_TEMPLATES.clear()


#: Per-device-spec translation templates for pad-free tile classes.
_TILE_PIP_TEMPLATES: Dict[object, Dict[object,
                                       Tuple[int, int, List[Pip]]]] = {}


def _tile_pip_class(device: Device, x: int, y: int) -> Optional[object]:
    """Translation-class key of a tile, or None when not translatable.

    Every connectivity rule (:func:`opin_wire_indices`,
    :func:`spip_out_indices`, ...) depends only on pins, directions and
    wire indices — never on coordinates — so two pad-free tiles with the
    same outgoing directions and the same *relative* arriving-wire set
    enumerate identical PIP lists up to an (x, y) translation.  Tiles
    with pads embed pad indices inside their PIPs and are computed
    directly.
    """
    if device.pads_at(x, y):
        return None
    outgoing = tuple(direction for direction in sorted(DIRECTIONS)
                     if device.wire_exists(x, y, direction))
    arriving = tuple((source[1] - x, source[2] - y, source[3], source[4])
                     for source in incoming_wires(device, x, y))
    return (outgoing, arriving)


def _translate_pips(template: List[Pip], dx: int, dy: int) -> List[Pip]:
    """Shift every node of a pad-free tile's PIP list by ``(dx, dy)``.

    Inlined tuple rebuilds: this runs for every interior tile of the
    array, and per-node helper calls measurably dominate it.
    """
    result: List[Pip] = []
    append = result.append
    for source, destination in template:
        if source[0] == "wire":
            source = (source[0], source[1] + dx, source[2] + dy,
                      source[3], source[4])
        else:
            source = (source[0], source[1] + dx, source[2] + dy, source[3])
        if destination[0] == "wire":
            destination = (destination[0], destination[1] + dx,
                           destination[2] + dy, destination[3],
                           destination[4])
        else:
            destination = (destination[0], destination[1] + dx,
                           destination[2] + dy, destination[3])
        append((source, destination))
    return result


def pips_into_tile(device: Device, x: int, y: int) -> List[Pip]:
    """All PIPs whose configuration bit lives in tile ``(x, y)``.

    A PIP's bit is stored with its *destination* resource: the wires owned by
    the tile, the tile's slice input pins and the tile's output pads.  The
    returned order is deterministic and is the canonical order used by the
    configuration-memory layout.

    Pad-free tiles of the same translation class (see
    :func:`_tile_pip_class`) share one enumerated template, translated to
    the requested coordinates — the fault-list and configuration-layout
    builders touch every tile of the array, and almost all of them are
    interior tiles of a single class.
    """
    key = _tile_pip_class(device, x, y)
    if key is not None:
        templates = _TILE_PIP_TEMPLATES.setdefault(device.spec, {})
        entry = templates.get(key)
        if entry is not None:
            x0, y0, template = entry
            dx, dy = x - x0, y - y0
            if dx == 0 and dy == 0:
                return list(template)
            return _translate_pips(template, dx, dy)
        pips = _compute_pips_into_tile(device, x, y)
        templates[key] = (x, y, pips)
        return list(pips)
    return _compute_pips_into_tile(device, x, y)


def _compute_pips_into_tile(device: Device, x: int, y: int) -> List[Pip]:
    pips: List[Pip] = []
    width = device.spec.wires_per_direction

    # 1. PIPs driving the wires owned by this tile: from local output pins,
    #    from local pads, and from incoming wires (switch-box PIPs).
    local_sources: List[Node] = [opin(x, y, pin) for pin in SLICE_OUTPUT_PINS]
    local_sources.extend(pad_output(pad.index) for pad in device.pads_at(x, y))
    arriving = incoming_wires(device, x, y)

    for direction in sorted(DIRECTIONS):
        if not device.wire_exists(x, y, direction):
            continue
        for index in range(width):
            destination = wire(x, y, direction, index)
            for source in local_sources:
                if source[0] == "opin":
                    if index in opin_wire_indices(device, source[3]):
                        pips.append((source, destination))
                else:
                    if index in pad_wire_indices(device, source[1]):
                        pips.append((source, destination))
            for source in arriving:
                arrival_direction = source[3]
                if direction == OPPOSITE[arrival_direction]:
                    continue
                if index in spip_out_indices(device, arrival_direction,
                                             direction, source[4]):
                    pips.append((source, destination))

    # 2. PIPs driving this tile's slice input pins.
    for pin_in in SLICE_INPUT_PINS:
        destination = ipin(x, y, pin_in)
        for source in arriving:
            if ipin_accepts(device, pin_in, source[4]):
                pips.append((source, destination))
        for pin_out in SLICE_OUTPUT_PINS:
            if opin_feeds_ipin(pin_out, pin_in):
                pips.append((opin(x, y, pin_out), destination))
        for pad in device.pads_at(x, y):
            if (pad.index + _IPIN_ORDINAL[pin_in]) % 2 == 0:
                pips.append((pad_output(pad.index), destination))

    # 3. PIPs driving this tile's output pads.
    for pad in device.pads_at(x, y):
        destination = pad_input(pad.index)
        for source in arriving:
            if pad_accepts(pad.index, source[4]):
                pips.append((source, destination))
        for pin_out in SLICE_OUTPUT_PINS:
            pips.append((opin(x, y, pin_out), destination))

    return pips


def count_tile_pips(device: Device, x: int, y: int) -> int:
    """Number of PIP bits owned by one tile (without materializing them)."""
    return len(pips_into_tile(device, x, y))


def pip_tile(device: Device, pip: Pip) -> Tuple[int, int]:
    """The tile that owns a PIP's configuration bit (its destination tile)."""
    return node_tile(device, pip[1])


def node_name(node: Node) -> str:
    """Readable name of a routing node (for reports and debugging)."""
    kind = node[0]
    if kind == "wire":
        return f"wire_x{node[1]}y{node[2]}_{node[3]}{node[4]}"
    if kind in ("opin", "ipin"):
        return f"{kind}_x{node[1]}y{node[2]}_{node[3]}"
    return f"{kind}{node[1]}"
